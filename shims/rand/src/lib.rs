//! Offline stand-in for the subset of the `rand` crate API used by this
//! workspace (`StdRng::seed_from_u64` + `Rng::gen_range` over integer
//! ranges).
//!
//! The build environment has no crates.io access, so the workspace vendors
//! this tiny deterministic implementation instead.  The generator is
//! SplitMix64 — statistically fine for synthetic-workload generation, not
//! for anything security-sensitive.  Streams are stable across runs and
//! platforms (workload generators rely on seeded reproducibility), but they
//! intentionally do *not* match upstream `rand`'s streams.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that `Rng::gen_range` can sample uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `range` using `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range called with empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is ≤ span/2^64 — irrelevant for workload
                // generation at these span sizes.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (range.start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing generator trait, mirroring the `rand::Rng` methods the
/// workspace uses.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open integer range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// A random boolean that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator namespaces, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..10).map(|_| a.gen_range(0u64..u64::MAX)).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.gen_range(0u64..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
