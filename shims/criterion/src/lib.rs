//! Offline stand-in for the subset of the `criterion` crate API used by the
//! ontodq benches.
//!
//! The build environment has no crates.io access, so this crate provides the
//! same surface (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`) with a deliberately simple
//! measurement loop: warm up for the configured time, then time
//! `sample_size` samples and report the median per-iteration latency (and
//! throughput when configured).  No statistical analysis, plots or baseline
//! comparison — enough to compare strategies within one run.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier combining a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: name.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.parameter)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_secs(1),
            throughput: None,
        }
    }

    /// Run a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("", f);
        group.finish();
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Warm-up duration before measurement.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Target measurement duration (bounds the number of iterations).
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Annotate subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Measure `f`.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            median: Duration::ZERO,
        };
        f(&mut bencher);
        report(&label, bencher.median, self.throughput);
        self
    }

    /// Measure `f` with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (report nothing extra; kept for API parity).
    pub fn finish(self) {}
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    median: Duration,
}

impl Bencher {
    /// Time `routine`, storing the median per-iteration latency.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_up_start = Instant::now();
        let mut warm_up_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_up_iters += 1;
            if warm_up_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let per_iter = warm_up_start.elapsed() / warm_up_iters.max(1) as u32;

        // Choose an iteration count per sample so that all samples fit
        // roughly into the measurement budget.
        let budget_per_sample = self.measurement_time / self.sample_size.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1_000
        } else {
            (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed() / iters_per_sample as u32);
        }
        samples.sort();
        self.median = samples[samples.len() / 2];
    }
}

fn report(label: &str, median: Duration, throughput: Option<Throughput>) {
    let mut line = format!("  {label}: median {}", fmt_duration(median));
    if let Some(throughput) = throughput {
        let per_second = |count: u64| {
            if median.is_zero() {
                f64::INFINITY
            } else {
                count as f64 / median.as_secs_f64()
            }
        };
        match throughput {
            Throughput::Elements(n) => {
                line.push_str(&format!(" ({:.0} elem/s)", per_second(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(" ({:.0} B/s)", per_second(n)));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(duration: Duration) -> String {
    let nanos = duration.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Define a function running a list of benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, tiny_bench);

    #[test]
    fn the_harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_displays_as_path() {
        assert_eq!(
            BenchmarkId::new("chase", "edb=100").to_string(),
            "chase/edb=100"
        );
    }
}
