//! Deterministic RNG and configuration for the proptest shim.

use std::fmt;

/// Error returned by a failing property case (via the `prop_assert*`
/// macros).  Carries the formatted assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-property configuration (only the `cases` knob is supported).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Smaller than real proptest's 256: no shrinking means failures are
        // reported raw, and the workspace's properties are cheap enough that
        // 64 deterministic cases give good coverage without slowing CI.
        Self { cases: 64 }
    }
}

/// Deterministic SplitMix64 stream used to generate case inputs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
