//! The [`Strategy`] trait and the generators the workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A boxed, object-safe strategy (used by `prop_oneof!`).
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// A generator of values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// simply produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `keep` returns `true`.  Retries generation
    /// (up to an internal limit) rather than shrinking.
    fn prop_filter<F>(self, reason: &'static str, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            keep,
        }
    }

    /// Erase the concrete strategy type (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    keep: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.inner.generate(rng);
            if (self.keep)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive values",
            self.reason
        );
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `options`; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(
            !options.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Self { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Raw bit patterns cover the full space (including NaN/inf, which
        // callers exclude with prop_filter when needed).
        f64::from_bits(rng.next_u64())
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// `&'static str` literals are string strategies over a simplified regex
/// dialect: a sequence of character classes (`[a-z0-9_]`) or literal
/// characters, each optionally followed by `{m,n}` / `{m}` repetition.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let elements = parse_pattern(self);
        let mut out = String::new();
        for element in &elements {
            let count = element.min + rng.below((element.max - element.min + 1) as u64) as usize;
            for _ in 0..count {
                let pick = rng.below(element.chars.len() as u64) as usize;
                out.push(element.chars[pick]);
            }
        }
        out
    }
}

struct PatternElement {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternElement> {
    let mut elements = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet = if c == '[' {
            let mut class = Vec::new();
            let mut prev: Option<char> = None;
            while let Some(member) = chars.next() {
                if member == ']' {
                    break;
                }
                if member == '-' {
                    // Range like `a-z`: combine prev with the next char.
                    if let (Some(low), Some(&high)) = (prev, chars.peek()) {
                        if high != ']' {
                            chars.next();
                            class.pop();
                            for code in (low as u32)..=(high as u32) {
                                if let Some(ch) = char::from_u32(code) {
                                    class.push(ch);
                                }
                            }
                            prev = None;
                            continue;
                        }
                    }
                    class.push('-');
                    prev = Some('-');
                } else {
                    class.push(member);
                    prev = Some(member);
                }
            }
            assert!(
                !class.is_empty(),
                "empty character class in pattern '{pattern}'"
            );
            class
        } else {
            vec![c]
        };
        let (min, max) = if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for q in chars.by_ref() {
                if q == '}' {
                    break;
                }
                spec.push(q);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad {m,n} quantifier"),
                    hi.trim().parse().expect("bad {m,n} quantifier"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad {n} quantifier");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "inverted quantifier in pattern '{pattern}'");
        elements.push(PatternElement {
            chars: alphabet,
            min,
            max,
        });
    }
    elements
}
