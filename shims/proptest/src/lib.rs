//! Offline stand-in for the subset of the `proptest` crate API used by this
//! workspace.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! tiny property-testing harness with the same surface syntax:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_filter` combinators,
//! * strategies for integer ranges, tuples, `Vec`s ([`collection::vec`]),
//!   `any::<T>()` for primitives, and simplified-regex string literals
//!   (character classes with `{m,n}` repetition, e.g. `"[a-z][a-z0-9]{0,4}"`),
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`
//!   header) and the `prop_assert*` macros,
//! * [`prop_oneof!`] unions.
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! regression files: cases are generated from a deterministic per-test seed,
//! so failures are reproducible but minimal counterexamples are not
//! computed.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Strategies over `Option<T>`, mirroring real proptest's `option` module.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`of`].
    pub struct OptionOf<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionOf<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some(inner)` or `None` with equal probability.
    pub fn of<S: Strategy>(inner: S) -> OptionOf<S> {
        OptionOf { inner }
    }
}

/// Everything a `use proptest::prelude::*;` in a test module expects.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run one property closure over `cases` generated inputs.
///
/// This is the engine behind the [`proptest!`] macro; it is public so the
/// macro expansion can call it from test crates.
pub fn run_cases<F>(test_name: &str, config: &test_runner::ProptestConfig, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    // Seed derived from the test name so distinct properties explore
    // distinct streams, deterministically across runs.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    for case_index in 0..config.cases {
        let mut rng = test_runner::TestRng::new(
            seed ^ (case_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest property '{test_name}' failed at case {case_index}/{}: {}",
                config.cases, e.0
            );
        }
    }
}

/// The macro behind `proptest! { ... }`.
///
/// Supports an optional `#![proptest_config(expr)]` header and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.  `prop_assert*`
/// macros early-return a `TestCaseError`; plain `assert!`/`panic!` also work
/// (they abort the whole property instead of reporting the case index).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                $crate::run_cases(stringify!($name), &config, |__ptrng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, __ptrng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", args...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(left, right)` / `prop_assert_eq!(left, right, "why", args...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::test_runner::TestCaseError(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)*),
                l,
                r
            )));
        }
    }};
}

/// `prop_assert_ne!(left, right)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// `prop_oneof![s1, s2, ...]`: pick one of the strategies uniformly per case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_match_their_shape() {
        let strat = "[A-Z][a-z0-9]{0,4}";
        let mut rng = crate::test_runner::TestRng::new(1);
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            let mut chars = s.chars();
            let first = chars.next().expect("first class has no quantifier");
            assert!(first.is_ascii_uppercase());
            let rest: Vec<char> = chars.collect();
            assert!(rest.len() <= 4);
            assert!(rest
                .iter()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn ranges_tuples_and_vecs_stay_in_bounds() {
        let strat = crate::collection::vec((0u8..8, 3i64..9), 2..5);
        let mut rng = crate::test_runner::TestRng::new(2);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 8);
                assert!((3..9).contains(&b));
            }
        }
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0usize..10, s in "[a-z]{1,3}") {
            prop_assert!(x < 10);
            prop_assert!(!s.is_empty() && s.len() <= 3);
            prop_assert_eq!(x, x);
            prop_assert_ne!(s.len(), 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_header_is_accepted(x in prop_oneof![0i64..5, 100i64..105]) {
            prop_assert!((0..5).contains(&x) || (100..105).contains(&x));
        }
    }

    #[test]
    fn map_and_filter_compose() {
        let strat = any::<f64>()
            .prop_filter("finite", |d| d.is_finite())
            .prop_map(|d| d.abs());
        let mut rng = crate::test_runner::TestRng::new(3);
        for _ in 0..100 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v.is_finite() && v >= 0.0);
        }
    }
}
