//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A length specification for [`vec()`]: either an exact length (`usize`) or a
/// half-open range (`Range<usize>`).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        Self {
            min: exact,
            max_exclusive: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        Self {
            min: range.start,
            max_exclusive: range.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max_exclusive - self.size.min) as u64;
        let len = self.size.min + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy generating vectors of `element` values with a length drawn
/// from `size` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
