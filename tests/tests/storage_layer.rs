//! End-to-end coverage of the interned storage layer: parse → intern →
//! Display → parse round-trips, cross-database symbol behaviour, and the
//! invariance of `Value`'s total order under interning.

use ontodq_datalog::parse_program;
use ontodq_relational::{Database, SymbolInterner, Tuple, Value};

/// Parsing rule text interns every string constant; printing the parsed
/// program resolves the symbols back; re-parsing the printed text yields
/// the same program.  This is the user-visible face of the interning
/// contract: interning never changes what a constant *means*.
#[test]
fn parse_intern_display_parse_is_the_identity() {
    let source = "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
                  Shifts(W1, \"Sep/9\", \"Mark Knopfler\", \"morning\").\n\
                  Unit(Standard).\n\
                  ! :- PatientUnit(u, d, p), not Unit(u).\n";
    let program = parse_program(source).unwrap();
    let printed = program.to_string();
    let reparsed = parse_program(&printed).unwrap();
    assert_eq!(printed, reparsed.to_string());
    // The quoted constants round-trip to the *same interned symbols*.
    let fact = &reparsed.facts[0];
    let tuple = ontodq_datalog::Assignment::new()
        .ground_atom(fact.atom())
        .unwrap();
    assert_eq!(tuple.get(2), Some(&Value::str("Mark Knopfler")));
    assert_eq!(
        tuple.get(2).unwrap().as_sym(),
        Value::str("Mark Knopfler").as_sym()
    );
}

/// Every `Database` shares the process-wide symbol table, so tuples built
/// against one database are directly usable (comparable, containable) in
/// another — symbols do not need translation at database boundaries.
#[test]
fn symbols_are_shared_across_databases() {
    let mut a = Database::new();
    let mut b = Database::new();
    a.insert_values("R", ["shared-constant", "x"]).unwrap();
    b.insert_values("R", ["shared-constant", "x"]).unwrap();
    let t = a.relation("R").unwrap().tuples()[0].clone();
    assert!(b.contains("R", &t));
    assert_eq!(
        a.relation("R").unwrap().tuples()[0]
            .get(0)
            .unwrap()
            .as_sym(),
        b.relation("R").unwrap().tuples()[0]
            .get(0)
            .unwrap()
            .as_sym()
    );
    // Both hand out the same shared table.
    assert!(std::ptr::eq(a.interner(), b.interner()));
    assert!(std::ptr::eq(a.interner(), SymbolInterner::global()));
}

/// Isolated tables (for embedders that must not share the global symbol
/// space) assign ids independently and never leak entries into each other
/// or into the global table.
#[test]
fn isolated_interner_tables_do_not_interfere() {
    let first = SymbolInterner::new();
    let second = SymbolInterner::new();
    let unique = "storage-layer-isolation-test-constant";
    let in_first = first.intern(unique);
    assert_eq!(second.lookup(unique), None);
    assert_eq!(first.resolve(in_first), Some(unique));
    // Ids restart from zero per table.
    assert_eq!(in_first.id(), 0);
    assert_eq!(second.intern("other").id(), 0);
    // Nothing reached the global table through the isolated ones.
    assert_eq!(SymbolInterner::global().lookup(unique), None);
}

/// The total order on values (and tuples) after interning equals the
/// lexicographic order of the raw strings — sorting answer sets, active
/// domains and BTree keys behaves exactly as before the storage change.
#[test]
fn value_total_order_equals_string_order() {
    let raw = [
        "Ward W10", "ward w2", "W1", "Ω-unit", "", "Sep/5", "Sep/10", "standard", "Standard",
    ];
    let mut by_string: Vec<&str> = raw.to_vec();
    by_string.sort_unstable();
    let mut by_value: Vec<Value> = raw.iter().map(Value::str).collect();
    by_value.sort();
    let resolved: Vec<&str> = by_value.iter().map(|v| v.as_str().unwrap()).collect();
    assert_eq!(resolved, by_string);

    // Tuples order lexicographically by their values, mixed kinds keep the
    // documented cross-kind rank order.
    let mut tuples = vec![
        Tuple::from_iter(["b", "a"]),
        Tuple::from_iter(["a", "z"]),
        Tuple::from_iter(["a", "b"]),
    ];
    tuples.sort();
    assert_eq!(
        tuples,
        vec![
            Tuple::from_iter(["a", "b"]),
            Tuple::from_iter(["a", "z"]),
            Tuple::from_iter(["b", "a"]),
        ]
    );
    assert!(Value::int(5) < Value::str("5"));
    assert!(Value::str("anything") < Value::null(ontodq_relational::NullId(0)));
}

/// The active domain — a `BTreeSet<Value>` — iterates in string order, the
/// order open-query candidate enumeration relies on.
#[test]
fn active_domain_iterates_in_string_order() {
    let mut db = Database::new();
    db.insert_values("R", ["zeta", "alpha"]).unwrap();
    db.insert_values("R", ["mike", "bravo"]).unwrap();
    let domain: Vec<String> = db.active_domain().iter().map(|v| v.to_string()).collect();
    let mut sorted = domain.clone();
    sorted.sort();
    assert_eq!(domain, sorted);
}
