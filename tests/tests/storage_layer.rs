//! End-to-end coverage of the interned + columnar storage layer: parse →
//! intern → Display → parse round-trips, cross-database symbol behaviour,
//! the invariance of `Value`'s total order under interning, and a
//! property test pinning the columnar arena's selects to a row-oriented
//! scan oracle.

use ontodq_datalog::parse_program;
use ontodq_relational::{
    Database, RelationInstance, RelationSchema, StampWindow, SymbolInterner, Tuple, Value,
};
use proptest::prelude::*;

/// Parsing rule text interns every string constant; printing the parsed
/// program resolves the symbols back; re-parsing the printed text yields
/// the same program.  This is the user-visible face of the interning
/// contract: interning never changes what a constant *means*.
#[test]
fn parse_intern_display_parse_is_the_identity() {
    let source = "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).\n\
                  Shifts(W1, \"Sep/9\", \"Mark Knopfler\", \"morning\").\n\
                  Unit(Standard).\n\
                  ! :- PatientUnit(u, d, p), not Unit(u).\n";
    let program = parse_program(source).unwrap();
    let printed = program.to_string();
    let reparsed = parse_program(&printed).unwrap();
    assert_eq!(printed, reparsed.to_string());
    // The quoted constants round-trip to the *same interned symbols*.
    let fact = &reparsed.facts[0];
    let tuple = ontodq_datalog::Assignment::new()
        .ground_atom(fact.atom())
        .unwrap();
    assert_eq!(tuple.get(2), Some(&Value::str("Mark Knopfler")));
    assert_eq!(
        tuple.get(2).unwrap().as_sym(),
        Value::str("Mark Knopfler").as_sym()
    );
}

/// Every `Database` shares the process-wide symbol table, so tuples built
/// against one database are directly usable (comparable, containable) in
/// another — symbols do not need translation at database boundaries.
#[test]
fn symbols_are_shared_across_databases() {
    let mut a = Database::new();
    let mut b = Database::new();
    a.insert_values("R", ["shared-constant", "x"]).unwrap();
    b.insert_values("R", ["shared-constant", "x"]).unwrap();
    let t = a.relation("R").unwrap().tuples()[0].clone();
    assert!(b.contains("R", &t));
    assert_eq!(
        a.relation("R").unwrap().tuples()[0]
            .get(0)
            .unwrap()
            .as_sym(),
        b.relation("R").unwrap().tuples()[0]
            .get(0)
            .unwrap()
            .as_sym()
    );
    // Both hand out the same shared table.
    assert!(std::ptr::eq(a.interner(), b.interner()));
    assert!(std::ptr::eq(a.interner(), SymbolInterner::global()));
}

/// Isolated tables (for embedders that must not share the global symbol
/// space) assign ids independently and never leak entries into each other
/// or into the global table.
#[test]
fn isolated_interner_tables_do_not_interfere() {
    let first = SymbolInterner::new();
    let second = SymbolInterner::new();
    let unique = "storage-layer-isolation-test-constant";
    let in_first = first.intern(unique);
    assert_eq!(second.lookup(unique), None);
    assert_eq!(first.resolve(in_first), Some(unique));
    // Ids restart from zero per table.
    assert_eq!(in_first.id(), 0);
    assert_eq!(second.intern("other").id(), 0);
    // Nothing reached the global table through the isolated ones.
    assert_eq!(SymbolInterner::global().lookup(unique), None);
}

/// The total order on values (and tuples) after interning equals the
/// lexicographic order of the raw strings — sorting answer sets, active
/// domains and BTree keys behaves exactly as before the storage change.
#[test]
fn value_total_order_equals_string_order() {
    let raw = [
        "Ward W10", "ward w2", "W1", "Ω-unit", "", "Sep/5", "Sep/10", "standard", "Standard",
    ];
    let mut by_string: Vec<&str> = raw.to_vec();
    by_string.sort_unstable();
    let mut by_value: Vec<Value> = raw.iter().map(Value::str).collect();
    by_value.sort();
    let resolved: Vec<&str> = by_value.iter().map(|v| v.as_str().unwrap()).collect();
    assert_eq!(resolved, by_string);

    // Tuples order lexicographically by their values, mixed kinds keep the
    // documented cross-kind rank order.
    let mut tuples = vec![
        Tuple::from_iter(["b", "a"]),
        Tuple::from_iter(["a", "z"]),
        Tuple::from_iter(["a", "b"]),
    ];
    tuples.sort();
    assert_eq!(
        tuples,
        vec![
            Tuple::from_iter(["a", "b"]),
            Tuple::from_iter(["a", "z"]),
            Tuple::from_iter(["b", "a"]),
        ]
    );
    assert!(Value::int(5) < Value::str("5"));
    assert!(Value::str("anything") < Value::null(ontodq_relational::NullId(0)));
}

/// The active domain — a `BTreeSet<Value>` — iterates in string order, the
/// order open-query candidate enumeration relies on.
#[test]
fn active_domain_iterates_in_string_order() {
    let mut db = Database::new();
    db.insert_values("R", ["zeta", "alpha"]).unwrap();
    db.insert_values("R", ["mike", "bravo"]).unwrap();
    let domain: Vec<String> = db.active_domain().iter().map(|v| v.to_string()).collect();
    let mut sorted = domain.clone();
    sorted.sort();
    assert_eq!(domain, sorted);
}

/// One generated workload for the columnar-vs-oracle property: a sequence
/// of stamped inserts (small domain, so duplicates and hot join keys are
/// frequent), which columns to hash-index, which positions to bind, and a
/// stamp window.
#[derive(Debug, Clone)]
struct ArenaCase {
    rows: Vec<(u8, u8, u8, u64)>,
    index_cols: Vec<usize>,
    bind0: Option<u8>,
    bind2: Option<u8>,
    after: Option<u64>,
    up_to: Option<u64>,
}

fn arb_arena_case() -> impl Strategy<Value = ArenaCase> {
    (
        proptest::collection::vec((0u8..6, 0u8..6, 0u8..4, 0u64..3), 0..48),
        proptest::collection::vec(0usize..3, 0..3),
        proptest::option::of(0u8..7),
        proptest::option::of(0u8..5),
        proptest::option::of(0u64..16),
        proptest::option::of(0u64..16),
    )
        .prop_map(|(rows, index_cols, bind0, bind2, after, up_to)| ArenaCase {
            rows,
            index_cols,
            bind0,
            bind2,
            after,
            up_to,
        })
}

proptest! {
    /// The columnar arena's `select` / `select_window` return exactly what
    /// a row-oriented scan over an `(tuple, stamp)` oracle returns — same
    /// rows, same (insertion) order — for every combination of random
    /// inserts, non-decreasing stamps, indexed and unindexed bindings, and
    /// stamp windows.  This pins the id-returning probe path (postings
    /// intersection, window clamping, scan fallback) to the semantics the
    /// row-oriented storage had before the columnar rewrite.
    #[test]
    fn columnar_selects_match_row_scan_oracle(case in arb_arena_case()) {
        let mut arena = RelationInstance::new(RelationSchema::untyped("R", 3));
        let mut oracle: Vec<(Tuple, u64)> = Vec::new();
        let mut stamp = 0u64;
        for (a, b, c, bump) in &case.rows {
            stamp += bump;
            let tuple = Tuple::new(vec![
                Value::str(format!("v{a}")),
                Value::str(format!("v{b}")),
                Value::int(*c as i64),
            ]);
            let added = arena.insert_stamped(tuple.clone(), stamp).unwrap();
            let fresh = !oracle.iter().any(|(t, _)| *t == tuple);
            prop_assert_eq!(added, fresh, "duplicate detection diverged");
            if fresh {
                oracle.push((tuple, stamp));
            }
        }
        for &col in &case.index_cols {
            arena.build_index(col);
        }

        let mut bindings: Vec<(usize, Value)> = Vec::new();
        if let Some(a) = case.bind0 {
            bindings.push((0, Value::str(format!("v{a}"))));
        }
        if let Some(c) = case.bind2 {
            bindings.push((2, Value::int(c as i64)));
        }
        let window = StampWindow {
            after: case.after,
            up_to: case.up_to,
        };

        let matches = |t: &Tuple| bindings.iter().all(|(p, v)| t.get(*p) == Some(v));
        let in_window = |s: u64| {
            case.after.map(|a| s > a).unwrap_or(true)
                && case.up_to.map(|u| s <= u).unwrap_or(true)
        };

        let borrowed: Vec<(usize, &Value)> = bindings.iter().map(|(p, v)| (*p, v)).collect();
        let expected_all: Vec<Tuple> = oracle
            .iter()
            .filter(|(t, _)| matches(t))
            .map(|(t, _)| t.clone())
            .collect();
        prop_assert_eq!(arena.select(&borrowed), expected_all);

        let expected_window: Vec<Tuple> = oracle
            .iter()
            .filter(|(t, s)| matches(t) && in_window(*s))
            .map(|(t, _)| t.clone())
            .collect();
        prop_assert_eq!(arena.select_window(&borrowed, window), expected_window);

        // The stamp column round-trips the oracle's stamps exactly, in
        // insertion order.
        let stamps: Vec<u64> = oracle.iter().map(|(_, s)| *s).collect();
        prop_assert_eq!(arena.stamps(), stamps.as_slice());
        for (t, _) in &oracle {
            prop_assert!(arena.contains(t));
        }
    }
}
