//! The standing crash-recovery fuzz harness and graceful-degradation
//! protocol suite.
//!
//! **Part A — seeded fault fuzz.**  Each schedule derives a random fault
//! plan (failed/short/torn/crashing writes and fsyncs across every guarded
//! io operation) from its seed, drives a seeded insert/retract correction
//! stream (`ontodq-workload`) through a durable [`QualityService`], then
//! restarts and recovers.  The invariant checked on **every** schedule is
//! the acked-prefix contract:
//!
//! * let `applied` be the ops the live service applied in memory (acked
//!   ones plus limbo batches whose WAL append failed after application),
//!   and `acked` the length of the longest fully-acknowledged prefix;
//! * the recovered version `v` must satisfy `acked <= v <= applied.len()`
//!   — no acked batch may be lost, no phantom (never-applied) batch may
//!   appear, and limbo batches may surface only as a *prefix* extension
//!   (they became durable through a later checkpoint);
//! * the recovered instance and quality versions must equal (modulo
//!   labeled-null renaming) a fresh service applying exactly
//!   `applied[..v]`.
//!
//! Ops refused while the service was degraded are excluded from `applied`
//! entirely: a typed refusal promises the op left no trace.
//!
//! **Parts B–E** pin the graceful-degradation story at the protocol layer:
//! degraded sessions keep serving reads and refuse writes with the typed
//! error until a probe recovers; an admission-bounded pool refuses queries
//! with the typed overload response; idle sessions are disconnected after
//! the strike budget without losing partially-received lines; and protocol
//! sessions record/replay byte-identically (modulo timing digits), across
//! both a fresh twin service and a crash-recovered one.

use ontodq_core::scenarios;
use ontodq_datalog::{Atom, Program, Retraction, Term};
use ontodq_integration_tests::databases_equivalent;
use ontodq_mdm::fixtures::hospital;
use ontodq_relational::Tuple;
use ontodq_server::{
    serve_session, serve_session_with, QualityService, ServiceError, SessionConfig, WorkerPool,
};
use ontodq_store::{FaultSchedule, IoOp, SharedIoPolicy, Store, StoreConfig};
use ontodq_workload::{generate_corrections, CorrectionOp, CorrectionScale, HospitalScale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufReader, Read};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ontodq-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The `-fact.`-shaped retraction program the server flushes: one ground
/// [`Retraction`] per fact.
fn retraction_program(facts: &[(String, Tuple)]) -> Program {
    let mut program = Program::new();
    for (relation, tuple) in facts {
        let terms: Vec<Term> = tuple.values().iter().map(|v| Term::constant(*v)).collect();
        let retraction =
            Retraction::new(Atom::new(relation.clone(), terms)).expect("workload facts are ground");
        program.retractions.push(retraction);
    }
    program
}

/// Apply one correction op through a service, surfacing the typed error.
fn apply_op(
    service: &QualityService,
    context: &str,
    op: &CorrectionOp,
) -> Result<(), ServiceError> {
    match op {
        CorrectionOp::Insert(facts) => service.insert_facts(context, facts.clone()).map(|_| ()),
        CorrectionOp::Retract(facts) => service
            .retract_facts(context, &retraction_program(facts))
            .map(|_| ()),
    }
}

/// How many fault schedules Part A sweeps.  CI smoke sets this low for the
/// gate and the nightly job sets it high; the default (100) is the
/// acceptance floor.
fn schedule_count() -> u64 {
    std::env::var("FAULT_FUZZ_SCHEDULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100)
}

/// Derive a seeded fault plan: one or two planned faults across the
/// guarded io operations, mixing permanent errors, transient (heal-retry)
/// errors, short writes and simulated crashes.
fn plan_faults(schedule: &mut FaultSchedule, rng: &mut StdRng) {
    let faults = 1 + rng.gen_range(0..2);
    for _ in 0..faults {
        let op = IoOp::ALL[rng.gen_range(0..IoOp::ALL.len())];
        let nth = rng.gen_range(0..6) as u64;
        match rng.gen_range(0..4) {
            0 => schedule.fail_nth(op, nth),
            1 => schedule.transient_nth(op, nth),
            2 => schedule.short_write_nth(op, nth, rng.gen_range(0..16)),
            _ => schedule.crash_nth(op, nth, rng.gen_range(0..16)),
        };
    }
}

/// Part A: the seeded crash-recovery fuzz loop.  For every schedule the
/// recovered state must be equivalent to a from-scratch application of a
/// prefix of the in-memory-applied ops no shorter than the acked prefix.
#[test]
fn fuzzed_fault_schedules_recover_the_acked_prefix() {
    let schedules = schedule_count();
    let mut total_injected = 0u64;
    let mut crashes = 0u64;
    let mut degraded_refusals = 0u64;
    let mut strict_prefixes = 0u64;

    for seed in 0..schedules {
        let scale = CorrectionScale {
            hospital: HospitalScale {
                units: 2,
                wards_per_unit: 2,
                patients: 3,
                days: 2,
                measurements: 8,
                seed: 5,
            },
            batches: 6,
            batch_size: 3,
            retract_percent: 40,
            seed: 1000 + seed,
        };
        let workload = generate_corrections(&scale);
        let context = workload.base.context();

        let mut rng = StdRng::seed_from_u64(seed);
        let schedule = Arc::new(Mutex::new(FaultSchedule::new()));
        plan_faults(&mut schedule.lock().unwrap(), &mut rng);

        let dir = temp_dir(&format!("fuzz-{seed}"));
        let policy: SharedIoPolicy = schedule.clone();
        let store = Arc::new(Mutex::new(
            Store::open_with_policy(&dir, StoreConfig::default(), policy).unwrap(),
        ));
        let service = QualityService::with_store(Arc::clone(&store));
        // Probe on every degraded write: maximally exercises the
        // Degraded -> Recovering -> (Healthy | Degraded) machine and the
        // snapshot checkpoint path under faults.
        service.set_probe_interval(Duration::ZERO);
        service
            .register_context("scaled", context.clone(), workload.base.instance.clone())
            .unwrap();

        // Ops the service applied in memory, in order.  `acked` is the
        // length of the longest fully-acknowledged prefix.
        let mut applied: Vec<&CorrectionOp> = Vec::new();
        let mut acked = 0usize;
        let mut crashed = false;
        for (i, op) in workload.ops.iter().enumerate() {
            // A mid-stream checkpoint on a third of the schedules, so
            // snapshot-path faults (write/fsync/rename/dirsync) fire.
            if seed % 3 == 0 && i == 2 {
                let _ = service.persist_all();
                if schedule.lock().unwrap().crashed() {
                    crashed = true;
                    break;
                }
            }
            match apply_op(&service, "scaled", op) {
                Ok(()) => {
                    applied.push(op);
                    acked = applied.len();
                }
                // Applied in memory, durability in limbo: the batch may or
                // may not survive the restart (a later checkpoint can make
                // it durable), and either outcome is legal.
                Err(ServiceError::Store(_)) => applied.push(op),
                // Typed refusal: the op left no trace, on purpose.
                Err(ServiceError::Degraded(_)) => degraded_refusals += 1,
                Err(e) => panic!("seed {seed} op {i}: unexpected error {e}"),
            }
            // Reads must keep working whatever the write path is doing.
            service.snapshot("scaled").unwrap();
            if schedule.lock().unwrap().crashed() {
                crashed = true;
                break;
            }
        }
        total_injected += schedule.lock().unwrap().injected();
        if crashed {
            crashes += 1;
        }

        // "Restart": drop the faulty process state, reopen the directory
        // with a clean (passthrough) store, recover.
        drop(service);
        drop(store);
        let mut store = Store::open(&dir, StoreConfig::default()).unwrap();
        let mut recovery = store.recover().unwrap();
        let store = Arc::new(Mutex::new(store));
        let recovered = QualityService::with_store(Arc::clone(&store));
        let summary = recovered
            .register_recovered(
                "scaled",
                context.clone(),
                workload.base.instance.clone(),
                &mut recovery,
            )
            .unwrap();
        let v = summary.version as usize;
        assert!(
            acked <= v && v <= applied.len(),
            "seed {seed}: recovered version {v} outside [acked {acked}, applied {}]",
            applied.len()
        );
        if v < applied.len() {
            strict_prefixes += 1;
        }

        // The recovered state must equal a fresh service applying exactly
        // the durable prefix, modulo labeled-null renaming.
        let reference = QualityService::new();
        reference
            .register_context("scaled", context.clone(), workload.base.instance.clone())
            .unwrap();
        for (i, op) in applied[..v].iter().enumerate() {
            apply_op(&reference, "scaled", op)
                .unwrap_or_else(|e| panic!("seed {seed}: reference op {i} failed: {e}"));
        }
        let got = recovered.snapshot("scaled").unwrap();
        let want = reference.snapshot("scaled").unwrap();
        assert_eq!(got.version, want.version, "seed {seed}");
        assert!(
            databases_equivalent(&got.database, &want.database),
            "seed {seed}: recovered instance differs from a chase of applied[..{v}]"
        );
        assert!(
            databases_equivalent(&got.quality, &want.quality),
            "seed {seed}: recovered quality versions differ from applied[..{v}]"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    // The sweep must not be vacuous: faults actually fired, and (at full
    // scale) the interesting regimes — crashes, degraded refusals, strict
    // prefixes — were all visited.
    assert!(total_injected > 0, "no schedule injected a fault");
    if schedules >= 50 {
        assert!(crashes > 0, "no schedule crashed");
        assert!(
            degraded_refusals > 0,
            "no schedule refused a degraded write"
        );
        assert!(strict_prefixes > 0, "no schedule recovered a strict prefix");
    }
}

/// Run one protocol session over a script against `service`/`pool` and
/// return everything it wrote.
fn run_session(service: &Arc<QualityService>, pool: &Arc<WorkerPool>, script: &str) -> String {
    let mut out = Vec::new();
    serve_session(service, pool, "hospital", script.as_bytes(), &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

/// Part B: a WAL failure degrades the service; sessions keep reading,
/// writes are refused with the typed error, and once the probe window
/// opens a write probes recovery and the service heals.
#[test]
fn degraded_sessions_serve_reads_refuse_writes_and_recover() {
    let dir = temp_dir("degraded-protocol");
    let schedule = Arc::new(Mutex::new(FaultSchedule::new()));
    // The very first WAL fsync fails: batch 1 lands in memory but not
    // durably.
    schedule.lock().unwrap().fail_nth(IoOp::WalFsync, 0);
    let policy: SharedIoPolicy = schedule.clone();
    let store = Arc::new(Mutex::new(
        Store::open_with_policy(&dir, StoreConfig::default(), policy).unwrap(),
    ));
    let service = Arc::new(QualityService::with_store(store));
    // Keep the probe window shut for session 1, so degradation is
    // observable instead of healed by the next write.
    service.set_probe_interval(Duration::from_secs(3600));
    service
        .register_context(
            "hospital",
            scenarios::hospital_context(),
            hospital::measurements_database(),
        )
        .unwrap();
    let pool = Arc::new(WorkerPool::new(2));

    let output = run_session(
        &service,
        &pool,
        "+Measurements(@Sep/6-11:05, \"Lou Reed\", 39.9).\n\
         !flush\n\
         !health\n\
         ?q- Measurements(t, p, v), p = \"Lou Reed\".\n\
         +Measurements(@Sep/6-12:00, \"Nico\", 36.6).\n\
         !flush\n\
         !quit\n",
    );
    assert!(
        output.contains("err: store error:"),
        "first flush should surface the append failure: {output}"
    );
    assert!(
        output.contains("ok health=degraded"),
        "health should report degraded: {output}"
    );
    // The limbo batch is visible to reads: version 1 serves the new fact.
    assert!(
        output.contains("version=1"),
        "reads should keep working at the in-memory version: {output}"
    );
    assert!(
        output.contains("err: degraded (read-only):"),
        "second flush should be refused with the typed error: {output}"
    );

    // Open the probe window: the next write probes recovery (persist_all
    // checkpoints every context, superseding the poisoned log) and heals.
    service.set_probe_interval(Duration::ZERO);
    let output = run_session(
        &service,
        &pool,
        "+Measurements(@Sep/6-12:00, \"Nico\", 36.6).\n\
         !flush\n\
         !health\n\
         !quit\n",
    );
    assert!(
        output.contains("ok applied new=1") && output.contains("version=2"),
        "post-probe write should succeed: {output}"
    );
    assert!(
        output.contains("ok health=healthy"),
        "health should report healthy after the probe: {output}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Part C: admission control.  A full queue refuses a session's query with
/// the typed overload response, and the session survives to retry once a
/// slot frees.
#[test]
fn overloaded_pool_refuses_queries_with_the_typed_response() {
    let service = Arc::new(QualityService::new());
    service
        .register_context(
            "hospital",
            scenarios::hospital_context(),
            hospital::measurements_database(),
        )
        .unwrap();
    let pool = Arc::new(WorkerPool::with_queue_bound(1, 1));

    // Saturate the single admission slot with a job parked on a channel.
    let (release, blocker) = mpsc::channel::<()>();
    pool.execute(move || {
        let _ = blocker.recv();
    })
    .unwrap();

    let output = run_session(&service, &pool, "?- Measurements(t, p, v).\n!quit\n");
    assert!(
        output.contains("err: overloaded: 1 jobs queued (bound 1), retry later"),
        "query against a full queue should be refused: {output}"
    );

    // Free the slot and wait for the worker to finish the parked job (the
    // admission slot is held until the job completes); the retry then goes
    // through.
    release.send(()).unwrap();
    while pool.queued() > 0 {
        std::thread::yield_now();
    }
    let output = run_session(&service, &pool, "?- Measurements(t, p, v).\n!quit\n");
    assert!(
        output.contains("ok answers="),
        "query should succeed once the queue drains: {output}"
    );
}

/// A scripted reader for the idle-timeout tests: yields data chunks and
/// `WouldBlock` "timeouts" in a fixed order, then either EOF or an endless
/// idle stall — the shape a socket read deadline produces.
enum ReadStep {
    Data(Vec<u8>),
    Timeout,
}

struct StallingReader {
    steps: std::collections::VecDeque<ReadStep>,
    /// After the script: `true` reports EOF, `false` stalls forever.
    then_eof: bool,
}

impl Read for StallingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.steps.pop_front() {
            Some(ReadStep::Data(bytes)) => {
                assert!(bytes.len() <= buf.len(), "test chunks fit the buffer");
                buf[..bytes.len()].copy_from_slice(&bytes);
                Ok(bytes.len())
            }
            Some(ReadStep::Timeout) => Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "simulated read deadline",
            )),
            None if self.then_eof => Ok(0),
            None => Err(std::io::Error::new(
                std::io::ErrorKind::WouldBlock,
                "simulated idle client",
            )),
        }
    }
}

fn hospital_session_fixture() -> (Arc<QualityService>, Arc<WorkerPool>) {
    let service = Arc::new(QualityService::new());
    service
        .register_context(
            "hospital",
            scenarios::hospital_context(),
            hospital::measurements_database(),
        )
        .unwrap();
    (service, Arc::new(WorkerPool::new(2)))
}

/// Part D: a silent client is disconnected after the strike budget, with a
/// best-effort notice, and the session ends cleanly (`Ok`, not an error).
#[test]
fn idle_sessions_disconnect_after_the_strike_budget() {
    let (service, pool) = hospital_session_fixture();
    let reader = BufReader::new(StallingReader {
        steps: vec![ReadStep::Data(b"!contexts\n".to_vec())].into(),
        then_eof: false,
    });
    let mut out = Vec::new();
    serve_session_with(
        &service,
        &pool,
        "hospital",
        reader,
        &mut out,
        &SessionConfig {
            max_idle_strikes: 3,
        },
    )
    .unwrap();
    let output = String::from_utf8(out).unwrap();
    assert!(
        output.contains("ok contexts=hospital"),
        "the command before the stall should run: {output}"
    );
    assert!(
        output.contains("err: idle timeout, closing session"),
        "the idle client should be told why: {output}"
    );
}

/// Part D: a read deadline elapsing mid-line must not lose the partial
/// bytes — the strike counter resets on traffic and the completed line
/// executes.
#[test]
fn partial_lines_survive_read_timeouts() {
    let (service, pool) = hospital_session_fixture();
    let reader = BufReader::new(StallingReader {
        steps: vec![
            ReadStep::Data(b"+Measurements(@Sep/6-11:05, \"Lou".to_vec()),
            ReadStep::Timeout,
            ReadStep::Timeout,
            ReadStep::Data(b" Reed\", 39.9).\n".to_vec()),
            ReadStep::Timeout,
            ReadStep::Data(b"!flush\n".to_vec()),
        ]
        .into(),
        then_eof: true,
    });
    let mut out = Vec::new();
    serve_session_with(
        &service,
        &pool,
        "hospital",
        reader,
        &mut out,
        &SessionConfig {
            max_idle_strikes: 3,
        },
    )
    .unwrap();
    let output = String::from_utf8(out).unwrap();
    assert!(
        output.contains("ok staged=1"),
        "the split line should stage one fact: {output}"
    );
    assert!(
        output.contains("ok applied new=1"),
        "the flushed fact should apply: {output}"
    );
    assert!(
        !output.contains("err:"),
        "no timeout strike may corrupt a line: {output}"
    );
}

/// Part E: record/replay.  Every service-side duration is measured on the
/// injected clock, so freezing it (`ontodq_obs::frozen()`) makes the
/// `micros=` response fields deterministic: the same session script against
/// two identically seeded durable services produces **byte-identical**
/// transcripts — no masking, no normalization — and a crash-recovered
/// service replays a fresh query script byte-identically against its
/// still-live twin.
#[test]
fn protocol_sessions_record_and_replay_byte_identically() {
    let script = "?q- Measurements(t, p, v), p = \"Tom Waits\".\n\
                  +Measurements(@Sep/6-11:05, \"Lou Reed\", 39.9).\n\
                  !flush\n\
                  ?q- Measurements(t, p, v), p = \"Lou Reed\".\n\
                  !save\n\
                  ?d- Measurements(t, \"Tom Waits\", v).\n\
                  !quit\n";

    let mut dirs = Vec::new();
    let mut services = Vec::new();
    let mut transcripts = Vec::new();
    for twin in ["a", "b"] {
        let dir = temp_dir(&format!("replay-{twin}"));
        let store = Arc::new(Mutex::new(
            Store::open(&dir, StoreConfig::default()).unwrap(),
        ));
        let service = Arc::new(QualityService::with_store_and_clock(
            store,
            ontodq_obs::frozen(),
        ));
        service
            .register_context(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
            )
            .unwrap();
        let pool = Arc::new(WorkerPool::new(2));
        let output = run_session(&service, &pool, script);
        transcripts.push(output);
        services.push((service, pool));
        dirs.push(dir);
    }
    assert_eq!(
        transcripts[0], transcripts[1],
        "identically seeded frozen-clock sessions must record byte-identical transcripts"
    );
    assert!(
        transcripts[0].contains("micros=0"),
        "a frozen clock must pin every duration to zero: {}",
        transcripts[0]
    );

    // Crash-recover twin a; replay queries this process has not answered
    // before (cold caches on both sides) and compare against the live twin
    // b byte for byte.
    let (service_a, _pool_a) = services.remove(0);
    drop(service_a);
    let mut store = Store::open(&dirs[0], StoreConfig::default()).unwrap();
    let mut recovery = store.recover().unwrap();
    let store = Arc::new(Mutex::new(store));
    let recovered = Arc::new(QualityService::with_store_and_clock(
        store,
        ontodq_obs::frozen(),
    ));
    let summary = recovered
        .register_recovered(
            "hospital",
            scenarios::hospital_context(),
            hospital::measurements_database(),
            &mut recovery,
        )
        .unwrap();
    assert_eq!(summary.version, 1, "the flushed batch must be durable");

    let replay = "?q- Measurements(t, \"Lou Reed\", v).\n\
                  ?- Measurements(t, p, v).\n\
                  !quit\n";
    let pool = Arc::new(WorkerPool::new(2));
    let replayed = run_session(&recovered, &pool, replay);
    let (service_b, pool_b) = services.remove(0);
    let live = run_session(&service_b, &pool_b, replay);
    assert_eq!(
        replayed, live,
        "a recovered service must replay queries byte-identically to its live twin"
    );
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
}
