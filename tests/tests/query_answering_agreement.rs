//! Agreement of the three query-answering strategies (Section IV):
//! chase-then-evaluate, the deterministic resolution algorithm, and FO
//! rewriting on the upward-only fragment — plus the class-membership and
//! separability claims of Section III.

use ontodq_datalog::analysis;
use ontodq_integration_tests::{compiled_hospital, query};
use ontodq_mdm::fixtures::hospital;
use ontodq_mdm::{compile, navigation, MdOntology};
use ontodq_qa::{answer_by_rewriting, DeterministicWsqAns, MaterializedEngine};

/// The hospital ontology restricted to the upward rule (7).
fn upward_only() -> MdOntology {
    let mut o = MdOntology::new("hospital-upward");
    o.add_dimension(hospital::hospital_dimension());
    o.add_dimension(hospital::time_dimension());
    for schema in hospital::categorical_schemas() {
        o.add_relation(schema);
    }
    for relation in hospital::ontology().data().relations() {
        for tuple in relation.iter() {
            o.add_tuple(relation.name(), tuple.values().to_vec())
                .unwrap();
        }
    }
    o.add_rule(hospital::patient_unit_rule());
    o
}

#[test]
fn claim_hospital_ontology_is_weakly_sticky() {
    let compiled = compiled_hospital();
    let report = analysis::classify(&compiled.program);
    assert!(report.weakly_sticky);
    // The fixed dimension instances also make it weakly acyclic (terminating
    // chase), which is what makes the materialization oracle usable.
    assert!(report.weakly_acyclic);
    // It is neither linear nor guarded nor sticky — weak stickiness is the
    // operative class, as the paper argues.
    assert!(!report.linear);
    assert!(!report.guarded);
    assert!(!report.sticky);
}

#[test]
fn claim_egd_6_is_separable() {
    let compiled = compiled_hospital();
    let separability = analysis::check_program(&compiled.program);
    assert_eq!(separability.egds.len(), 1);
    assert!(separability.all_separable());
}

#[test]
fn claim_form_10_rules_keep_weak_stickiness_but_threaten_separability() {
    let compiled = compile(&hospital::ontology_with_discharge_rule());
    let report = analysis::classify(&compiled.program);
    assert!(report.weakly_sticky);
    // A unit-level EGD on PatientUnit is no longer syntactically separable
    // once rule (9) can write nulls into the Unit position.
    let mut extended = hospital::ontology_with_discharge_rule();
    extended
        .add_rule_text("u = u2 :- PatientUnit(u, d, p), PatientUnit(u2, d, p).")
        .unwrap();
    let compiled2 = compile(&extended);
    assert!(!analysis::check_program(&compiled2.program).all_separable());
}

#[test]
fn resolution_and_materialization_agree_on_the_hospital_ontology() {
    let compiled = compiled_hospital();
    let materialized = MaterializedEngine::new(&compiled.program, &compiled.database);
    let resolution = DeterministicWsqAns::new(&compiled.program, &compiled.database);
    for text in [
        "Q(d) :- Shifts(W1, d, \"Mark\", s).",
        "Q(d) :- Shifts(W2, d, \"Mark\", s).",
        "Q(d) :- PatientUnit(Standard, d, p), p = \"Tom Waits\".",
        "Q(u) :- PatientUnit(u, d, \"Lou Reed\").",
        "Q(n) :- Shifts(W4, d, n, s).",
        "Q(w) :- Shifts(w, d, \"Helen\", s).",
        "Q(p) :- PatientUnit(Terminal, d, p).",
    ] {
        let q = query(text);
        assert_eq!(
            resolution.answer_open(&q),
            materialized.certain_answers(&q),
            "strategies disagree on {text}"
        );
    }
}

#[test]
fn rewriting_materialization_and_resolution_agree_on_upward_only_ontologies() {
    let ontology = upward_only();
    assert!(navigation::is_upward_only(&ontology));
    let compiled = compile(&ontology);
    let materialized = MaterializedEngine::new(&compiled.program, &compiled.database);
    let resolution = DeterministicWsqAns::new(&compiled.program, &compiled.database);
    for text in [
        "Q(d) :- PatientUnit(Standard, d, p), p = \"Tom Waits\".",
        "Q(u, d) :- PatientUnit(u, d, \"Tom Waits\").",
        "Q(p) :- PatientUnit(Intensive, d, p).",
        "Q(p, d) :- PatientWard(W1, d, p).",
        "Q(u) :- PatientUnit(u, d, p), WorkingSchedules(u, d, n, t).",
    ] {
        let q = query(text);
        let by_rewriting = answer_by_rewriting(&compiled.program, &compiled.database, &q);
        let by_chase = materialized.certain_answers(&q);
        let by_resolution = resolution.answer_open(&q);
        assert_eq!(by_rewriting, by_chase, "rewriting vs chase on {text}");
        assert_eq!(by_resolution, by_chase, "resolution vs chase on {text}");
    }
}

#[test]
fn navigation_analysis_matches_the_rules() {
    let ontology = hospital::ontology();
    let report = navigation::report(&ontology);
    assert_eq!(report.rules.len(), 2);
    assert_eq!(report.rules[0].1, navigation::NavigationDirection::Upward);
    assert_eq!(report.rules[1].1, navigation::NavigationDirection::Downward);
    assert!(!report.upward_only);
    assert!(report.value_invention);
    assert!(navigation::is_upward_only(&upward_only()));
}

#[test]
fn boolean_queries_agree_between_resolution_and_materialization() {
    let compiled = compiled_hospital();
    let materialized = MaterializedEngine::new(&compiled.program, &compiled.database);
    let resolution = DeterministicWsqAns::new(&compiled.program, &compiled.database);
    for (text, expected) in [
        (
            "Q() :- PatientUnit(Standard, d, p), p = \"Tom Waits\".",
            true,
        ),
        (
            "Q() :- PatientUnit(Standard, d, p), p = \"Elvis Costello\".",
            false,
        ),
        ("Q() :- Shifts(W2, \"Sep/9\", \"Mark\", s).", true),
        ("Q() :- Shifts(W3, \"Sep/9\", \"Mark\", s).", false),
        (
            "Q() :- Shifts(W1, \"Sep/6\", \"Helen\", \"morning\").",
            true,
        ),
        (
            "Q() :- Shifts(W2, \"Sep/9\", \"Mark\", \"morning\").",
            false,
        ),
    ] {
        let q = query(text);
        assert_eq!(
            resolution.answer_boolean(&q),
            expected,
            "resolution on {text}"
        );
        assert_eq!(
            materialized.boolean(&q),
            expected,
            "materialization on {text}"
        );
    }
}
