//! Equivalence of the delta-driven semi-naive chase, the parallel per-rule
//! chase, the forced worst-case-optimal (leapfrog) join kernel and the
//! naive reference oracle: identical final instances (modulo labeled-null
//! renaming) and identical violation sets, on the paper's hospital
//! fixture, on generated workload instances and on Zipf-skewed cyclic
//! triangle workloads.

use ontodq_chase::{
    chase, chase_naive, ChaseConfig, ChaseEngine, ChaseMode, EvalStrategy, JoinEngine,
    TerminationReason,
};
use ontodq_datalog::parse_program;
use ontodq_integration_tests::{
    canonicalize_database, compiled_hospital, compiled_hospital_with_discharge,
    databases_equivalent, violation_summary,
};
use ontodq_relational::Database;
use ontodq_workload::{generate, generate_skewed, HospitalScale, SkewedScale};
use proptest::prelude::*;

/// Parallel chase with a pinned 4-worker team: `available_parallelism` can
/// be 1 on CI containers, and the suite must exercise the genuinely
/// concurrent path everywhere.
fn chase_parallel(program: &ontodq_datalog::Program, db: &Database) -> ontodq_chase::ChaseResult {
    ChaseEngine::new(ChaseConfig::parallel_with_threads(4)).run(program, db)
}

/// Semi-naive chase with the worst-case-optimal join kernel forced for
/// every rule body (the `Auto` planner only picks it for cyclic shapes, so
/// the forced variant is what exercises the kernel on every fixture).
fn chase_leapfrog(program: &ontodq_datalog::Program, db: &Database) -> ontodq_chase::ChaseResult {
    ChaseEngine::new(ChaseConfig::with_join(JoinEngine::Leapfrog)).run(program, db)
}

/// Assert full equivalence of all four strategies on one program +
/// instance: `naive == semi-naive == parallel == leapfrog` modulo
/// labeled-null renaming.
fn assert_strategies_agree(program: &ontodq_datalog::Program, db: &Database, label: &str) {
    let naive = chase_naive(program, db);
    let semi = chase(program, db);
    let parallel = chase_parallel(program, db);
    let leapfrog = chase_leapfrog(program, db);
    assert_eq!(
        naive.termination, semi.termination,
        "{label}: termination reasons diverge"
    );
    assert_eq!(
        naive.termination, parallel.termination,
        "{label}: parallel termination diverges"
    );
    assert_eq!(
        naive.termination, leapfrog.termination,
        "{label}: leapfrog termination diverges"
    );
    assert!(
        databases_equivalent(&naive.database, &semi.database),
        "{label}: instances differ modulo null renaming\nnaive:\n{:#?}\nsemi-naive:\n{:#?}",
        canonicalize_database(&naive.database),
        canonicalize_database(&semi.database),
    );
    assert!(
        databases_equivalent(&naive.database, &parallel.database),
        "{label}: parallel instance differs modulo null renaming\nnaive:\n{:#?}\nparallel:\n{:#?}",
        canonicalize_database(&naive.database),
        canonicalize_database(&parallel.database),
    );
    assert!(
        databases_equivalent(&naive.database, &leapfrog.database),
        "{label}: leapfrog instance differs modulo null renaming\nnaive:\n{:#?}\nleapfrog:\n{:#?}",
        canonicalize_database(&naive.database),
        canonicalize_database(&leapfrog.database),
    );
    assert_eq!(
        violation_summary(&naive.violations),
        violation_summary(&semi.violations),
        "{label}: violation sets diverge"
    );
    assert_eq!(
        violation_summary(&naive.violations),
        violation_summary(&parallel.violations),
        "{label}: parallel violation set diverges"
    );
    assert_eq!(
        violation_summary(&naive.violations),
        violation_summary(&leapfrog.violations),
        "{label}: leapfrog violation set diverges"
    );
    assert_eq!(
        naive.stats.tuples_added, leapfrog.stats.tuples_added,
        "{label}: leapfrog generated a different number of tuples"
    );
    assert_eq!(
        naive.stats.tuples_added, semi.stats.tuples_added,
        "{label}: different number of generated tuples"
    );
    assert_eq!(
        naive.stats.nulls_created, semi.stats.nulls_created,
        "{label}: different number of invented nulls"
    );
    // The parallel engine is deterministic: a second run reproduces the
    // instance exactly (same tuples, same null ids), not just up to
    // renaming.
    let parallel_again = chase_parallel(program, db);
    assert_eq!(
        canonicalize_database(&parallel.database),
        canonicalize_database(&parallel_again.database),
        "{label}: parallel run is not reproducible"
    );
    for relation in parallel.database.relations() {
        let again = parallel_again
            .database
            .relation(relation.name())
            .expect("reproduced run has the same relations");
        assert_eq!(
            relation.tuples(),
            again.tuples(),
            "{label}: parallel run is not byte-for-byte deterministic"
        );
    }
}

#[test]
fn hospital_fixture_instances_are_equivalent() {
    let compiled = compiled_hospital();
    assert_strategies_agree(&compiled.program, &compiled.database, "hospital");
}

#[test]
fn hospital_with_discharge_rule_is_equivalent() {
    let compiled = compiled_hospital_with_discharge();
    assert_strategies_agree(&compiled.program, &compiled.database, "hospital+rule(9)");
}

#[test]
fn generated_workload_instances_are_equivalent() {
    for scale in [
        HospitalScale::small(),
        HospitalScale::with_measurements(100),
    ] {
        let workload = generate(&scale);
        let compiled = ontodq_mdm::compile(&workload.ontology);
        assert_strategies_agree(
            &compiled.program,
            &compiled.database,
            &format!("workload(measurements={})", scale.measurements),
        );
    }
}

#[test]
fn skewed_triangle_workloads_are_equivalent() {
    for (label, scale) in [
        ("skewed", SkewedScale::small()),
        ("uniform", SkewedScale::small().uniform()),
        ("skewed-large", SkewedScale::with_edges(400)),
    ] {
        let workload = generate_skewed(&scale);
        assert_strategies_agree(
            &workload.program,
            &workload.database,
            &format!("triangle({label})"),
        );
    }
}

/// On the cyclic triangle body the `Auto` planner already picks the
/// worst-case-optimal path; forcing either kernel must not change the
/// result.
#[test]
fn auto_and_forced_kernels_agree_on_triangles() {
    let workload = generate_skewed(&SkewedScale::small());
    let auto = chase(&workload.program, &workload.database);
    let hash = ChaseEngine::new(ChaseConfig::with_join(JoinEngine::Hash))
        .run(&workload.program, &workload.database);
    let leapfrog = chase_leapfrog(&workload.program, &workload.database);
    assert!(databases_equivalent(&auto.database, &hash.database));
    assert!(databases_equivalent(&auto.database, &leapfrog.database));
    assert_eq!(auto.stats.tuples_added, hash.stats.tuples_added);
    assert_eq!(auto.stats.tuples_added, leapfrog.stats.tuples_added);
}

/// Regression: a full TGD whose head atoms are all zero-arity
/// (`Flagged() :- Thermometer(w, t, n).`) must fire on every strategy.
/// The staged batch path encodes a trigger as `sum(head arities)` flat
/// values, which at arity 0 cannot carry a trigger count at all, so such
/// rules have to stay on the per-trigger path — at one point the
/// semi-naive and parallel strategies silently dropped them.
#[test]
fn zero_arity_heads_fire_on_every_strategy() {
    let program = parse_program("Flagged() :- Thermometer(w, t, n).\n").unwrap();
    let mut db = Database::new();
    db.insert_values("Thermometer", ["W1", "B1", "Helen"])
        .unwrap();
    assert_strategies_agree(&program, &db, "zero-arity-head");
    let semi = chase(&program, &db);
    let flagged = semi
        .database
        .relation("Flagged")
        .expect("semi-naive chase derives Flagged()");
    assert_eq!(flagged.len(), 1);
}

#[test]
fn egd_unification_chains_are_equivalent() {
    let compiled = compiled_hospital();
    // The hospital program includes rule (8) (null shifts) and the EGD (6);
    // add an explicit shift so unification has something to do, and a
    // second EGD chaining shifts across days to force longer unification
    // sequences.
    let program = {
        let mut p = compiled.program.clone();
        let extra = parse_program("s = s2 :- Shifts(w, d, n, s), Shifts(w, d2, n, s2).\n").unwrap();
        for egd in extra.egds {
            p.egds.push(egd);
        }
        p
    };
    let mut db = compiled.database.clone();
    db.insert_values("Shifts", ["W1", "Sep/9", "Mark", "morning"])
        .unwrap();
    assert_strategies_agree(&program, &db, "hospital+chained-egds");
}

#[test]
fn violating_instances_report_the_same_violations() {
    let program = parse_program(
        "t = t2 :- Thermometer(w, t, n), Thermometer(w2, t2, n2), UnitWard(u, w), UnitWard(u, w2).\n\
         ! :- Thermometer(w, t, n), Banned(t).\n\
         Banned(B2).\n",
    )
    .unwrap();
    let mut db = Database::new();
    for (u, w) in [("Standard", "W1"), ("Standard", "W2")] {
        db.insert_values("UnitWard", [u, w]).unwrap();
    }
    db.insert_values("Thermometer", ["W1", "B1", "Helen"])
        .unwrap();
    db.insert_values("Thermometer", ["W2", "B2", "Susan"])
        .unwrap();
    let naive = chase_naive(&program, &db);
    let semi = chase(&program, &db);
    let parallel = chase_parallel(&program, &db);
    assert!(!naive.violations.is_empty());
    assert_eq!(
        violation_summary(&naive.violations),
        violation_summary(&semi.violations)
    );
    assert_eq!(
        violation_summary(&naive.violations),
        violation_summary(&parallel.violations)
    );
}

#[test]
fn oblivious_mode_is_equivalent_too() {
    let compiled = compiled_hospital();
    let run = |strategy: EvalStrategy| {
        ChaseEngine::new(ChaseConfig {
            mode: ChaseMode::Oblivious,
            strategy,
            ..Default::default()
        })
        .run(&compiled.program, &compiled.database)
    };
    let naive = run(EvalStrategy::Naive);
    let semi = run(EvalStrategy::SemiNaive);
    let parallel = ChaseEngine::new(ChaseConfig {
        mode: ChaseMode::Oblivious,
        ..ChaseConfig::parallel_with_threads(4)
    })
    .run(&compiled.program, &compiled.database);
    assert!(databases_equivalent(&naive.database, &semi.database));
    assert!(databases_equivalent(&naive.database, &parallel.database));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random small graphs: the semi-naive transitive closure matches the
    /// naive one exactly (no nulls involved, so plain set equality).
    #[test]
    fn random_transitive_closures_agree(
        edges in proptest::collection::vec((0u8..8, 0u8..8), 0..24)
    ) {
        let program = parse_program(
            "T(x, y) :- E(x, y).\n\
             T(x, z) :- T(x, y), E(y, z).\n",
        )
        .unwrap();
        let mut db = Database::new();
        for (a, b) in &edges {
            db.insert_values("E", [format!("n{a}"), format!("n{b}")]).unwrap();
        }
        let naive = chase_naive(&program, &db);
        let semi = chase(&program, &db);
        let parallel = chase_parallel(&program, &db);
        let leapfrog = chase_leapfrog(&program, &db);
        prop_assert_eq!(naive.termination, TerminationReason::Fixpoint);
        prop_assert_eq!(semi.termination, TerminationReason::Fixpoint);
        prop_assert_eq!(parallel.termination, TerminationReason::Fixpoint);
        prop_assert!(databases_equivalent(&naive.database, &semi.database));
        prop_assert!(databases_equivalent(&naive.database, &parallel.database));
        prop_assert!(databases_equivalent(&naive.database, &leapfrog.database));
    }

    /// Random scaled hospitals: full pipeline equivalence.
    #[test]
    fn random_scaled_hospitals_agree(
        units in 1usize..3,
        wards in 1usize..3,
        patients in 2usize..6,
        days in 2usize..5,
        measurements in 5usize..30,
        seed in 0u64..500,
    ) {
        let scale = HospitalScale {
            units,
            wards_per_unit: wards,
            patients,
            days,
            measurements,
            seed,
        };
        let workload = generate(&scale);
        let compiled = ontodq_mdm::compile(&workload.ontology);
        let naive = chase_naive(&compiled.program, &compiled.database);
        let semi = chase(&compiled.program, &compiled.database);
        let parallel = chase_parallel(&compiled.program, &compiled.database);
        let leapfrog = chase_leapfrog(&compiled.program, &compiled.database);
        prop_assert!(databases_equivalent(&naive.database, &semi.database));
        prop_assert!(databases_equivalent(&naive.database, &parallel.database));
        prop_assert!(databases_equivalent(&naive.database, &leapfrog.database));
        prop_assert_eq!(
            violation_summary(&naive.violations),
            violation_summary(&semi.violations)
        );
        prop_assert_eq!(
            violation_summary(&naive.violations),
            violation_summary(&parallel.violations)
        );
        prop_assert_eq!(
            violation_summary(&naive.violations),
            violation_summary(&leapfrog.violations)
        );
    }

    /// Random skewed triangle workloads: all four strategies agree on the
    /// cyclic body that triggers the worst-case-optimal planner.
    #[test]
    fn random_skewed_triangles_agree(
        nodes in 4usize..32,
        edges in 8usize..120,
        tenths in 0u64..15,
        seed in 0u64..500,
    ) {
        let scale = SkewedScale {
            nodes,
            edges,
            exponent: tenths as f64 / 10.0,
            seed,
        };
        let workload = generate_skewed(&scale);
        let naive = chase_naive(&workload.program, &workload.database);
        let semi = chase(&workload.program, &workload.database);
        let parallel = chase_parallel(&workload.program, &workload.database);
        let leapfrog = chase_leapfrog(&workload.program, &workload.database);
        prop_assert_eq!(naive.termination, TerminationReason::Fixpoint);
        prop_assert!(databases_equivalent(&naive.database, &semi.database));
        prop_assert!(databases_equivalent(&naive.database, &parallel.database));
        prop_assert!(databases_equivalent(&naive.database, &leapfrog.database));
    }
}
