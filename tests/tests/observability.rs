//! Protocol-level observability suite: `!metrics` must be valid Prometheus
//! text exposition covering every instrumented layer, `!profile` must
//! surface the per-rule chase profile, `!slow` must dump the armed
//! slow-query ring — and all three must keep answering while the service is
//! degraded (an observability surface that goes dark exactly when things
//! break is worthless).
//!
//! The Prometheus validation uses an in-repo parser of the text exposition
//! format (`# HELP`/`# TYPE` headers, `name{labels} value` samples,
//! cumulative `_bucket` series ending in `+Inf`, `_sum`/`_count`
//! consistency) rather than string spot-checks, so a malformed scrape —
//! a sample before its `# TYPE`, a non-cumulative bucket ladder, a missing
//! `+Inf` — fails loudly no matter which series regresses.

use ontodq_core::scenarios;
use ontodq_mdm::fixtures::hospital;
use ontodq_server::{serve_session, QualityService, WorkerPool};
use ontodq_store::{FaultSchedule, IoOp, SharedIoPolicy, Store, StoreConfig};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ontodq-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn hospital_service() -> Arc<QualityService> {
    let service = Arc::new(QualityService::new());
    service
        .register_context(
            "hospital",
            scenarios::hospital_context(),
            hospital::measurements_database(),
        )
        .unwrap();
    service
}

fn run_session(service: &Arc<QualityService>, pool: &Arc<WorkerPool>, script: &str) -> String {
    let mut out = Vec::new();
    serve_session(service, pool, "hospital", script.as_bytes(), &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

// ---------------------------------------------------------------------------
// A minimal parser of the Prometheus text exposition format.
// ---------------------------------------------------------------------------

/// One sample: the full series name (including any `_bucket`/`_sum`/`_count`
/// suffix), its parsed label pairs, and the value.
#[derive(Debug, Clone)]
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// One metric family: its `# HELP` text, `# TYPE` kind and samples, in
/// exposition order.
#[derive(Debug, Default)]
struct Family {
    help: Option<String>,
    kind: Option<String>,
    samples: Vec<Sample>,
}

/// Parse a label block `key="value",…` (the text between `{` and `}`),
/// honoring the exposition escapes `\\`, `\"` and `\n`.
fn parse_labels(block: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = block;
    loop {
        rest = rest.trim_start_matches(',');
        if rest.is_empty() {
            return Ok(labels);
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=': {rest}"))?;
        let key = rest[..eq].to_string();
        let mut chars = rest[eq + 1..].chars();
        if chars.next() != Some('"') {
            return Err(format!("label value must be quoted: {rest}"));
        }
        let mut value = String::new();
        let mut closed = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {key}")),
                },
                '"' => {
                    closed = true;
                    break;
                }
                other => value.push(other),
            }
        }
        if !closed {
            return Err(format!("unterminated label value for {key}"));
        }
        labels.push((key, value));
        rest = chars.as_str();
    }
}

/// The base family name a sample belongs to: histogram series drop their
/// `_bucket`/`_sum`/`_count` suffix when the prefix was declared a
/// histogram family.
fn family_of<'a>(name: &'a str, families: &BTreeMap<String, Family>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if families
                .get(base)
                .is_some_and(|f| f.kind.as_deref() == Some("histogram"))
            {
                return base;
            }
        }
    }
    name
}

/// Parse a full exposition payload into families, enforcing the format's
/// structural rules: `# TYPE` precedes samples, every sample belongs to a
/// declared family, values parse as floats.
fn parse_prometheus(text: &str) -> Result<BTreeMap<String, Family>, String> {
    let mut families: BTreeMap<String, Family> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .ok_or_else(|| format!("HELP without text: {line}"))?;
            let family = families.entry(name.to_string()).or_default();
            if family.kind.is_some() || !family.samples.is_empty() {
                return Err(format!("# HELP after TYPE/samples for {name}"));
            }
            family.help = Some(help.to_string());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("TYPE without kind: {line}"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("unknown kind '{kind}' for {name}"));
            }
            let family = families.entry(name.to_string()).or_default();
            if family.kind.is_some() {
                return Err(format!("duplicate # TYPE for {name}"));
            }
            if !family.samples.is_empty() {
                return Err(format!("# TYPE after samples for {name}"));
            }
            family.kind = Some(kind.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // comment
        }
        // Sample: name[{labels}] value
        let (series, value) = match line.find('{') {
            Some(open) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("unclosed label block: {line}"))?;
                let labels = parse_labels(&line[open + 1..close])?;
                let value = line[close + 1..].trim();
                (
                    Sample {
                        name: line[..open].to_string(),
                        labels,
                        value: value
                            .parse()
                            .map_err(|_| format!("bad value '{value}' in: {line}"))?,
                    },
                    value,
                )
            }
            None => {
                let (name, value) = line
                    .rsplit_once(' ')
                    .ok_or_else(|| format!("sample without value: {line}"))?;
                (
                    Sample {
                        name: name.to_string(),
                        labels: Vec::new(),
                        value: value
                            .parse()
                            .map_err(|_| format!("bad value '{value}' in: {line}"))?,
                    },
                    value,
                )
            }
        };
        let _ = value;
        let base = family_of(&series.name, &families).to_string();
        let family = families
            .get_mut(&base)
            .ok_or_else(|| format!("sample before # TYPE: {}", series.name))?;
        if family.kind.is_none() {
            return Err(format!("sample before # TYPE: {}", series.name));
        }
        family.samples.push(series);
    }
    Ok(families)
}

/// Validate every histogram family: per label-set the `le` ladder is
/// cumulative (non-decreasing) and ends in `+Inf`, and the `_count` sample
/// equals the `+Inf` bucket.
fn validate_histograms(families: &BTreeMap<String, Family>) -> Result<(), String> {
    for (name, family) in families {
        if family.kind.as_deref() != Some("histogram") {
            continue;
        }
        // Group buckets by their labels minus `le`.
        let mut groups: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
        let mut counts: BTreeMap<String, f64> = BTreeMap::new();
        let mut sums: BTreeMap<String, f64> = BTreeMap::new();
        for sample in &family.samples {
            let key: Vec<String> = sample
                .labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let key = key.join(",");
            if sample.name.ends_with("_bucket") {
                let le = sample
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .map(|(_, v)| v.clone())
                    .ok_or_else(|| format!("{name}: bucket without le label"))?;
                groups.entry(key).or_default().push((le, sample.value));
            } else if sample.name.ends_with("_count") {
                counts.insert(key, sample.value);
            } else if sample.name.ends_with("_sum") {
                sums.insert(key, sample.value);
            } else {
                return Err(format!(
                    "{name}: unexpected histogram series {}",
                    sample.name
                ));
            }
        }
        if groups.is_empty() {
            return Err(format!("{name}: histogram family without buckets"));
        }
        for (key, buckets) in &groups {
            let last = buckets
                .last()
                .ok_or_else(|| format!("{name}{{{key}}}: empty bucket ladder"))?;
            if last.0 != "+Inf" {
                return Err(format!("{name}{{{key}}}: ladder must end at +Inf"));
            }
            let mut previous = -1.0f64;
            for (le, cumulative) in buckets {
                if *cumulative < previous {
                    return Err(format!(
                        "{name}{{{key}}}: bucket le={le} not cumulative ({cumulative} < {previous})"
                    ));
                }
                previous = *cumulative;
            }
            let count = counts
                .get(key)
                .ok_or_else(|| format!("{name}{{{key}}}: missing _count"))?;
            if (count - last.1).abs() > f64::EPSILON {
                return Err(format!(
                    "{name}{{{key}}}: _count {count} != +Inf bucket {}",
                    last.1
                ));
            }
            if !sums.contains_key(key) {
                return Err(format!("{name}{{{key}}}: missing _sum"));
            }
        }
    }
    Ok(())
}

/// Extract the `!metrics` payload from a session transcript: the block of
/// lines from the first `# HELP` to the `ok` terminator.
fn metrics_payload(transcript: &str) -> String {
    let start = transcript
        .find("# HELP")
        .expect("transcript should contain a metrics payload");
    let rest = &transcript[start..];
    let end = rest.find("\nok\n").map(|i| i + 1).unwrap_or(rest.len());
    rest[..end].to_string()
}

// ---------------------------------------------------------------------------
// The suite.
// ---------------------------------------------------------------------------

/// A worked session's `!metrics` is valid Prometheus text exposition and
/// covers every instrumented layer: request/apply histograms, cache and
/// retraction counters, queue/health/snapshot gauges and the per-rule
/// chase profile.
#[test]
fn metrics_are_valid_prometheus_and_cover_every_layer() {
    let dir = temp_dir("coverage");
    let store = Arc::new(Mutex::new(
        Store::open(&dir, StoreConfig::default()).unwrap(),
    ));
    let service = Arc::new(QualityService::with_store(store));
    service
        .register_context(
            "hospital",
            scenarios::hospital_context(),
            hospital::measurements_database(),
        )
        .unwrap();
    let pool = Arc::new(WorkerPool::new(2));
    let out = run_session(
        &service,
        &pool,
        "?q- Measurements(t, p, v), p = \"Tom Waits\".\n\
         +Measurements(@Sep/6-11:05, \"Lou Reed\", 39.9).\n\
         !flush\n\
         -Measurements(@Sep/6-11:05, \"Lou Reed\", 39.9).\n\
         !flush\n\
         !save\n\
         !metrics\n\
         !quit\n",
    );
    let payload = metrics_payload(&out);
    let families = parse_prometheus(&payload).unwrap_or_else(|e| panic!("invalid scrape: {e}"));
    validate_histograms(&families).unwrap_or_else(|e| panic!("invalid histogram: {e}"));

    // One representative family per layer.
    for name in [
        "ontodq_request_micros",    // protocol
        "ontodq_apply_micros",      // service write path
        "ontodq_dred_phase_micros", // retraction engine
        "ontodq_cache_hits_total",  // query cache
        "ontodq_retractions_total",
        "ontodq_wal_write_micros", // storage
        "ontodq_wal_fsync_micros",
        "ontodq_snapshot_write_micros",
        "ontodq_queue_depth", // worker pool
        "ontodq_queue_wait_micros",
        "ontodq_health_state",     // health machine
        "ontodq_snapshot_version", // per-context state
        "ontodq_rule_join_micros", // chase profiler
        "ontodq_chase_total_micros",
        "ontodq_lint_errors", // static analysis
        "ontodq_lint_warnings",
        "ontodq_chase_uncertified_total",
    ] {
        let family = families
            .get(name)
            .unwrap_or_else(|| panic!("scrape must cover {name}:\n{payload}"));
        assert!(family.help.is_some(), "{name} needs # HELP");
        assert!(
            !family.samples.is_empty(),
            "{name} declared but sampled nowhere"
        );
    }

    // Spot-check semantics: two applied batches → version gauge 2, and the
    // insert histogram saw exactly the flushed insert batch.
    let version = &families["ontodq_snapshot_version"].samples[0];
    assert_eq!(version.value, 2.0, "two flushes were applied");
    let apply_counts: f64 = families["ontodq_apply_micros"]
        .samples
        .iter()
        .filter(|s| s.name.ends_with("_count"))
        .map(|s| s.value)
        .sum();
    assert!(
        apply_counts >= 2.0,
        "insert + retract batches must be observed, got {apply_counts}"
    );
    // Static analysis: the hospital program lints error-free with exactly
    // the expected baseline warning (L102: the Shifts rule is outside the
    // quality-goal cone), and its certificate means no chase ran
    // uncertified.
    let lint_errors = &families["ontodq_lint_errors"].samples[0];
    assert!(
        lint_errors
            .labels
            .iter()
            .any(|(k, v)| k == "context" && v == "hospital"),
        "lint gauges are per-context"
    );
    assert_eq!(lint_errors.value, 0.0, "hospital program lints error-free");
    assert_eq!(
        families["ontodq_lint_warnings"].samples[0].value, 1.0,
        "the hospital baseline is exactly one warning (L102 unreachable Shifts rule)"
    );
    assert_eq!(
        families["ontodq_chase_uncertified_total"].samples[0].value, 0.0,
        "the hospital program is certified terminating, so no chase ran uncertified"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// `!profile` reports the per-rule chase profile of the current context:
/// rule lines ordered by cumulative join time plus a summary status line.
#[test]
fn profile_reports_per_rule_chase_timings() {
    let service = hospital_service();
    let pool = Arc::new(WorkerPool::new(2));
    let out = run_session(
        &service,
        &pool,
        "+Measurements(@Sep/6-11:05, \"Lou Reed\", 39.9).\n\
         !flush\n\
         !profile\n\
         !profile hospital\n\
         !profile nope\n\
         !quit\n",
    );
    assert!(
        out.contains("rule=") && out.contains("kernel="),
        "profile should print per-rule lines: {out}"
    );
    assert!(
        out.contains("ok context=hospital rules="),
        "profile should end with the summary line: {out}"
    );
    assert!(
        out.contains("total_join_micros="),
        "summary should carry cumulative join time: {out}"
    );
    assert!(
        out.contains("err: unknown context 'nope'"),
        "an unknown context is an inline error: {out}"
    );
}

/// The slow-query log: disarmed it stays empty, armed it records queries
/// crossing the threshold, and `!slow` dumps verb, latency and query text.
#[test]
fn slow_log_records_queries_over_the_threshold() {
    let service = hospital_service();
    let pool = Arc::new(WorkerPool::new(2));

    // Disarmed (the default): nothing is recorded.
    let out = run_session(
        &service,
        &pool,
        "?q- Measurements(t, p, v), p = \"Tom Waits\".\n!slow\n!quit\n",
    );
    assert!(
        out.contains("ok slow=0 threshold_micros=0"),
        "disarmed log must stay empty: {out}"
    );

    // Armed at 1µs every real query crosses the threshold.
    service.set_slow_query_threshold(1);
    let out = run_session(
        &service,
        &pool,
        "?q- Measurements(t, p, v), p = \"Lou Reed\".\n!slow\n!quit\n",
    );
    assert!(
        out.contains("slow verb=quality_query")
            && out.contains("query=Measurements(t, p, v), p = \"Lou Reed\"."),
        "armed log must dump the slow query: {out}"
    );
    assert!(
        out.contains("threshold_micros=1"),
        "the dump reports the armed threshold: {out}"
    );
}

/// The observability surfaces must keep answering while the service is
/// degraded: `!metrics` still renders a valid scrape (with the health gauge
/// flipped), `!profile` and `!slow` still respond.  Going dark during an
/// incident would make the whole subsystem pointless.
#[test]
fn metrics_profile_and_slow_answer_while_degraded() {
    let dir = temp_dir("degraded");
    let schedule = Arc::new(Mutex::new(FaultSchedule::new()));
    schedule.lock().unwrap().fail_nth(IoOp::WalFsync, 0);
    let policy: SharedIoPolicy = schedule.clone();
    let store = Arc::new(Mutex::new(
        Store::open_with_policy(&dir, StoreConfig::default(), policy).unwrap(),
    ));
    let service = Arc::new(QualityService::with_store(store));
    service.set_probe_interval(Duration::from_secs(3600));
    service.set_slow_query_threshold(1);
    service
        .register_context(
            "hospital",
            scenarios::hospital_context(),
            hospital::measurements_database(),
        )
        .unwrap();
    let pool = Arc::new(WorkerPool::new(2));
    let out = run_session(
        &service,
        &pool,
        "+Measurements(@Sep/6-11:05, \"Lou Reed\", 39.9).\n\
         !flush\n\
         !health\n\
         ?q- Measurements(t, p, v), p = \"Lou Reed\".\n\
         !metrics\n\
         !profile\n\
         !slow\n\
         !quit\n",
    );
    assert!(
        out.contains("ok health=degraded"),
        "the fsync fault must degrade the service: {out}"
    );
    let payload = metrics_payload(&out);
    let families =
        parse_prometheus(&payload).unwrap_or_else(|e| panic!("degraded scrape invalid: {e}"));
    validate_histograms(&families).unwrap_or_else(|e| panic!("degraded histogram invalid: {e}"));
    assert_eq!(
        families["ontodq_health_state"].samples[0].value, 1.0,
        "the health gauge must report degraded"
    );
    assert!(
        out.contains("ok context=hospital rules="),
        "!profile must answer while degraded: {out}"
    );
    assert!(
        out.contains("slow verb=quality_query"),
        "!slow must answer while degraded: {out}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `!health` line surfaces the pool's queue high-watermark and wait
/// percentile alongside the health machine's counters.
#[test]
fn health_line_surfaces_queue_pressure() {
    let service = hospital_service();
    let pool = Arc::new(WorkerPool::new(2));
    let out = run_session(
        &service,
        &pool,
        "?- Measurements(t, p, v).\n!health\n!quit\n",
    );
    assert!(
        out.contains("queue_peak=1"),
        "one dispatched query must raise the watermark to 1: {out}"
    );
    assert!(
        out.contains("queue_wait_p95="),
        "the wait percentile rides on the health line: {out}"
    );
}

/// Registry histograms stay consistent under concurrent writers: the
/// integration-level counterpart of the obs crate's unit test, hammering
/// one shared histogram from eight threads through the `Arc` handles the
/// registry hands out.
#[test]
fn histograms_are_consistent_under_concurrent_writers() {
    let registry = ontodq_obs::Registry::new();
    let histogram = registry.histogram("t_concurrent_micros", "test series", &[]);
    let threads = 8;
    let per_thread = 10_000u64;
    let mut handles = Vec::new();
    for t in 0..threads {
        let histogram = Arc::clone(&histogram);
        handles.push(std::thread::spawn(move || {
            for i in 0..per_thread {
                histogram.observe(t * per_thread + i);
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(histogram.count(), threads * per_thread);
    let expected_sum: u64 = (0..threads * per_thread).sum();
    assert_eq!(histogram.sum(), expected_sum);
    // And the rendered exposition of the hammered registry still validates.
    let families = parse_prometheus(&registry.render_prometheus()).unwrap();
    validate_histograms(&families).unwrap();
    let count = families["t_concurrent_micros"]
        .samples
        .iter()
        .find(|s| s.name.ends_with("_count"))
        .unwrap()
        .value;
    assert_eq!(count, (threads * per_thread) as f64);
}
