//! End-to-end suite for the `ontodq-lint` static-analysis engine (PR 10):
//! the shipped fixtures lint clean against a pinned baseline, unsafe
//! programs are rejected at registration with structured diagnostics,
//! uncertified (non-weakly-acyclic) programs chase behind an explicit
//! warning and bump `ontodq_chase_uncertified_total`, the `!check` protocol
//! verb reports the termination certificate, and — the property — every
//! randomly generated program the linter *certifies* terminating really
//! does chase to `Fixpoint` on all three evaluation strategies.

use ontodq_chase::{ChaseConfig, ChaseEngine, TerminationReason};
use ontodq_core::{lint_context, scenarios, Context, ContextError};
use ontodq_datalog::analysis::DatalogClass;
use ontodq_datalog::{parse_program, Severity, TerminationCertificate};
use ontodq_mdm::fixtures::hospital;
use ontodq_relational::{Database, Tuple, Value};
use ontodq_server::{serve_session, QualityService, ServiceError, WorkerPool};
use ontodq_workload::{generate, HospitalScale};
use proptest::prelude::*;
use std::sync::Arc;

fn run_session(service: &Arc<QualityService>, pool: &Arc<WorkerPool>, script: &str) -> String {
    let mut out = Vec::new();
    serve_session(service, pool, "hospital", script.as_bytes(), &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

/// A context whose quality predicate uses a head variable bound only by a
/// comparison atom — the canonical L001 safety violation.
fn unsafe_context() -> Context {
    Context::builder("unsafe-quality-context")
        .ontology(hospital::ontology())
        .copy_relation("Measurements")
        .quality_predicate(
            "Bad",
            "head variable v is bound only by the comparison, never by a positive atom",
            &["Bad(t, v) :- Measurements_c(t, p, x), v > 38."],
        )
        .quality_version(
            "Measurements",
            &["Measurements_q(t, p, v) :- Measurements_c(t, p, v)."],
        )
        .build()
        .expect("the context itself is well-formed; only the linter objects")
}

/// A context carrying a TGD whose position graph has a cycle through a
/// special edge (`Reaches[1] ⇒ Reaches[1]`): not weakly acyclic, so the
/// chase runs without a termination certificate.
fn cyclic_context() -> Context {
    Context::builder("cyclic-context")
        .ontology(hospital::ontology())
        .copy_relation("Measurements")
        .contextual_rule("Reaches(y, z) :- Reaches(x, y).")
        .quality_version(
            "Measurements",
            &["Measurements_q(t, p, v) :- Measurements_c(t, p, v)."],
        )
        .build()
        .expect("the cyclic context is well-formed; it is merely uncertified")
}

// ---------------------------------------------------------------------------
// Fixture baselines: the programs the repository ships must stay lint-clean.
// ---------------------------------------------------------------------------

/// The hospital fixture (the paper's running example) lints with zero
/// errors, a weakly-acyclic termination certificate, and exactly the
/// pinned warning baseline: L102 on the Shifts rule (no quality query
/// depends on it).
#[test]
fn hospital_fixture_is_certified_with_pinned_baseline() {
    let report = lint_context(
        &scenarios::hospital_context(),
        &hospital::measurements_database(),
    );
    assert_eq!(
        report.error_count(),
        0,
        "hospital must carry no lint errors"
    );
    assert!(report.certificate.terminating, "hospital must be certified");
    assert_eq!(report.certificate.class, DatalogClass::WeaklyAcyclic);
    assert!(report.certificate.witness_cycle.is_empty());
    assert!(report.strata.is_some(), "hospital must stratify");
    let warnings = report.warnings();
    assert_eq!(
        warnings.len(),
        1,
        "warning baseline drifted; update docs/analysis.md if intentional: {:?}",
        warnings
    );
    assert_eq!(warnings[0].code, "L102");
    assert_eq!(warnings[0].witness.as_deref(), Some("Shifts"));
}

/// The scaled-hospital workload generator (what `--scale` registers and the
/// `scaled_assessment` example runs) also lints error-free and certified,
/// at several seeds.
#[test]
fn scaled_workload_contexts_lint_error_free() {
    for seed in [0, 7, 42] {
        let workload = generate(&HospitalScale {
            seed,
            ..HospitalScale::small()
        });
        let report = lint_context(&workload.context(), &workload.instance);
        assert_eq!(
            report.error_count(),
            0,
            "scaled workload (seed {seed}) must carry no lint errors: {:?}",
            report.errors()
        );
        assert!(
            report.certificate.terminating,
            "scaled workload (seed {seed}) must be certified terminating"
        );
    }
}

// ---------------------------------------------------------------------------
// Registration gate: unsafe programs never reach the chase.
// ---------------------------------------------------------------------------

/// Registering a context with an unsafe rule fails with the structured
/// `Rejected` error carrying the L001 diagnostic — the program is refused
/// before any chase state is built.
#[test]
fn unsafe_rule_is_rejected_at_registration() {
    let service = QualityService::new();
    let result = service.register_context(
        "unsafe",
        unsafe_context(),
        hospital::measurements_database(),
    );
    let Err(ServiceError::Context(ContextError::Rejected(diagnostics))) = result else {
        panic!("registration must fail with ContextError::Rejected, got {result:?}");
    };
    let l001 = diagnostics
        .iter()
        .find(|d| d.code == "L001")
        .expect("the rejection must carry the L001 safety diagnostic");
    assert_eq!(l001.severity, Severity::Error);
    assert_eq!(l001.witness.as_deref(), Some("v"));
    assert!(
        l001.rule.is_some(),
        "the diagnostic must anchor to the offending rule"
    );
    // The rejected context must not be registered at all.
    assert!(service.check("unsafe").is_err());
    // The error's rendering names the static-analysis gate.
    let message = ServiceError::Context(ContextError::Rejected(diagnostics)).to_string();
    assert!(
        message.contains("rejected by static analysis"),
        "unexpected rendering: {message}"
    );
}

// ---------------------------------------------------------------------------
// Uncertified programs: warn, count, but still run.
// ---------------------------------------------------------------------------

/// A non-weakly-acyclic context registers fine (warnings are not errors),
/// `check` reports `certified=no` with the L106 warning and a witness
/// cycle, and every chase over it bumps `ontodq_chase_uncertified_total`.
#[test]
fn uncertified_context_warns_and_counts_chases() {
    let service = Arc::new(QualityService::new());
    service
        .register_context(
            "cyclic",
            cyclic_context(),
            hospital::measurements_database(),
        )
        .expect("uncertified contexts register with warnings, not errors");

    let report = service.check("cyclic").unwrap();
    assert!(!report.certificate.terminating);
    assert!(
        !report.certificate.witness_cycle.is_empty(),
        "an uncertified program must carry a witness cycle"
    );
    assert!(
        report.certificate.rendered_cycle().contains("Reaches"),
        "the witness cycle must run through Reaches: {}",
        report.certificate.rendered_cycle()
    );
    let l106 = report
        .diagnostics
        .iter()
        .find(|d| d.code == "L106")
        .expect("uncertified programs must carry the L106 warning");
    assert_eq!(l106.severity, Severity::Warn);

    // Registration chased once without a certificate; inserting facts
    // chases again — the counter must track both.
    let pool = Arc::new(WorkerPool::new(2));
    service
        .insert_facts(
            "cyclic",
            vec![(
                "Measurements".to_string(),
                Tuple::new(vec![
                    Value::parse_time("Sep/6-11:05").unwrap(),
                    Value::str("Lou Reed"),
                    Value::double(39.9),
                ]),
            )],
        )
        .expect("inserting into the uncertified context still works");
    let metrics = service.render_metrics(&pool);
    let uncertified = metrics
        .lines()
        .find(|l| l.starts_with("ontodq_chase_uncertified_total"))
        .expect("the uncertified-chase counter must be exposed");
    let value: f64 = uncertified
        .rsplit(' ')
        .next()
        .unwrap()
        .parse()
        .expect("counter value parses");
    assert!(
        value >= 2.0,
        "register + insert must both count as uncertified chases: {uncertified}"
    );
}

// ---------------------------------------------------------------------------
// Engine-level certificate diagnostics: C001 / C002.
// ---------------------------------------------------------------------------

/// A certified program that hits the tuple budget is an engine invariant
/// violation: the result carries the C001 error diagnostic and the profile
/// counts it.
#[test]
fn certified_tuple_budget_hit_is_an_invariant_error() {
    let program = parse_program("B(x) :- A(x).\nC(x) :- B(x).\n").unwrap();
    let certificate = TerminationCertificate::of_program(&program);
    assert!(certificate.terminating, "plain Datalog is weakly acyclic");
    let mut db = Database::new();
    for i in 0..8 {
        db.insert_values("A", [format!("a{i}")]).unwrap();
    }
    let mut config = ChaseConfig::semi_naive();
    config.max_new_tuples = 3;
    config.certificate = Some(certificate);
    let result = ChaseEngine::new(config).run(&program, &db);
    assert_eq!(result.termination, TerminationReason::TupleLimit);
    let c001 = result
        .diagnostics
        .iter()
        .find(|d| d.code == "C001")
        .expect("truncating a certified chase must raise C001");
    assert_eq!(c001.severity, Severity::Error);
    assert!(c001.message.contains("invariant violation"));
    assert_eq!(result.profile.lint_errors, 1);
    assert_eq!(
        result.profile.certificate.as_ref().map(|c| c.terminating),
        Some(true),
        "the profile must carry the certificate the run was configured with"
    );
}

/// An uncertified program chases behind the C002 pre-chase warning — even
/// when the run happens to reach a fixpoint — and the warning carries the
/// special-edge witness cycle.
#[test]
fn uncertified_chase_attaches_prechase_warning() {
    let program = parse_program("Reaches(y, z) :- Reaches(x, y).\n").unwrap();
    let certificate = TerminationCertificate::of_program(&program);
    assert!(!certificate.terminating, "the self-feeding TGD is not WA");
    let mut db = Database::new();
    // No Reaches facts: the chase reaches a fixpoint immediately, but the
    // missing certificate must still be reported.
    db.insert_values("Seed", ["s"]).unwrap();
    let mut config = ChaseConfig::semi_naive();
    config.certificate = Some(certificate);
    let result = ChaseEngine::new(config).run(&program, &db);
    assert_eq!(result.termination, TerminationReason::Fixpoint);
    let c002 = result
        .diagnostics
        .iter()
        .find(|d| d.code == "C002")
        .expect("an uncertified run must raise C002");
    assert_eq!(c002.severity, Severity::Warn);
    assert!(
        c002.witness.as_deref().unwrap_or("").contains("Reaches"),
        "C002 must carry the witness cycle: {:?}",
        c002.witness
    );
    assert_eq!(result.profile.lint_warnings, 1);
}

/// With no certificate configured (plain library callers), the engine
/// attaches no diagnostics at all — historical behavior is unchanged.
#[test]
fn chase_without_certificate_attaches_no_diagnostics() {
    let program = parse_program("B(x) :- A(x).\n").unwrap();
    let mut db = Database::new();
    db.insert_values("A", ["a"]).unwrap();
    let result = ChaseEngine::new(ChaseConfig::semi_naive()).run(&program, &db);
    assert_eq!(result.termination, TerminationReason::Fixpoint);
    assert!(result.diagnostics.is_empty());
    assert!(result.profile.certificate.is_none());
}

// ---------------------------------------------------------------------------
// Protocol surface: the !check verb and the lint fields of !stats.
// ---------------------------------------------------------------------------

/// `!check` prints the machine-readable diagnostic lines followed by the
/// certificate summary; `!stats` exposes the lint counts.
#[test]
fn check_verb_reports_certificate_and_diagnostics() {
    let service = Arc::new(QualityService::new());
    service
        .register_context(
            "hospital",
            scenarios::hospital_context(),
            hospital::measurements_database(),
        )
        .unwrap();
    let pool = Arc::new(WorkerPool::new(2));

    let out = run_session(
        &service,
        &pool,
        "!check\n!check hospital\n!check nowhere\n!stats\n",
    );
    assert!(
        out.contains("diag code=L102 severity=warn"),
        "!check must print the baseline warning line: {out}"
    );
    assert!(
        out.contains("ok check context=hospital class=weakly-acyclic certified=yes"),
        "!check must print the certificate summary: {out}"
    );
    assert!(
        out.contains("errors=0 warnings=1"),
        "!check must count the baseline diagnostics: {out}"
    );
    assert!(
        out.contains("err: unknown context 'nowhere'"),
        "!check on an unknown context must fail cleanly: {out}"
    );
    assert!(
        out.contains("lint_errors=0") && out.contains("lint_warnings=1"),
        "!stats must expose the lint counts: {out}"
    );
}

// ---------------------------------------------------------------------------
// The property: certification is sound.
// ---------------------------------------------------------------------------

/// Render one random atom over the fixed vocabulary `P/1, Q/2, R/2` with
/// variables drawn from `vars`.
fn arb_atom(vars: &'static [&'static str]) -> impl Strategy<Value = String> {
    let var = prop_oneof![Just(vars[0]), Just(vars[1]), Just(vars[2]), Just(vars[3]),];
    let var2 = prop_oneof![Just(vars[0]), Just(vars[1]), Just(vars[2]), Just(vars[3]),];
    let var3 = prop_oneof![Just(vars[0]), Just(vars[1]), Just(vars[2]), Just(vars[3]),];
    (0usize..3, var, var2, var3).prop_map(|(p, a, b, c)| match p {
        0 => format!("P({a})"),
        1 => format!("Q({b}, {c})"),
        _ => format!("R({a}, {c})"),
    })
}

/// One random TGD: 1–2 body atoms over `x, y, z` and a head over
/// `x, y, z, w` — `w` (and any head variable absent from the body) is
/// existentially quantified, so special edges genuinely occur.
fn arb_rule() -> impl Strategy<Value = String> {
    const BODY_VARS: &[&str] = &["x", "y", "z", "x"];
    const HEAD_VARS: &[&str] = &["x", "y", "z", "w"];
    (
        proptest::collection::vec(arb_atom(BODY_VARS), 1..3),
        arb_atom(HEAD_VARS),
    )
        .prop_map(|(body, head)| format!("{head} :- {}.", body.join(", ")))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Soundness of the termination certificate: whenever the linter
    /// certifies a random program weakly acyclic, the restricted chase
    /// reaches `Fixpoint` — with no diagnostics — on the naive, semi-naive
    /// and parallel strategies alike.
    #[test]
    fn certified_random_programs_always_reach_fixpoint(
        rules in proptest::collection::vec(arb_rule(), 1..5)
    ) {
        let program = parse_program(&rules.join("\n")).unwrap();
        let certificate = TerminationCertificate::of_program(&program);
        if !certificate.terminating {
            // Uncertified draws are out of scope for this property (their
            // chases may legitimately run to the budget).
            return Ok(());
        }
        let mut db = Database::new();
        db.insert_values("P", ["a"]).unwrap();
        db.insert_values("Q", ["a", "b"]).unwrap();
        db.insert_values("R", ["b", "a"]).unwrap();
        for config in [
            ChaseConfig::naive(),
            ChaseConfig::semi_naive(),
            ChaseConfig::parallel_with_threads(2),
        ] {
            let mut config = config;
            config.certificate = Some(certificate.clone());
            let result = ChaseEngine::new(config).run(&program, &db);
            prop_assert_eq!(
                result.termination,
                TerminationReason::Fixpoint,
                "certified program must terminate ({}): {}",
                certificate,
                rules.join(" ")
            );
            prop_assert!(
                result.diagnostics.is_empty(),
                "a certified fixpoint run must be diagnostic-free: {:?}",
                result.diagnostics
            );
        }
    }
}
