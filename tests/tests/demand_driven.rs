//! Demand-driven query answering equals full-materialization answering.
//!
//! The magic-set chase (`ontodq_datalog::analysis::magic_transform` →
//! `ontodq_chase::ChaseEngine::chase_for_query` → the `?d-` verb of
//! `ontodq-server`) is a different *evaluation strategy*, not different
//! semantics: its certain answers must equal those of the fully
//! materialized `?q-` path on every query — on the paper's hospital
//! fixture, on randomized scaled workloads across the selectivity
//! spectrum, and through the server's snapshot/caching machinery.
//! (Certain answers are ground tuples, so equality here is plain set
//! equality; labeled-null renaming cannot distinguish them.)

use ontodq_core::{
    assess, compile_context, quality_answers, quality_answers_on_demand, rewrite_to_quality,
    scenarios, ResumableAssessment,
};
use ontodq_integration_tests::query;
use ontodq_mdm::fixtures::hospital;
use ontodq_qa::AnswerSet;
use ontodq_relational::{Tuple, Value};
use ontodq_server::{parse_query_text, QualityService};
use ontodq_workload::{generate, generate_queries, HospitalScale, Selectivity};

// ---------------------------------------------------------------------
// Hospital fixture: the paper's running example.
// ---------------------------------------------------------------------

#[test]
fn hospital_demand_answers_equal_full_assessment() {
    let context = scenarios::hospital_context();
    let instance = hospital::measurements_database();
    let assessment = assess(&context, &instance);
    for text in [
        // The doctor's query of Examples 1 and 7.
        "Q(t, p, v) :- Measurements(t, p, v), p = \"Tom Waits\", t >= @Sep/5-11:45, t <= @Sep/5-12:15.",
        // Per-patient point lookups.
        "Q(t, p, v) :- Measurements(t, p, v), p = \"Tom Waits\".",
        "Q(t, p, v) :- Measurements(t, p, v), p = \"Lou Reed\".",
        // A broad scan (no usable binding: relevance restriction only).
        "Q(t, p, v) :- Measurements(t, p, v).",
        // Mixing quality-rewritten and contextual predicates.
        "Q(t, v) :- Measurements(t, p, v), PatientUnit(Standard, d, p).",
        // A Boolean query.
        "Q() :- Measurements(t, p, v), p = \"Tom Waits\".",
    ] {
        let q = query(text);
        assert_eq!(
            quality_answers_on_demand(&context, &instance, &q),
            quality_answers(&context, &assessment, &q),
            "demand vs full diverge on {text}"
        );
    }
}

#[test]
fn hospital_doctor_query_reproduces_example_7_on_demand() {
    let context = scenarios::hospital_context();
    let instance = hospital::measurements_database();
    let answers = quality_answers_on_demand(&context, &instance, &scenarios::doctors_query());
    // Exactly the one quality measurement of Example 7.
    assert_eq!(answers.len(), 1);
    let tuple = answers.to_vec().pop().unwrap();
    assert_eq!(tuple.get(1), Some(&Value::str(hospital::TOM_WAITS)));
    assert_eq!(tuple.get(2), Some(&Value::double(38.2)));
}

#[test]
fn demand_chase_materializes_a_fraction_of_the_instance() {
    let context = scenarios::hospital_context();
    let instance = hospital::measurements_database();
    let (program, database) = compile_context(&context, &instance);
    let q = rewrite_to_quality(
        &context,
        &query("Q(t, p, v) :- Measurements(t, p, v), p = \"Tom Waits\"."),
    );
    let full = ontodq_chase::chase(&program, &database);
    let demand = ontodq_qa::answer_on_demand(&program, &database, &q);
    assert!(
        demand.chase.stats.tuples_added < full.stats.tuples_added,
        "demanded {} >= full {}",
        demand.chase.stats.tuples_added,
        full.stats.tuples_added
    );
    assert!(!demand.answers.is_empty());
}

// ---------------------------------------------------------------------
// Randomized scaled workloads across the selectivity spectrum.
// ---------------------------------------------------------------------

fn assert_workload_agreement(scale: &HospitalScale, per_class: usize, query_seed: u64) {
    let workload = generate(scale);
    let context = workload.context();
    let assessment = assess(&context, &workload.instance);
    let mut saw_selective_win = false;
    let (program, database) = compile_context(&context, &workload.instance);
    let full_derived = assessment.chase.stats.tuples_added;
    for spec in generate_queries(scale, per_class, query_seed) {
        let q = parse_query_text(&spec.text).expect("generated queries parse");
        let expected = quality_answers(&context, &assessment, &q);
        let rewritten = rewrite_to_quality(&context, &q);
        let demand = ontodq_qa::answer_on_demand(&program, &database, &rewritten);
        assert_eq!(
            demand.answers, expected,
            "demand vs full diverge on {} (seed {query_seed}, {} measurements)",
            spec.text, scale.measurements
        );
        if spec.class != Selectivity::Broad && demand.chase.stats.tuples_added * 2 < full_derived {
            saw_selective_win = true;
        }
    }
    assert!(
        saw_selective_win,
        "no selective query demanded < half the full materialization"
    );
}

#[test]
fn scaled_workload_agreement_small() {
    assert_workload_agreement(&HospitalScale::small(), 3, 7);
}

#[test]
fn scaled_workload_agreement_medium_across_seeds() {
    for (data_seed, query_seed) in [(7u64, 11u64), (99, 23)] {
        let mut scale = HospitalScale::with_measurements(200);
        scale.seed = data_seed;
        assert_workload_agreement(&scale, 2, query_seed);
    }
}

// ---------------------------------------------------------------------
// Through the server: ?d- == ?q- on live snapshots, across updates.
// ---------------------------------------------------------------------

#[test]
fn server_demand_verb_equals_quality_verb_across_updates() {
    let service = QualityService::new();
    service
        .register_context(
            "hospital",
            scenarios::hospital_context(),
            hospital::measurements_database(),
        )
        .unwrap();
    let queries = [
        "Measurements(t, p, v), p = \"Tom Waits\"",
        "Measurements(t, p, v)",
        "PatientUnit(Standard, d, p)",
    ];
    let check = |version: u64| {
        for text in &queries {
            let quality = service.quality_answers("hospital", text).unwrap();
            let demand = service.demand_answers("hospital", text).unwrap();
            assert_eq!(quality.version, version);
            assert_eq!(demand.version, version);
            assert_eq!(
                quality.answers, demand.answers,
                "?d- vs ?q- diverge on {text} at version {version}"
            );
        }
    };
    check(0);
    // An applied batch bumps the version; both paths must see it.
    service
        .insert_facts(
            "hospital",
            vec![(
                "Measurements".to_string(),
                Tuple::new(vec![
                    Value::parse_time("Sep/6-11:05").unwrap(),
                    Value::str("Lou Reed"),
                    Value::double(39.9),
                ]),
            )],
        )
        .unwrap();
    check(1);
    // The demand answers are cached per version like ?q-.
    let first = service
        .demand_answers("hospital", "Measurements(t, p, v)")
        .unwrap();
    assert!(first.cached);
}

#[test]
fn server_demand_verb_on_scaled_context() {
    let workload = generate(&HospitalScale::small());
    let service = QualityService::new();
    service
        .register_context("scaled", workload.context(), workload.instance.clone())
        .unwrap();
    for spec in generate_queries(&workload.scale, 2, 5) {
        let quality = service.quality_answers("scaled", &spec.text).unwrap();
        let demand = service.demand_answers("scaled", &spec.text).unwrap();
        assert_eq!(
            quality.answers, demand.answers,
            "?d- vs ?q- diverge on {}",
            spec.text
        );
    }
}

// ---------------------------------------------------------------------
// The resumable path: demand answers track incremental batches.
// ---------------------------------------------------------------------

#[test]
fn resumable_demand_answers_track_batches_and_match_scratch() {
    let context = scenarios::hospital_context();
    let mut resumable =
        ResumableAssessment::new(context.clone(), hospital::measurements_database());
    let q = query("Q(t, p, v) :- Measurements(t, p, v).");
    let mut accumulated = hospital::measurements_database();
    for (time, patient, value) in [
        ("Sep/6-11:05", "Lou Reed", 39.9),
        ("Sep/6-12:00", "Lou Reed", 37.2),
    ] {
        let tuple = Tuple::new(vec![
            Value::parse_time(time).unwrap(),
            Value::str(patient),
            Value::double(value),
        ]);
        resumable
            .insert_batch([("Measurements".to_string(), tuple.clone())])
            .unwrap();
        accumulated.insert("Measurements", tuple).unwrap();
        let scratch = assess(&context, &accumulated);
        let expected: AnswerSet = quality_answers(&context, &scratch, &q);
        assert_eq!(resumable.answer_on_demand(&q), expected);
    }
}
