//! Concurrent-equivalence suite for `ontodq-server`.
//!
//! The service promises snapshot isolation with incrementally re-chased
//! writes.  The contract under test:
//!
//! * **Equivalence**: every answer set a reader observes at snapshot
//!   version `v` must equal the certain answers computed by a *fresh
//!   from-scratch chase* of exactly the facts applied up to batch `v`
//!   (certain answers are labeled-null-free, so they agree across universal
//!   models regardless of null renaming);
//! * **Isolation**: readers racing a writer only ever see whole versions,
//!   never a half-applied batch;
//! * **Regression**: an incremental re-chase derives the same ground
//!   instance as a full re-chase on the hospital fixture (ground atoms of a
//!   universal model are exactly the certain atoms, so two universal models
//!   of the same facts share them).

use ontodq_chase::{chase, chase_incremental, evaluate_project, ChaseState};
use ontodq_core::{assess, rewrite_to_quality, scenarios, Context};
use ontodq_mdm::fixtures::hospital;
use ontodq_qa::AnswerSet;
use ontodq_relational::{Database, Tuple, Value};
use ontodq_server::{parse_query_text, QualityService};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::Duration;

/// A deterministic update schedule: per batch, facts for the instance under
/// assessment (`Measurements`) and facts for contextual/categorical
/// relations.
fn update_batches() -> Vec<Vec<(String, Tuple)>> {
    let measurements: Vec<Tuple> = hospital::measurements_database()
        .relation("Measurements")
        .unwrap()
        .tuples()
        .to_vec();
    let m = |t: &Tuple| ("Measurements".to_string(), t.clone());
    vec![
        // Batch 1: the first two Table I rows.
        vec![m(&measurements[0]), m(&measurements[1])],
        // Batch 2: two more rows plus a new working schedule (downward
        // navigation invents a null shift for Rita).
        vec![
            m(&measurements[2]),
            m(&measurements[3]),
            (
                "WorkingSchedules".to_string(),
                Tuple::from_iter(["Intensive", "Sep/9", "Rita", "cert."]),
            ),
        ],
        // Batch 3: the rest of Table I.
        vec![m(&measurements[4]), m(&measurements[5])],
        // Batch 4: an explicit shift fact (EGD fodder: unifies any matching
        // null shifts invented earlier).
        vec![(
            "Shifts".to_string(),
            Tuple::from_iter(["W1", "Sep/9", "Mark", "morning"]),
        )],
        // Batch 5: one duplicate (a no-op) and one genuinely new reading at
        // a known timestamp.
        vec![
            m(&measurements[0]),
            (
                "Measurements".to_string(),
                Tuple::new(vec![
                    Value::parse_time("Sep/5-12:05").unwrap(),
                    Value::str(hospital::TOM_WAITS),
                    Value::double(39.0),
                ]),
            ),
        ],
    ]
}

const QUERIES: [(&str, bool); 5] = [
    ("Measurements(t, p, v)", false),
    ("Measurements(t, p, v)", true),
    ("Measurements(t, p, v), p = \"Tom Waits\"", true),
    ("PatientUnit(Standard, d, p)", false),
    ("Shifts(w, d, n, s), n = \"Mark\"", false),
];

/// The from-scratch oracle for one version: assess the prefix instance with
/// the prefix contextual facts as external sources (exactly how the service
/// folds non-mapped facts in), then answer over chased-instance ∪ instance,
/// as a snapshot does.
fn oracle_answers(
    context: &Context,
    instance: &Database,
    contextual_extras: &Database,
) -> BTreeMap<(String, bool), AnswerSet> {
    let mut oracle_context = context.clone();
    oracle_context
        .external_sources
        .merge(contextual_extras)
        .unwrap();
    let assessment = assess(&oracle_context, instance);
    let mut database = assessment.contextual_instance.clone();
    database.merge(instance).unwrap();

    let mut expected = BTreeMap::new();
    for (text, quality) in QUERIES {
        let parsed = parse_query_text(text).unwrap();
        let query = if quality {
            rewrite_to_quality(context, &parsed)
        } else {
            parsed
        };
        let tuples = evaluate_project(&database, &query.body, &query.answer_variables);
        expected.insert(
            (text.to_string(), quality),
            AnswerSet::from_tuples(tuples).certain(),
        );
    }
    expected
}

/// Precompute the oracle for every version 0..=batches.
fn oracle_per_version(
    context: &Context,
    batches: &[Vec<(String, Tuple)>],
) -> Vec<BTreeMap<(String, bool), AnswerSet>> {
    let mut instance = Database::new();
    let mut extras = Database::new();
    let mut expected = vec![oracle_answers(context, &instance, &extras)];
    for batch in batches {
        for (predicate, tuple) in batch {
            if predicate == "Measurements" {
                instance.insert(predicate, tuple.clone()).unwrap();
            } else {
                extras.insert(predicate, tuple.clone()).unwrap();
            }
        }
        expected.push(oracle_answers(context, &instance, &extras));
    }
    expected
}

/// ≥ 4 reader threads race a writer applying the update schedule; every
/// observed `(version, answers)` pair must match the from-scratch oracle
/// for that version.
#[test]
fn concurrent_readers_always_see_a_from_scratch_equivalent_snapshot() {
    const READERS: usize = 4;
    let context = scenarios::hospital_context();
    let batches = update_batches();
    let expected = Arc::new(oracle_per_version(&context, &batches));
    let final_version = batches.len() as u64;

    let service = Arc::new(QualityService::new());
    service
        .register_context("hospital", context, Database::new())
        .unwrap();

    std::thread::scope(|scope| {
        // The writer: one batch at a time, with small pauses so readers
        // genuinely interleave with intermediate versions.
        let writer_service = Arc::clone(&service);
        let writer_batches = batches.clone();
        scope.spawn(move || {
            for (index, batch) in writer_batches.into_iter().enumerate() {
                std::thread::sleep(Duration::from_millis(2));
                let report = writer_service.insert_facts("hospital", batch).unwrap();
                assert_eq!(report.version, index as u64 + 1);
            }
        });

        for reader in 0..READERS {
            let service = Arc::clone(&service);
            let expected = Arc::clone(&expected);
            scope.spawn(move || {
                let mut observed = BTreeSet::new();
                let mut iterations = 0usize;
                loop {
                    iterations += 1;
                    // Stagger the query mix per reader.
                    let (text, quality) = QUERIES[(reader + iterations) % QUERIES.len()];
                    let response = if quality {
                        service.quality_answers("hospital", text).unwrap()
                    } else {
                        service.plain_answers("hospital", text).unwrap()
                    };
                    let want = expected[response.version as usize]
                        .get(&(text.to_string(), quality))
                        .unwrap();
                    assert_eq!(
                        *response.answers, *want,
                        "reader {reader} at version {} answered {text} (quality={quality}) \
                         differently from a from-scratch chase",
                        response.version
                    );
                    observed.insert(response.version);
                    if response.version == final_version && iterations >= 50 {
                        break;
                    }
                    if iterations.is_multiple_of(8) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                assert!(observed.contains(&final_version));
            });
        }
    });

    // After the race: the final snapshot is version `final_version` and the
    // cache has seen traffic from all readers.
    let snapshot = service.snapshot("hospital").unwrap();
    assert_eq!(snapshot.version, final_version);
    let stats = service.cache_stats();
    assert!(stats.hits > 0, "repeated queries should hit the cache");
    assert!(stats.entries >= QUERIES.len() as u64 - 1);
}

/// Regression: incremental re-chase == full re-chase on the hospital
/// fixture, compared on ground atoms (identical across universal models)
/// and on the canned example queries.
#[test]
fn incremental_rechase_equals_full_rechase_on_hospital_fixture() {
    let compiled = ontodq_mdm::compile(&hospital::ontology());
    let program = &compiled.program;

    // Split the extensional database: hold back all WorkingSchedules rows
    // and half the PatientWard rows, stream them back in two batches.
    let mut initial = compiled.database.clone();
    let schedules: Vec<Tuple> = initial
        .relation("WorkingSchedules")
        .unwrap()
        .tuples()
        .to_vec();
    let wards: Vec<Tuple> = initial.relation("PatientWard").unwrap().tuples().to_vec();
    let held_wards: Vec<Tuple> = wards.iter().skip(wards.len() / 2).cloned().collect();
    {
        let held: BTreeSet<Tuple> = held_wards.iter().cloned().collect();
        initial
            .relation_mut("WorkingSchedules")
            .unwrap()
            .retain(|_| false);
        initial
            .relation_mut("PatientWard")
            .unwrap()
            .retain(|t| !held.contains(t));
    }

    let mut state = ChaseState::new(program, &initial);
    let _ = chase_incremental(program, &mut state);
    state
        .insert_batch(
            held_wards
                .iter()
                .map(|t| ("PatientWard".to_string(), t.clone())),
        )
        .unwrap();
    let _ = chase_incremental(program, &mut state);
    state
        .insert_batch(
            schedules
                .iter()
                .map(|t| ("WorkingSchedules".to_string(), t.clone())),
        )
        .unwrap();
    let incremental = chase_incremental(program, &mut state);

    let scratch = chase(program, &compiled.database);
    assert!(incremental.violations.nc.len() == scratch.violations.nc.len());

    // Ground atoms must agree relation by relation.
    let ground = |db: &Database| -> BTreeMap<String, BTreeSet<Tuple>> {
        db.relations()
            .map(|r| {
                (
                    r.name().to_string(),
                    r.iter().filter(|t| t.is_ground()).collect(),
                )
            })
            .collect()
    };
    let incremental_ground = ground(&incremental.database);
    let scratch_ground = ground(&scratch.database);
    for (name, tuples) in &scratch_ground {
        assert_eq!(
            incremental_ground.get(name).unwrap_or(&BTreeSet::new()),
            tuples,
            "ground atoms of {name} diverged between incremental and full chase"
        );
    }

    // And the canned example query agrees (certain answers).
    let query = scenarios::marks_shift_query();
    let a = evaluate_project(&incremental.database, &query.body, &query.answer_variables);
    let b = evaluate_project(&scratch.database, &query.body, &query.answer_variables);
    assert_eq!(
        AnswerSet::from_tuples(a).certain(),
        AnswerSet::from_tuples(b).certain()
    );
}

/// The service's incremental path must agree with the one-shot pipeline on
/// the full hospital workload streamed in one-measurement batches.
#[test]
fn streamed_service_state_matches_one_shot_assessment() {
    let context = scenarios::hospital_context();
    let full = hospital::measurements_database();
    let service = QualityService::new();
    service
        .register_context("hospital", context.clone(), Database::new())
        .unwrap();

    for tuple in full.relation("Measurements").unwrap().iter() {
        service
            .insert_facts(
                "hospital",
                vec![("Measurements".to_string(), tuple.clone())],
            )
            .unwrap();
    }

    let snapshot = service.snapshot("hospital").unwrap();
    let one_shot = assess(&context, &full);
    let mut streamed: Vec<Tuple> = snapshot
        .quality
        .relation("Measurements")
        .unwrap()
        .tuples()
        .to_vec();
    let mut batch: Vec<Tuple> = one_shot.quality_tuples("Measurements");
    streamed.sort();
    batch.sort();
    assert_eq!(streamed, batch);
    assert_eq!(
        snapshot.metrics.relations.get("Measurements"),
        one_shot.metrics.relations.get("Measurements")
    );
}

/// Snapshot readers never contend on the interner's write path.
///
/// Once a context is registered and its instance chased, every symbol a
/// reader can touch — instance constants, chased derivations, the prepared
/// queries' constants — is already in the global symbol table, so query
/// evaluation runs entirely on the interner's shared read path.  The
/// [`ontodq_relational::SymbolInterner::write_acquisitions`] counter ticks
/// once per *new* symbol; a reader phase must not move it.
///
/// The counter is process-global and the test harness runs tests in
/// parallel, so a concurrent test interning a brand-new string could bump
/// it mid-phase; the distinct-symbol supply of a test run is finite, so we
/// retry a few times and require at least one clean (zero-delta) phase.
#[test]
fn snapshot_readers_never_take_the_interner_write_path() {
    use ontodq_relational::SymbolInterner;

    let service = Arc::new(QualityService::new());
    service
        .register_context(
            "hospital",
            scenarios::hospital_context(),
            hospital::measurements_database(),
        )
        .unwrap();
    let queries = [
        ("Measurements(t, p, v)", false),
        ("Measurements(t, p, v), p = \"Tom Waits\"", false),
        ("Measurements(t, p, v)", true),
        ("Measurements(t, p, v), p = \"Tom Waits\"", true),
    ];
    // Warm every query shape once: parsing a query interns any constant its
    // text introduces (ours reuse instance constants, but the warm-up makes
    // the phase below insensitive to that).
    for (text, quality) in queries {
        let response = if quality {
            service.quality_answers("hospital", text)
        } else {
            service.plain_answers("hospital", text)
        };
        response.unwrap();
    }

    let interner = SymbolInterner::global();
    let mut clean_phase = false;
    for _ in 0..10 {
        let before = interner.write_acquisitions();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        for (text, quality) in queries {
                            let response = if quality {
                                service.quality_answers("hospital", text)
                            } else {
                                service.plain_answers("hospital", text)
                            };
                            assert!(response.unwrap().answers.len() <= 16);
                        }
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        if interner.write_acquisitions() == before {
            clean_phase = true;
            break;
        }
        // Another test interned a new symbol mid-phase; let the suite's
        // distinct-symbol supply drain and try again.
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        clean_phase,
        "snapshot readers kept interning new symbols — the read path is taking the write lock"
    );
}
