//! End-to-end reproduction of the paper's running example:
//! Tables I–V, the dimensional rules (7)–(9), the inter-dimensional
//! constraint, the EGD (6), and the quality-assessment pipeline of
//! Section V (Example 7).

use ontodq_core::clean_query::{plain_answers, quality_answers};
use ontodq_core::{assess, scenarios};
use ontodq_integration_tests::{compiled_hospital, hospital_engine, query};
use ontodq_mdm::fixtures::hospital;
use ontodq_relational::{Tuple, Value};

#[test]
fn table_i_is_loaded_exactly() {
    let db = hospital::measurements_database();
    let m = db.relation("Measurements").unwrap();
    assert_eq!(m.len(), 6);
    // Spot-check the first and last rows of Table I.
    assert!(m.contains(&Tuple::new(vec![
        Value::parse_time("Sep/5-12:10").unwrap(),
        Value::str("Tom Waits"),
        Value::double(38.2),
    ])));
    assert!(m.contains(&Tuple::new(vec![
        Value::parse_time("Sep/5-12:05").unwrap(),
        Value::str("Lou Reed"),
        Value::double(38.0),
    ])));
}

#[test]
fn tables_iii_iv_v_are_loaded_exactly() {
    let ontology = hospital::ontology();
    let data = ontology.data();
    // Table III.
    let ws = data.relation("WorkingSchedules").unwrap();
    assert_eq!(ws.len(), 5);
    assert!(ws.contains(&Tuple::from_iter(["Standard", "Sep/9", "Mark", "non-c."])));
    // Table IV.
    let shifts = data.relation("Shifts").unwrap();
    assert_eq!(shifts.len(), 3);
    assert!(shifts.contains(&Tuple::from_iter(["W1", "Sep/6", "Helen", "morning"])));
    // Table V.
    let discharge = data.relation("DischargePatients").unwrap();
    assert_eq!(discharge.len(), 3);
    assert!(discharge.contains(&Tuple::from_iter(["H2", "Oct/5", "Elvis Costello"])));
}

#[test]
fn example_1_upward_navigation_assigns_units_to_measup_days() {
    let engine = hospital_engine();
    // Tom Waits was in the standard care unit on Sep/5 and Sep/6 — the days
    // on which his measurements were taken with the right thermometer.
    let q = query("Q(d) :- PatientUnit(Standard, d, p), p = \"Tom Waits\".");
    let answers = engine.certain_answers(&q);
    assert_eq!(answers.len(), 2);
    assert!(answers.contains(&Tuple::from_iter(["Sep/5"])));
    assert!(answers.contains(&Tuple::from_iter(["Sep/6"])));
}

#[test]
fn example_1_constraint_discards_the_intensive_ward_tuple() {
    let compiled = compiled_hospital();
    let result = ontodq_chase::chase(&compiled.program, &compiled.database);
    assert_eq!(result.violations.nc.len(), 1);
    let witness = &result.violations.nc[0].witness;
    // The violating tuple is the Sep/7 stay in the intensive ward W3.
    assert_eq!(
        witness.get(&ontodq_datalog::Variable::new("w")),
        Some(&Value::str("W3"))
    );
    assert_eq!(
        witness.get(&ontodq_datalog::Variable::new("d")),
        Some(&Value::str("Sep/7"))
    );
}

#[test]
fn example_2_and_5_downward_navigation_dates_for_mark() {
    let engine = hospital_engine();
    for ward in ["W1", "W2"] {
        let q = query(&format!("Q(d) :- Shifts({ward}, d, \"Mark\", s)."));
        assert_eq!(
            engine.certain_answers(&q).to_vec(),
            vec![Tuple::from_iter(["Sep/9"])],
            "Mark's shift dates in {ward}"
        );
    }
    // The shift attribute itself is unknown (a labeled null) — no certain
    // answer for it.
    let q = query("Q(s) :- Shifts(W2, \"Sep/9\", \"Mark\", s).");
    assert!(engine.certain_answers(&q).is_empty());
}

#[test]
fn example_6_discharge_rule_invents_units() {
    let compiled = ontodq_integration_tests::compiled_hospital_with_discharge();
    let result = ontodq_chase::chase(&compiled.program, &compiled.database);
    let pu = result.database.relation("PatientUnit").unwrap();
    let invented: Vec<_> = pu.iter().filter(|t| t.get(0).unwrap().is_null()).collect();
    // Tom Waits' Sep/9 discharge and Elvis Costello's Oct/5 discharge invent
    // unknown units; Lou Reed's Sep/6 discharge is already explained.
    assert_eq!(invented.len(), 2);
    let patients: Vec<_> = invented.iter().map(|t| *t.get(2).unwrap()).collect();
    assert!(patients.contains(&Value::str("Tom Waits")));
    assert!(patients.contains(&Value::str("Elvis Costello")));
}

#[test]
fn example_7_quality_assessment_reproduces_table_ii() {
    let context = scenarios::hospital_context();
    let instance = hospital::measurements_database();
    let assessment = assess(&context, &instance);

    // Tom Waits' quality measurements = Table II, exactly.
    let toms: Vec<Tuple> = assessment
        .quality_tuples("Measurements")
        .into_iter()
        .filter(|t| t.get(1) == Some(&Value::str(hospital::TOM_WAITS)))
        .collect();
    let expected = hospital::expected_quality_measurements();
    assert_eq!(toms.len(), expected.len());
    for t in &expected {
        assert!(toms.contains(t));
    }

    // Quality metrics: 4 of the 6 measurements survive.
    let metrics = assessment.metrics.relations.get("Measurements").unwrap();
    assert_eq!(metrics.original_count, 6);
    assert_eq!(metrics.quality_count, 4);
    assert_eq!(metrics.rejected, 2);
}

#[test]
fn example_7_doctors_query_quality_answers() {
    let context = scenarios::hospital_context();
    let instance = hospital::measurements_database();
    let assessment = assess(&context, &instance);
    let q = scenarios::doctors_query();

    let plain = plain_answers(&instance, &q);
    let quality = quality_answers(&context, &assessment, &q);
    // The Sep/5 noon measurement was taken under the required conditions, so
    // plain and quality answers coincide here…
    assert_eq!(plain, quality);
    assert_eq!(quality.len(), 1);

    // …but a query about Sep/7 (intensive-care day, B2 thermometer) returns a
    // plain answer with no quality counterpart.
    let q_sep7 = query(
        "Q(t, v) :- Measurements(t, p, v), p = \"Tom Waits\", t >= @Sep/7-00:00, t <= @Sep/7-23:59.",
    );
    assert_eq!(plain_answers(&instance, &q_sep7).len(), 1);
    assert!(quality_answers(&context, &assessment, &q_sep7).is_empty());
}

#[test]
fn quality_versions_are_monotone_subsets_for_filtering_contexts() {
    let context = scenarios::hospital_context();
    let instance = hospital::measurements_database();
    let assessment = assess(&context, &instance);
    let original = instance.relation("Measurements").unwrap();
    for tuple in assessment.quality_tuples("Measurements") {
        assert!(original.contains(&tuple));
    }
}

#[test]
fn thermometer_egd_is_satisfied_by_the_fixture_but_violated_by_mixed_brands() {
    let compiled = compiled_hospital();
    let clean = ontodq_chase::chase(&compiled.program, &compiled.database);
    assert!(clean.violations.egd.is_empty());

    // Swap W2's thermometer brand: now the standard unit mixes B1 and B2,
    // violating EGD (6).
    let mut dirty = compiled.database.clone();
    dirty
        .relation_mut("Thermometer")
        .unwrap()
        .retain(|t| t.get(0) != Some(&Value::str("W2")));
    dirty
        .insert("Thermometer", Tuple::from_iter(["W2", "B2", "Helen"]))
        .unwrap();
    let violated = ontodq_chase::chase(&compiled.program, &dirty);
    assert!(!violated.violations.egd.is_empty());
}
