//! Equivalence of the retraction subsystem: delete-and-rederive
//! (`ChaseEngine::retract`, DRed) must produce the same instance as a
//! from-scratch chase of the surviving EDB, modulo labeled-null renaming,
//! on every evaluation strategy — and randomized insert/retract
//! interleavings driven through the server must converge to the same
//! snapshot and the same quality answers as a fresh registration of the
//! surviving instance.

use ontodq_chase::{chase_naive, ChaseConfig, ChaseEngine, ChaseState, EvalStrategy};
use ontodq_core::{compile_context, scenarios};
use ontodq_datalog::{Atom, Program, Retraction, Term};
use ontodq_integration_tests::{canonicalize_database, databases_equivalent};
use ontodq_mdm::fixtures::hospital;
use ontodq_relational::{Database, Tuple};
use ontodq_server::QualityService;
use ontodq_workload::{
    generate, generate_corrections, CorrectionOp, CorrectionScale, HospitalScale,
};

/// The three maintained-evaluation strategies the retraction path must
/// agree on.  (Naive is the oracle; parallel is pinned to a 4-worker team
/// so the genuinely concurrent path runs even on 1-CPU CI containers.)
fn engines() -> Vec<(&'static str, ChaseEngine)> {
    vec![
        (
            "naive",
            ChaseEngine::new(ChaseConfig {
                strategy: EvalStrategy::Naive,
                ..Default::default()
            }),
        ),
        ("semi-naive", ChaseEngine::with_defaults()),
        (
            "parallel",
            ChaseEngine::new(ChaseConfig::parallel_with_threads(4)),
        ),
    ]
}

/// Chase `db`, retract `victims` from `relation` through the engine's DRed
/// path, and assert the maintained instance equals a fresh naive chase of
/// the surviving EDB (modulo labeled-null renaming).
fn assert_retract_matches_fresh(
    program: &Program,
    db: &Database,
    relation: &str,
    victims: &[Tuple],
    label: &str,
) {
    let mut surviving = db.clone();
    for victim in victims {
        assert!(
            surviving.delete(relation, victim),
            "{label}: victim not present in the base instance"
        );
    }
    let fresh = chase_naive(program, &surviving);

    let requested: Vec<(String, Tuple)> = victims
        .iter()
        .map(|t| (relation.to_string(), t.clone()))
        .collect();
    for (name, engine) in engines() {
        let mut state = ChaseState::new(program, db);
        engine.resume(program, &mut state);
        let result = engine.retract(program, &mut state, &surviving, &requested, None);
        assert_eq!(
            result.stats.requested,
            victims.len(),
            "{label}/{name}: wrong requested count"
        );
        assert_eq!(
            result.stats.retracted,
            victims.len(),
            "{label}/{name}: some victims were not retracted"
        );
        assert!(
            databases_equivalent(state.database(), &fresh.database),
            "{label}/{name}: retract-then-rederive diverges from a fresh \
             chase of the surviving EDB\nmaintained:\n{:#?}\nfresh:\n{:#?}",
            canonicalize_database(state.database()),
            canonicalize_database(&fresh.database),
        );
    }
}

#[test]
fn hospital_retractions_match_fresh_chase_on_every_strategy() {
    // The paper's hospital context compiled over Table I: retractions hit
    // the *contextual* copy of `Measurements`, the relation the chase and
    // the quality rules actually read.
    let context = scenarios::hospital_context();
    let (program, database) = compile_context(&context, &hospital::measurements_database());
    let contextual = context
        .contextual_name_of("Measurements")
        .expect("hospital context maps Measurements")
        .to_string();
    let measurements: Vec<Tuple> = database
        .relation(&contextual)
        .map(|r| r.iter().collect())
        .unwrap_or_default();
    assert!(measurements.len() >= 2);
    // One victim, and separately a batch of half the relation.
    assert_retract_matches_fresh(
        &program,
        &database,
        &contextual,
        &measurements[..1],
        "hospital/single",
    );
    assert_retract_matches_fresh(
        &program,
        &database,
        &contextual,
        &measurements[..measurements.len() / 2],
        "hospital/batch",
    );
}

#[test]
fn scaled_workload_retractions_match_fresh_chase_on_every_strategy() {
    let workload = generate(&HospitalScale::with_measurements(80));
    let context = workload.context();
    let (program, database) = compile_context(&context, &workload.instance);
    let contextual = context
        .contextual_name_of("Measurements")
        .expect("scaled hospital context maps Measurements")
        .to_string();
    let measurements: Vec<Tuple> = database
        .relation(&contextual)
        .map(|r| r.iter().collect())
        .unwrap_or_default();
    // Every 3rd tuple: a third of the relation, spread across the instance.
    let victims: Vec<Tuple> = measurements.iter().step_by(3).cloned().collect();
    assert!(!victims.is_empty());
    assert_retract_matches_fresh(&program, &database, &contextual, &victims, "scaled");
}

/// Build the `-fact.`-shaped retraction program the server flushes: one
/// ground [`Retraction`] per fact.
fn retraction_program(facts: &[(String, Tuple)]) -> Program {
    let mut program = Program::new();
    for (relation, tuple) in facts {
        let terms: Vec<Term> = tuple.values().iter().map(|v| Term::constant(*v)).collect();
        let retraction =
            Retraction::new(Atom::new(relation.clone(), terms)).expect("workload facts are ground");
        program.retractions.push(retraction);
    }
    program
}

/// Randomized (seeded, reproducible) insert/retract interleavings applied
/// through the live service must land on the same snapshot — same chased
/// instance modulo null renaming, same quality answers — as registering
/// the surviving instance from scratch.
#[test]
fn randomized_interleavings_through_the_server_match_from_scratch() {
    for seed in [11u64, 42, 99] {
        let scale = CorrectionScale {
            seed,
            ..CorrectionScale::small()
        };
        let workload = generate_corrections(&scale);
        let service = QualityService::new();
        service
            .register_context(
                "live",
                workload.base.context(),
                workload.base.instance.clone(),
            )
            .unwrap();

        let mut batches = 0u64;
        for op in &workload.ops {
            match op {
                CorrectionOp::Insert(facts) => {
                    let report = service.insert_facts("live", facts.clone()).unwrap();
                    batches += 1;
                    assert_eq!(report.version, batches, "seed {seed}: version skew");
                }
                CorrectionOp::Retract(facts) => {
                    let program = retraction_program(facts);
                    let report = service.retract_facts("live", &program).unwrap();
                    batches += 1;
                    assert_eq!(report.version, batches, "seed {seed}: version skew");
                    assert_eq!(
                        report.requested, report.retracted,
                        "seed {seed}: a live fact failed to retract"
                    );
                }
            }
        }

        let reference = QualityService::new();
        reference
            .register_context(
                "fresh",
                workload.base.context(),
                workload.surviving_instance(),
            )
            .unwrap();

        let live = service.snapshot("live").unwrap();
        let fresh = reference.snapshot("fresh").unwrap();
        assert!(
            databases_equivalent(&live.database, &fresh.database),
            "seed {seed}: maintained snapshot diverges from a from-scratch \
             chase of the surviving instance",
        );
        assert!(
            databases_equivalent(&live.quality, &fresh.quality),
            "seed {seed}: quality versions diverge",
        );
        for query in ["Measurements(t, p, v)", "Measurements(t, \"Patient_0\", v)"] {
            let live_answers = service.quality_answers("live", query).unwrap();
            let fresh_answers = reference.quality_answers("fresh", query).unwrap();
            assert_eq!(
                *live_answers.answers, *fresh_answers.answers,
                "seed {seed}: quality answers diverge on '{query}'",
            );
        }

        // The service counter tallies requested facts, one per `-fact.`.
        let requested_facts: u64 = workload
            .ops
            .iter()
            .filter_map(|op| match op {
                CorrectionOp::Retract(facts) => Some(facts.len() as u64),
                CorrectionOp::Insert(_) => None,
            })
            .sum();
        let counters = service.retraction_stats();
        assert_eq!(
            counters.retractions, requested_facts,
            "seed {seed}: retraction counter does not match the stream",
        );
    }
}
