//! Property-based integration tests of the quality-assessment pipeline over
//! randomly scaled hospital workloads.

use ontodq_core::assess;
use ontodq_core::clean_query::{plain_answers, quality_answers};
use ontodq_integration_tests::query;
use ontodq_workload::{generate, HospitalScale};
use proptest::prelude::*;

fn arb_scale() -> impl Strategy<Value = HospitalScale> {
    (
        1usize..4,
        1usize..4,
        2usize..8,
        2usize..8,
        5usize..60,
        0u64..1000,
    )
        .prop_map(
            |(units, wards, patients, days, measurements, seed)| HospitalScale {
                units,
                wards_per_unit: wards,
                patients,
                days,
                measurements,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The quality version of a filtering context is always a subset of the
    /// original instance.
    #[test]
    fn quality_version_is_subset_of_original(scale in arb_scale()) {
        let workload = generate(&scale);
        let context = workload.context();
        let result = assess(&context, &workload.instance);
        let original = workload.instance.relation("Measurements").unwrap();
        for tuple in result.quality_tuples("Measurements") {
            prop_assert!(original.contains(&tuple));
        }
        let metrics = result.metrics.relations.get("Measurements").unwrap();
        prop_assert_eq!(metrics.added, 0);
        prop_assert_eq!(metrics.retained, metrics.quality_count);
        prop_assert!(metrics.retention_ratio() >= 0.0 && metrics.retention_ratio() <= 1.0);
    }

    /// Quality answers to a monotone query are a subset of the plain answers.
    #[test]
    fn quality_answers_are_subset_of_plain_answers(scale in arb_scale()) {
        let workload = generate(&scale);
        let context = workload.context();
        let result = assess(&context, &workload.instance);
        let q = query("Q(t, p, v) :- Measurements(t, p, v).");
        let plain = plain_answers(&workload.instance, &q);
        let quality = quality_answers(&context, &result, &q);
        prop_assert!(quality.len() <= plain.len());
        for tuple in quality.iter() {
            prop_assert!(plain.contains(tuple));
        }
    }

    /// Assessment is deterministic: the same workload yields the same
    /// quality version and metrics.
    #[test]
    fn assessment_is_deterministic(scale in arb_scale()) {
        let workload = generate(&scale);
        let context = workload.context();
        let first = assess(&context, &workload.instance);
        let second = assess(&context, &workload.instance);
        prop_assert_eq!(
            first.quality_tuples("Measurements"),
            second.quality_tuples("Measurements")
        );
        prop_assert_eq!(first.metrics, second.metrics);
    }

    /// The generated workloads always compile into weakly-sticky programs
    /// with terminating chases (the paper's Section III claim, at scale).
    #[test]
    fn scaled_ontologies_stay_weakly_sticky(scale in arb_scale()) {
        let workload = generate(&scale);
        let compiled = ontodq_mdm::compile(&workload.ontology);
        let report = ontodq_datalog::analysis::classify(&compiled.program);
        prop_assert!(report.weakly_sticky);
        prop_assert!(report.weakly_acyclic);
        let chased = ontodq_chase::chase(&compiled.program, &compiled.database);
        prop_assert_eq!(chased.termination, ontodq_chase::TerminationReason::Fixpoint);
    }
}
