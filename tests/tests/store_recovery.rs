//! Crash-recovery integration tests for the durable store.
//!
//! The property under test (the acceptance criterion of the persistence
//! subsystem): for **any** crash point — modeled by truncating the
//! write-ahead log at an arbitrary byte offset — recovery must produce a
//! service whose instance equals, modulo labeled-null renaming, a chase of
//! exactly the fully-committed batches: never a phantom (partially written)
//! batch, never a lost committed one.  The comparison reuses the
//! null-renaming-invariant comparator of the chase-equivalence suite
//! ([`ontodq_integration_tests::databases_equivalent`]), and the workloads
//! reuse the `ontodq-workload` generators.

use ontodq_core::assess;
use ontodq_integration_tests::databases_equivalent;
use ontodq_relational::{Database, Tuple, Value};
use ontodq_server::{QualityService, ServiceError};
use ontodq_store::{FaultSchedule, IoOp, SharedIoPolicy, Store, StoreConfig};
use ontodq_workload::{generate, HospitalScale};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ontodq-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_scale() -> HospitalScale {
    HospitalScale {
        units: 2,
        wards_per_unit: 2,
        patients: 4,
        days: 3,
        measurements: 16,
        seed: 11,
    }
}

/// Random update batches shaped like real traffic: new readings at known
/// (time, patient) pairs, so they navigate the Time dimension.
fn random_batches(
    base: &[Tuple],
    batches: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<Vec<(String, Tuple)>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batches)
        .map(|_| {
            (0..batch_size)
                .map(|_| {
                    let source = &base[rng.gen_range(0..base.len())];
                    let value = 36.0 + rng.gen_range(0..80) as f64 / 10.0;
                    (
                        "Measurements".to_string(),
                        Tuple::new(vec![
                            *source.get(0).unwrap(),
                            *source.get(1).unwrap(),
                            Value::double(value),
                        ]),
                    )
                })
                .collect()
        })
        .collect()
}

fn open_service(dir: &Path) -> (Arc<Mutex<Store>>, QualityService, ontodq_store::Recovery) {
    let mut store = Store::open(dir, StoreConfig::default()).unwrap();
    let recovery = store.recover().unwrap();
    let store = Arc::new(Mutex::new(store));
    let service = QualityService::with_store(Arc::clone(&store));
    (store, service, recovery)
}

/// The single WAL segment file of `dir` (these tests stay under the
/// rotation threshold on purpose, so the torn tail lives in one file).
fn wal_segment(dir: &Path) -> PathBuf {
    let mut segments: Vec<PathBuf> = std::fs::read_dir(dir.join("wal"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    segments.sort();
    assert_eq!(segments.len(), 1, "expected one segment in {segments:?}");
    segments.pop().unwrap()
}

/// Write N random batches through the durable service, then truncate the
/// log at a sweep of arbitrary byte offsets.  Each truncation must recover
/// to a state equivalent (modulo null renaming) to chasing exactly the
/// committed prefix — both against an incremental reference and, for the
/// ground quality versions, against a genuinely from-scratch assessment.
#[test]
fn torn_wal_recovers_exactly_the_committed_prefix() {
    let workload = generate(&small_scale());
    let context = workload.context();
    let base: Vec<Tuple> = workload
        .instance
        .relation("Measurements")
        .unwrap()
        .tuples()
        .to_vec();
    let batches = random_batches(&base, 4, 3, 42);

    let dir = temp_dir("torn");
    {
        let (_store, service, _) = open_service(&dir);
        service
            .register_context("scaled", context.clone(), workload.instance.clone())
            .unwrap();
        for batch in &batches {
            service.insert_facts("scaled", batch.clone()).unwrap();
        }
    }
    let segment = wal_segment(&dir);
    let full = std::fs::read(&segment).unwrap();

    // Reference services that applied exactly the first `c` batches,
    // incrementally, with no store involved.
    let references: Vec<QualityService> = (0..=batches.len())
        .map(|committed| {
            let service = QualityService::new();
            service
                .register_context("scaled", context.clone(), workload.instance.clone())
                .unwrap();
            for batch in &batches[..committed] {
                service.insert_facts("scaled", batch.clone()).unwrap();
            }
            service
        })
        .collect();

    // An arbitrary sweep of cut points, including the exact end (no tear)
    // and a cut inside the very first record group.
    let mut cuts: Vec<usize> = (0..full.len()).step_by(full.len() / 11).collect();
    cuts.push(full.len());
    cuts.push(9);
    let mut seen_partial = false;
    for cut in cuts {
        std::fs::write(&segment, &full[..cut]).unwrap();
        let (_store, service, mut recovery) = open_service(&dir);
        let summary = service
            .register_recovered(
                "scaled",
                context.clone(),
                workload.instance.clone(),
                &mut recovery,
            )
            .unwrap();
        let committed = summary.replayed_batches;
        assert!(committed <= batches.len(), "phantom batch at cut {cut}");
        seen_partial |= committed > 0 && committed < batches.len();

        let recovered = service.snapshot("scaled").unwrap();
        let reference = references[committed].snapshot("scaled").unwrap();
        assert_eq!(recovered.version, reference.version, "cut {cut}");
        assert!(
            databases_equivalent(&recovered.database, &reference.database),
            "cut {cut} (committed {committed}): recovered instance differs from \
             a chase of the committed prefix"
        );

        // Quality versions are certain (ground) data: they must equal a
        // genuinely from-scratch assessment of the accumulated facts.
        let mut accumulated = workload.instance.clone();
        for batch in &batches[..committed] {
            for (name, tuple) in batch {
                accumulated.insert(name, tuple.clone()).unwrap();
            }
        }
        let scratch = assess(&context, &accumulated);
        assert!(
            databases_equivalent(&recovered.quality, &scratch.quality_database),
            "cut {cut}: recovered quality version differs from from-scratch"
        );
    }
    assert!(
        seen_partial,
        "the sweep never hit a strict prefix; widen the cut set"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshot + WAL-tail restart on the scaled workload: a checkpoint
/// (`persist_all`) followed by more batches and a torn final record must
/// recover the snapshot, replay the intact tail batch, and drop the torn
/// one — equivalently to chasing the committed facts.
#[test]
fn snapshot_plus_torn_tail_recovers_on_the_scaled_workload() {
    let workload = generate(&small_scale());
    let context = workload.context();
    let base: Vec<Tuple> = workload
        .instance
        .relation("Measurements")
        .unwrap()
        .tuples()
        .to_vec();
    let batches = random_batches(&base, 4, 3, 7);

    let dir = temp_dir("snaptail");
    {
        let (_store, service, _) = open_service(&dir);
        service
            .register_context("scaled", context.clone(), workload.instance.clone())
            .unwrap();
        for batch in &batches[..2] {
            service.insert_facts("scaled", batch.clone()).unwrap();
        }
        let report = service.persist_all().unwrap();
        assert_eq!(report.contexts, 1);
        for batch in &batches[2..] {
            service.insert_facts("scaled", batch.clone()).unwrap();
        }
    }
    // Tear the last record: drop the final 5 bytes of the post-checkpoint
    // segment, killing batch 4 but leaving batch 3 intact.
    let segment = wal_segment(&dir);
    let full = std::fs::read(&segment).unwrap();
    std::fs::write(&segment, &full[..full.len() - 5]).unwrap();

    let (_store, service, mut recovery) = open_service(&dir);
    assert!(recovery.snapshots.contains_key("scaled"));
    let summary = service
        .register_recovered(
            "scaled",
            context.clone(),
            Database::new(), // ignored: the snapshot carries the instance
            &mut recovery,
        )
        .unwrap();
    assert!(summary.restored_from_snapshot);
    assert_eq!(summary.replayed_batches, 1);
    assert_eq!(summary.version, 3);

    let reference = QualityService::new();
    reference
        .register_context("scaled", context.clone(), workload.instance.clone())
        .unwrap();
    for batch in &batches[..3] {
        reference.insert_facts("scaled", batch.clone()).unwrap();
    }
    let recovered = service.snapshot("scaled").unwrap();
    let expected = reference.snapshot("scaled").unwrap();
    assert!(databases_equivalent(
        &recovered.database,
        &expected.database
    ));
    assert!(databases_equivalent(&recovered.quality, &expected.quality));
    assert_eq!(recovered.metrics.relations, expected.metrics.relations);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The hospital fixture end to end through the line-protocol layer's
/// service API: restart with snapshot + tail answers the paper's queries
/// identically, and a second recovery (nothing new in the log) is stable.
#[test]
fn hospital_restart_preserves_quality_answers() {
    use ontodq_core::scenarios;
    use ontodq_mdm::fixtures::hospital;

    let dir = temp_dir("hospital");
    let query = "Measurements(t, p, v), p = \"Tom Waits\"";
    let live_answers;
    {
        let (_store, service, _) = open_service(&dir);
        service
            .register_context(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
            )
            .unwrap();
        service.persist_all().unwrap();
        service
            .insert_facts(
                "hospital",
                vec![(
                    "Measurements".to_string(),
                    Tuple::new(vec![
                        Value::parse_time("Sep/5-12:15").unwrap(),
                        Value::str("Tom Waits"),
                        Value::double(38.3),
                    ]),
                )],
            )
            .unwrap();
        live_answers = service.quality_answers("hospital", query).unwrap();
    }
    for round in 0..2 {
        let (_store, service, mut recovery) = open_service(&dir);
        let summary = service
            .register_recovered(
                "hospital",
                scenarios::hospital_context(),
                Database::new(),
                &mut recovery,
            )
            .unwrap();
        assert!(summary.restored_from_snapshot, "round {round}");
        assert_eq!(summary.replayed_batches, 1, "round {round}");
        let revived = service.quality_answers("hospital", query).unwrap();
        assert_eq!(revived.version, live_answers.version);
        assert_eq!(revived.answers, live_answers.answers, "round {round}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Deterministic failpoint sweep: for every batch index `k`, fail the
/// `k`-th WAL fsync, short-write the `k`-th WAL record, and (once) crash
/// during a checkpoint's snapshot rename.  In each case the service must
/// ack exactly the batches that survived, degrade afterwards, and a
/// restart must recover exactly the acked prefix — the failed record is
/// healed off the log, never replayed torn.
#[test]
fn failpoint_sweep_recovers_exactly_the_acked_prefix() {
    use std::time::Duration;

    let workload = generate(&small_scale());
    let context = workload.context();
    let base: Vec<Tuple> = workload
        .instance
        .relation("Measurements")
        .unwrap()
        .tuples()
        .to_vec();
    let batches = random_batches(&base, 4, 3, 23);

    // References that applied exactly the first `c` batches in memory.
    let references: Vec<QualityService> = (0..=batches.len())
        .map(|committed| {
            let service = QualityService::new();
            service
                .register_context("scaled", context.clone(), workload.instance.clone())
                .unwrap();
            for batch in &batches[..committed] {
                service.insert_facts("scaled", batch.clone()).unwrap();
            }
            service
        })
        .collect();

    #[derive(Clone, Copy)]
    enum Case {
        /// Fail the k-th WAL fsync: batch k lands in memory only.
        FsyncFail(u64),
        /// Tear the k-th WAL record after 7 bytes.
        ShortWrite(u64),
        /// Crash mid-checkpoint, at the snapshot rename.
        SnapshotCrash,
    }

    let mut cases: Vec<(String, Case)> = Vec::new();
    for k in 0..batches.len() as u64 {
        cases.push((format!("fsync-fail-{k}"), Case::FsyncFail(k)));
        cases.push((format!("short-write-{k}"), Case::ShortWrite(k)));
    }
    cases.push(("snapshot-crash".to_string(), Case::SnapshotCrash));

    for (label, case) in cases {
        let dir = temp_dir(&format!("sweep-{label}"));
        let schedule = Arc::new(Mutex::new(FaultSchedule::new()));
        {
            let mut plan = schedule.lock().unwrap();
            match case {
                Case::FsyncFail(k) => plan.fail_nth(IoOp::WalFsync, k),
                Case::ShortWrite(k) => plan.short_write_nth(IoOp::WalWrite, k, 7),
                Case::SnapshotCrash => plan.crash_nth(IoOp::SnapshotRename, 0, 0),
            };
        }
        let policy: SharedIoPolicy = schedule.clone();
        let store = Arc::new(Mutex::new(
            Store::open_with_policy(&dir, StoreConfig::default(), policy).unwrap(),
        ));
        let service = QualityService::with_store(Arc::clone(&store));
        // A shut probe window keeps the sweep deterministic: once degraded,
        // every later write is refused instead of probing recovery.
        service.set_probe_interval(Duration::from_secs(3600));
        service
            .register_context("scaled", context.clone(), workload.instance.clone())
            .unwrap();

        let mut acked = 0usize;
        let mut applied = 0usize;
        let mut refused = 0usize;
        'stream: for (i, batch) in batches.iter().enumerate() {
            if matches!(case, Case::SnapshotCrash) && i == 2 {
                service
                    .persist_all()
                    .expect_err("the checkpoint must report the crash");
                if schedule.lock().unwrap().crashed() {
                    break 'stream;
                }
            }
            match service.insert_facts("scaled", batch.clone()) {
                Ok(_) => {
                    applied += 1;
                    acked = applied;
                }
                Err(ServiceError::Store(_)) => applied += 1,
                Err(ServiceError::Degraded(_)) => refused += 1,
                Err(e) => panic!("{label}: unexpected error on batch {i}: {e}"),
            }
            if schedule.lock().unwrap().crashed() {
                break 'stream;
            }
        }
        match case {
            Case::FsyncFail(k) | Case::ShortWrite(k) => {
                assert_eq!(acked, k as usize, "{label}: acked prefix");
                assert_eq!(applied, k as usize + 1, "{label}: one limbo batch");
                assert_eq!(refused, batches.len() - k as usize - 1, "{label}: refusals");
                assert!(
                    schedule.lock().unwrap().injected() > 0,
                    "{label}: fault fired"
                );
            }
            Case::SnapshotCrash => {
                assert_eq!(acked, 2, "{label}: both pre-checkpoint batches acked");
                assert_eq!(applied, 2, "{label}");
                assert!(schedule.lock().unwrap().crashed(), "{label}: crash fired");
            }
        }

        // Restart with a clean store and recover.
        drop(service);
        drop(store);
        let (_store, revived, mut recovery) = open_service(&dir);
        let summary = revived
            .register_recovered(
                "scaled",
                context.clone(),
                workload.instance.clone(),
                &mut recovery,
            )
            .unwrap();
        let v = summary.version as usize;
        // The failed record is healed off the log (and a crashed rename
        // leaves only an ignored temp file), so recovery lands exactly on
        // the acked prefix — the limbo batch never reappears.
        assert_eq!(v, acked, "{label}: recovered version");

        let recovered = revived.snapshot("scaled").unwrap();
        let reference = references[v].snapshot("scaled").unwrap();
        assert_eq!(recovered.version, reference.version, "{label}");
        assert!(
            databases_equivalent(&recovered.database, &reference.database),
            "{label}: recovered instance differs from a chase of the acked prefix"
        );
        assert!(
            databases_equivalent(&recovered.quality, &reference.quality),
            "{label}: recovered quality versions differ from the acked prefix"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
