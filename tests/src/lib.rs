//! Shared helpers for the `ontodq` integration tests.
//!
//! The integration tests span every crate of the workspace: they build the
//! paper's hospital scenario from `ontodq-mdm`, compile it to Datalog±, chase
//! it with `ontodq-chase`, answer queries with the three engines of
//! `ontodq-qa`, and run the full quality-assessment pipeline of
//! `ontodq-core`.

use ontodq_mdm::fixtures::hospital;
use ontodq_mdm::{compile, CompiledOntology};
use ontodq_qa::{ConjunctiveQuery, MaterializedEngine};

/// The compiled hospital ontology (rules (7), (8), constraint, EGD (6)).
pub fn compiled_hospital() -> CompiledOntology {
    compile(&hospital::ontology())
}

/// The compiled hospital ontology including the form-(10) discharge rule.
pub fn compiled_hospital_with_discharge() -> CompiledOntology {
    compile(&hospital::ontology_with_discharge_rule())
}

/// A materialized engine over the compiled hospital ontology.
pub fn hospital_engine() -> MaterializedEngine {
    let compiled = compiled_hospital();
    MaterializedEngine::new(&compiled.program, &compiled.database)
}

/// Parse a query, panicking with a readable message on failure.
pub fn query(text: &str) -> ConjunctiveQuery {
    ConjunctiveQuery::parse(text).unwrap_or_else(|e| panic!("bad query '{text}': {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_the_hospital_scenario() {
        let compiled = compiled_hospital();
        assert!(compiled.database.total_tuples() > 0);
        assert_eq!(compiled.program.tgds.len(), 2);
        let engine = hospital_engine();
        assert!(engine.materialized().has_relation("PatientUnit"));
        let q = query("Q(d) :- Shifts(W2, d, \"Mark\", s).");
        assert_eq!(q.arity(), 1);
    }
}
