//! Shared helpers for the `ontodq` integration tests.
//!
//! The integration tests span every crate of the workspace: they build the
//! paper's hospital scenario from `ontodq-mdm`, compile it to Datalog±, chase
//! it with `ontodq-chase`, answer queries with the three engines of
//! `ontodq-qa`, and run the full quality-assessment pipeline of
//! `ontodq-core`.

use ontodq_chase::Violations;
use ontodq_mdm::fixtures::hospital;
use ontodq_mdm::{compile, CompiledOntology};
use ontodq_qa::{ConjunctiveQuery, MaterializedEngine};
use ontodq_relational::{Database, NullId, Tuple, Value};
use std::collections::BTreeMap;

/// The compiled hospital ontology (rules (7), (8), constraint, EGD (6)).
pub fn compiled_hospital() -> CompiledOntology {
    compile(&hospital::ontology())
}

/// The compiled hospital ontology including the form-(10) discharge rule.
pub fn compiled_hospital_with_discharge() -> CompiledOntology {
    compile(&hospital::ontology_with_discharge_rule())
}

/// A materialized engine over the compiled hospital ontology.
pub fn hospital_engine() -> MaterializedEngine {
    let compiled = compiled_hospital();
    MaterializedEngine::new(&compiled.program, &compiled.database)
}

/// Parse a query, panicking with a readable message on failure.
pub fn query(text: &str) -> ConjunctiveQuery {
    ConjunctiveQuery::parse(text).unwrap_or_else(|e| panic!("bad query '{text}': {e}"))
}

/// A canonical rendering of a database that is invariant under labeled-null
/// renaming: nulls are renumbered by first occurrence while scanning
/// relations in name order and tuples in a null-blind sorted order.  Two
/// chase results are equivalent modulo null renaming iff their canonical
/// renderings are equal (assuming, as in our fixtures, that tuples are
/// distinguishable by their constant parts).
pub fn canonicalize_database(db: &Database) -> Vec<String> {
    let mut mapping: BTreeMap<NullId, usize> = BTreeMap::new();
    let mut out = Vec::new();
    for relation in db.relations() {
        // Sort tuples by a shape key that treats every null as equal, so the
        // traversal (and hence the canonical numbering) does not depend on
        // the engine's null-allocation order.
        let mut tuples: Vec<Tuple> = relation.iter().collect();
        tuples.sort_by_key(null_blind_key);
        for tuple in tuples {
            let mut rendered = format!("{}(", relation.name());
            for (i, value) in tuple.values().iter().enumerate() {
                if i > 0 {
                    rendered.push(',');
                }
                match value {
                    Value::Null(id) => {
                        let next = mapping.len();
                        let canonical = *mapping.entry(*id).or_insert(next);
                        rendered.push_str(&format!("⊥{canonical}"));
                    }
                    other => rendered.push_str(&other.to_string()),
                }
            }
            rendered.push(')');
            out.push(rendered);
        }
    }
    out.sort();
    out
}

fn null_blind_key(tuple: &Tuple) -> String {
    tuple
        .values()
        .iter()
        .map(|v| {
            if v.is_null() {
                "⊥".to_string()
            } else {
                v.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\u{1}")
}

/// `true` when two databases are identical up to a renaming of their labeled
/// nulls.
pub fn databases_equivalent(a: &Database, b: &Database) -> bool {
    canonicalize_database(a) == canonicalize_database(b)
}

/// A canonical, null-renaming-invariant summary of a violation report,
/// suitable for asserting that two chase strategies surfaced the same
/// violations.
pub fn violation_summary(violations: &Violations) -> Vec<String> {
    let render = |v: &Value| {
        if v.is_null() {
            "⊥".to_string()
        } else {
            v.to_string()
        }
    };
    let mut out: Vec<String> = violations
        .egd
        .iter()
        .map(|v| {
            // EGD violations are symmetric in left/right discovery order.
            let mut sides = [render(&v.left), render(&v.right)];
            sides.sort();
            format!("egd#{}:{}={}", v.egd_index, sides[0], sides[1])
        })
        .collect();
    out.extend(violations.nc.iter().map(|v| {
        let bindings: Vec<String> = v
            .witness
            .iter()
            .map(|(var, value)| format!("{var}={}", render(value)))
            .collect();
        format!("nc#{}:{}", v.constraint_index, bindings.join(","))
    }));
    out.sort();
    // The naive strategy re-discovers (and re-records) the same violation on
    // every round it remains present, the semi-naive one only when a delta
    // re-derives it — compare the *sets* of violations.
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_the_hospital_scenario() {
        let compiled = compiled_hospital();
        assert!(compiled.database.total_tuples() > 0);
        assert_eq!(compiled.program.tgds.len(), 2);
        let engine = hospital_engine();
        assert!(engine.materialized().has_relation("PatientUnit"));
        let q = query("Q(d) :- Shifts(W2, d, \"Mark\", s).");
        assert_eq!(q.arity(), 1);
    }
}
