//! Categorical relations — the paper's extension of HM fact tables.
//!
//! A categorical relation has categorical attributes, each linked to a
//! category of some dimension (at *any* level, not only the bottom one), and
//! non-categorical attributes taking values from arbitrary domains.  The
//! paper writes them `R(ē; ā)` with `ē` the categorical and `ā` the
//! non-categorical attributes.

use crate::error::{MdError, Result};
use ontodq_relational::{Attribute, AttributeType, RelationSchema};
use std::fmt;

/// One attribute of a categorical relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CategoricalAttribute {
    /// A categorical attribute: its values are members of `category` in
    /// `dimension`.
    Categorical {
        /// Attribute name.
        name: String,
        /// Dimension the attribute is linked to.
        dimension: String,
        /// Category (level) within the dimension.
        category: String,
    },
    /// A non-categorical attribute with an arbitrary domain.
    NonCategorical {
        /// Attribute name.
        name: String,
        /// Value type.
        ty: AttributeType,
    },
}

impl CategoricalAttribute {
    /// Categorical attribute constructor.
    pub fn categorical(
        name: impl Into<String>,
        dimension: impl Into<String>,
        category: impl Into<String>,
    ) -> Self {
        CategoricalAttribute::Categorical {
            name: name.into(),
            dimension: dimension.into(),
            category: category.into(),
        }
    }

    /// Non-categorical attribute constructor (string typed).
    pub fn non_categorical(name: impl Into<String>) -> Self {
        CategoricalAttribute::NonCategorical {
            name: name.into(),
            ty: AttributeType::String,
        }
    }

    /// Non-categorical attribute constructor with an explicit type.
    pub fn non_categorical_typed(name: impl Into<String>, ty: AttributeType) -> Self {
        CategoricalAttribute::NonCategorical {
            name: name.into(),
            ty,
        }
    }

    /// The attribute's name.
    pub fn name(&self) -> &str {
        match self {
            CategoricalAttribute::Categorical { name, .. } => name,
            CategoricalAttribute::NonCategorical { name, .. } => name,
        }
    }

    /// `true` when the attribute is categorical.
    pub fn is_categorical(&self) -> bool {
        matches!(self, CategoricalAttribute::Categorical { .. })
    }

    /// The `(dimension, category)` the attribute is linked to, if categorical.
    pub fn link(&self) -> Option<(&str, &str)> {
        match self {
            CategoricalAttribute::Categorical {
                dimension,
                category,
                ..
            } => Some((dimension.as_str(), category.as_str())),
            CategoricalAttribute::NonCategorical { .. } => None,
        }
    }
}

impl fmt::Display for CategoricalAttribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CategoricalAttribute::Categorical {
                name,
                dimension,
                category,
            } => {
                write!(f, "{name} -> {dimension}.{category}")
            }
            CategoricalAttribute::NonCategorical { name, ty } => write!(f, "{name}: {ty}"),
        }
    }
}

/// Schema of a categorical relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CategoricalRelationSchema {
    name: String,
    attributes: Vec<CategoricalAttribute>,
}

impl CategoricalRelationSchema {
    /// Construct a categorical relation schema.
    pub fn new(name: impl Into<String>, attributes: Vec<CategoricalAttribute>) -> Self {
        Self {
            name: name.into(),
            attributes,
        }
    }

    /// The relation's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[CategoricalAttribute] {
        &self.attributes
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Positions (0-based) of the categorical attributes.
    pub fn categorical_positions(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.is_categorical().then_some(i))
            .collect()
    }

    /// Positions (0-based) of the non-categorical attributes.
    pub fn non_categorical_positions(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter_map(|(i, a)| (!a.is_categorical()).then_some(i))
            .collect()
    }

    /// The position of the attribute named `name`.
    pub fn position_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name() == name)
    }

    /// The `(dimension, category)` link of the attribute at `position`, if it
    /// is categorical.
    pub fn link_at(&self, position: usize) -> Option<(&str, &str)> {
        self.attributes.get(position).and_then(|a| a.link())
    }

    /// The categorical links of the relation as
    /// `(position, dimension, category)` triples.
    pub fn links(&self) -> Vec<(usize, &str, &str)> {
        self.attributes
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.link().map(|(d, c)| (i, d, c)))
            .collect()
    }

    /// The corresponding relational schema (categorical attributes are
    /// string-typed member names; non-categorical attributes keep their
    /// declared type).
    pub fn to_relation_schema(&self) -> RelationSchema {
        RelationSchema::new(
            self.name.clone(),
            self.attributes
                .iter()
                .map(|a| match a {
                    CategoricalAttribute::Categorical { name, .. } => {
                        Attribute::new(name.clone(), AttributeType::Any)
                    }
                    CategoricalAttribute::NonCategorical { name, ty } => {
                        Attribute::new(name.clone(), *ty)
                    }
                })
                .collect(),
        )
    }

    /// Basic well-formedness: at least one categorical attribute, and
    /// attribute names are unique.
    pub fn validate(&self) -> Result<()> {
        if self.categorical_positions().is_empty() {
            return Err(MdError::BadCategoricalAttribute {
                relation: self.name.clone(),
                attribute: "<none>".into(),
                reason: "a categorical relation needs at least one categorical attribute".into(),
            });
        }
        let mut seen = std::collections::BTreeSet::new();
        for attr in &self.attributes {
            if !seen.insert(attr.name()) {
                return Err(MdError::BadCategoricalAttribute {
                    relation: self.name.clone(),
                    attribute: attr.name().to_string(),
                    reason: "duplicate attribute name".into(),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for CategoricalRelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, attr) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{attr}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `PatientWard(Ward, Day; Patient)` from Example 3.
    fn patient_ward() -> CategoricalRelationSchema {
        CategoricalRelationSchema::new(
            "PatientWard",
            vec![
                CategoricalAttribute::categorical("Ward", "Hospital", "Ward"),
                CategoricalAttribute::categorical("Day", "Time", "Day"),
                CategoricalAttribute::non_categorical("Patient"),
            ],
        )
    }

    #[test]
    fn attribute_accessors() {
        let ward = CategoricalAttribute::categorical("Ward", "Hospital", "Ward");
        assert_eq!(ward.name(), "Ward");
        assert!(ward.is_categorical());
        assert_eq!(ward.link(), Some(("Hospital", "Ward")));

        let patient = CategoricalAttribute::non_categorical("Patient");
        assert!(!patient.is_categorical());
        assert_eq!(patient.link(), None);
        assert_eq!(patient.name(), "Patient");
    }

    #[test]
    fn schema_positions_and_links() {
        let schema = patient_ward();
        assert_eq!(schema.arity(), 3);
        assert_eq!(schema.categorical_positions(), vec![0, 1]);
        assert_eq!(schema.non_categorical_positions(), vec![2]);
        assert_eq!(schema.position_of("Day"), Some(1));
        assert_eq!(schema.position_of("Nurse"), None);
        assert_eq!(schema.link_at(0), Some(("Hospital", "Ward")));
        assert_eq!(schema.link_at(2), None);
        assert_eq!(schema.links().len(), 2);
    }

    #[test]
    fn conversion_to_relation_schema() {
        let rel = patient_ward().to_relation_schema();
        assert_eq!(rel.name(), "PatientWard");
        assert_eq!(rel.arity(), 3);
        assert_eq!(rel.attribute_names(), vec!["Ward", "Day", "Patient"]);
    }

    #[test]
    fn validation_catches_degenerate_schemas() {
        let no_categorical = CategoricalRelationSchema::new(
            "Plain",
            vec![CategoricalAttribute::non_categorical("a")],
        );
        assert!(matches!(
            no_categorical.validate(),
            Err(MdError::BadCategoricalAttribute { .. })
        ));

        let duplicate = CategoricalRelationSchema::new(
            "Dup",
            vec![
                CategoricalAttribute::categorical("x", "D", "C"),
                CategoricalAttribute::non_categorical("x"),
            ],
        );
        assert!(matches!(
            duplicate.validate(),
            Err(MdError::BadCategoricalAttribute { .. })
        ));

        assert!(patient_ward().validate().is_ok());
    }

    #[test]
    fn display_uses_semicolon_between_attribute_groups() {
        let rendered = patient_ward().to_string();
        assert!(rendered.starts_with("PatientWard("));
        assert!(rendered.contains("Ward -> Hospital.Ward"));
        assert!(rendered.contains("Patient: String"));
    }

    #[test]
    fn typed_non_categorical_attributes() {
        let schema = CategoricalRelationSchema::new(
            "Measurement",
            vec![
                CategoricalAttribute::categorical("Time", "Time", "Time"),
                CategoricalAttribute::non_categorical_typed("Value", AttributeType::Double),
            ],
        );
        let rel = schema.to_relation_schema();
        assert_eq!(rel.attribute_at(1).unwrap().ty, AttributeType::Double);
    }
}
