//! Dimension schemas: DAGs of categories with a parent–child relation, as in
//! the Hurtado–Mendelzon multidimensional model.
//!
//! A dimension schema has a set of categories and a set of *adjacency* edges
//! `child ≺ parent`.  The transitive closure of the adjacency relation is the
//! partial order `⊑` ("rolls up to"); the bottom categories are those with no
//! children, and a distinguished top category (conventionally `All`) may or
//! may not be present.

use crate::error::{MdError, Result};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// A dimension schema: a named DAG of categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionSchema {
    name: String,
    categories: BTreeSet<String>,
    /// Adjacency edges: child category → parent categories.
    parents: BTreeMap<String, BTreeSet<String>>,
}

impl DimensionSchema {
    /// An empty dimension schema.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            categories: BTreeSet::new(),
            parents: BTreeMap::new(),
        }
    }

    /// Build a linear (chain) schema from bottom to top, e.g.
    /// `DimensionSchema::chain("Hospital", ["Ward", "Unit", "Institution", "AllHospital"])`.
    pub fn chain<I, S>(name: impl Into<String>, categories: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut schema = Self::new(name);
        let cats: Vec<String> = categories.into_iter().map(Into::into).collect();
        for c in &cats {
            schema.add_category(c.clone());
        }
        for pair in cats.windows(2) {
            schema
                .add_edge(pair[0].clone(), pair[1].clone())
                .expect("chain categories exist");
        }
        schema
    }

    /// The dimension's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add a category (idempotent).
    pub fn add_category(&mut self, category: impl Into<String>) -> &mut Self {
        self.categories.insert(category.into());
        self
    }

    /// Add an adjacency edge `child ≺ parent`; both categories must exist.
    pub fn add_edge(
        &mut self,
        child: impl Into<String>,
        parent: impl Into<String>,
    ) -> Result<&mut Self> {
        let child = child.into();
        let parent = parent.into();
        for c in [&child, &parent] {
            if !self.categories.contains(c) {
                return Err(MdError::UnknownCategory {
                    dimension: self.name.clone(),
                    category: c.clone(),
                });
            }
        }
        self.parents.entry(child).or_default().insert(parent);
        Ok(self)
    }

    /// All categories.
    pub fn categories(&self) -> &BTreeSet<String> {
        &self.categories
    }

    /// Does the schema contain `category`?
    pub fn has_category(&self, category: &str) -> bool {
        self.categories.contains(category)
    }

    /// Direct parent categories of `category`.
    pub fn parents_of(&self, category: &str) -> BTreeSet<String> {
        self.parents.get(category).cloned().unwrap_or_default()
    }

    /// Direct child categories of `category`.
    pub fn children_of(&self, category: &str) -> BTreeSet<String> {
        self.parents
            .iter()
            .filter(|&(_child, parents)| parents.contains(category))
            .map(|(child, _parents)| child.clone())
            .collect()
    }

    /// The adjacency edges as (child, parent) pairs.
    pub fn edges(&self) -> Vec<(String, String)> {
        self.parents
            .iter()
            .flat_map(|(c, ps)| ps.iter().map(move |p| (c.clone(), p.clone())))
            .collect()
    }

    /// Is `child` adjacent to (a direct child of) `parent`?
    pub fn is_adjacent(&self, child: &str, parent: &str) -> bool {
        self.parents
            .get(child)
            .map(|ps| ps.contains(parent))
            .unwrap_or(false)
    }

    /// Does `lower` roll up (transitively, strictly) to `upper`?
    pub fn rolls_up_to(&self, lower: &str, upper: &str) -> bool {
        if lower == upper {
            return false;
        }
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        queue.push_back(lower.to_string());
        while let Some(current) = queue.pop_front() {
            for parent in self.parents_of(&current) {
                if parent == upper {
                    return true;
                }
                if seen.insert(parent.clone()) {
                    queue.push_back(parent);
                }
            }
        }
        false
    }

    /// The categories with no children (the finest-grained levels).
    pub fn bottom_categories(&self) -> BTreeSet<String> {
        self.categories
            .iter()
            .filter(|c| self.children_of(c).is_empty())
            .cloned()
            .collect()
    }

    /// The categories with no parents (the coarsest levels, usually `All`).
    pub fn top_categories(&self) -> BTreeSet<String> {
        self.categories
            .iter()
            .filter(|c| self.parents_of(c).is_empty())
            .cloned()
            .collect()
    }

    /// The level of a category: the length of the longest upward path from a
    /// bottom category to it (bottom categories have level 0).  Returns
    /// `None` for unknown categories.
    pub fn level_of(&self, category: &str) -> Option<usize> {
        if !self.has_category(category) {
            return None;
        }
        // Longest path in a DAG via memoized DFS downwards.
        fn longest(
            schema: &DimensionSchema,
            cat: &str,
            memo: &mut BTreeMap<String, usize>,
        ) -> usize {
            if let Some(level) = memo.get(cat) {
                return *level;
            }
            let children = schema.children_of(cat);
            let level = if children.is_empty() {
                0
            } else {
                1 + children
                    .iter()
                    .map(|c| longest(schema, c, memo))
                    .max()
                    .unwrap_or(0)
            };
            memo.insert(cat.to_string(), level);
            level
        }
        let mut memo = BTreeMap::new();
        Some(longest(self, category, &mut memo))
    }

    /// Validate the schema: the category graph must be acyclic.
    pub fn validate(&self) -> Result<()> {
        // Kahn's algorithm over the child→parent edges.
        let mut indegree: BTreeMap<&str, usize> =
            self.categories.iter().map(|c| (c.as_str(), 0)).collect();
        for parents in self.parents.values() {
            for p in parents {
                *indegree.entry(p.as_str()).or_insert(0) += 1;
            }
        }
        let mut queue: VecDeque<&str> = indegree
            .iter()
            .filter_map(|(c, d)| (*d == 0).then_some(*c))
            .collect();
        let mut visited = 0;
        while let Some(cat) = queue.pop_front() {
            visited += 1;
            for p in self.parents_of(cat) {
                let d = indegree.get_mut(p.as_str()).unwrap();
                *d -= 1;
                if *d == 0 {
                    // Re-borrow the owned key from categories to keep lifetimes simple.
                    let key = self.categories.get(&p).unwrap();
                    queue.push_back(key.as_str());
                }
            }
        }
        if visited < self.categories.len() {
            return Err(MdError::CyclicCategoryGraph {
                dimension: self.name.clone(),
            });
        }
        Ok(())
    }

    /// All upward paths (as lists of categories, inclusive) from `lower` to
    /// `upper`.
    pub fn paths_between(&self, lower: &str, upper: &str) -> Vec<Vec<String>> {
        let mut paths = Vec::new();
        let mut stack = vec![(lower.to_string(), vec![lower.to_string()])];
        while let Some((current, path)) = stack.pop() {
            if current == upper {
                paths.push(path);
                continue;
            }
            for parent in self.parents_of(&current) {
                let mut next = path.clone();
                next.push(parent.clone());
                stack.push((parent, next));
            }
        }
        paths
    }
}

impl fmt::Display for DimensionSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dimension {} {{", self.name)?;
        for (child, parent) in self.edges() {
            writeln!(f, "  {child} -> {parent}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Hospital dimension of Fig. 1: Ward → Unit → Institution → All.
    fn hospital() -> DimensionSchema {
        DimensionSchema::chain("Hospital", ["Ward", "Unit", "Institution", "AllHospital"])
    }

    /// The Time dimension of Fig. 1: Time → Day → Month → Year → All.
    fn time() -> DimensionSchema {
        DimensionSchema::chain("Time", ["Time", "Day", "Month", "Year", "AllTime"])
    }

    #[test]
    fn chain_construction() {
        let h = hospital();
        assert_eq!(h.name(), "Hospital");
        assert_eq!(h.categories().len(), 4);
        assert!(h.is_adjacent("Ward", "Unit"));
        assert!(h.is_adjacent("Unit", "Institution"));
        assert!(!h.is_adjacent("Ward", "Institution"));
        assert!(h.validate().is_ok());
    }

    #[test]
    fn rolls_up_to_is_transitive_and_irreflexive() {
        let h = hospital();
        assert!(h.rolls_up_to("Ward", "Unit"));
        assert!(h.rolls_up_to("Ward", "Institution"));
        assert!(h.rolls_up_to("Ward", "AllHospital"));
        assert!(!h.rolls_up_to("Unit", "Ward"));
        assert!(!h.rolls_up_to("Ward", "Ward"));
        assert!(!h.rolls_up_to("Ward", "Day"));
    }

    #[test]
    fn bottom_and_top_categories() {
        let h = hospital();
        assert_eq!(h.bottom_categories(), ["Ward".to_string()].into());
        assert_eq!(h.top_categories(), ["AllHospital".to_string()].into());
        let t = time();
        assert_eq!(t.bottom_categories(), ["Time".to_string()].into());
        assert_eq!(t.top_categories(), ["AllTime".to_string()].into());
    }

    #[test]
    fn levels_follow_longest_paths() {
        let h = hospital();
        assert_eq!(h.level_of("Ward"), Some(0));
        assert_eq!(h.level_of("Unit"), Some(1));
        assert_eq!(h.level_of("Institution"), Some(2));
        assert_eq!(h.level_of("AllHospital"), Some(3));
        assert_eq!(h.level_of("Wing"), None);
    }

    #[test]
    fn non_linear_dag_with_multiple_parents() {
        // A Location dimension where City rolls up to both Province and
        // SalesRegion.
        let mut loc = DimensionSchema::new("Location");
        for c in ["City", "Province", "SalesRegion", "Country"] {
            loc.add_category(c);
        }
        loc.add_edge("City", "Province").unwrap();
        loc.add_edge("City", "SalesRegion").unwrap();
        loc.add_edge("Province", "Country").unwrap();
        loc.add_edge("SalesRegion", "Country").unwrap();
        assert!(loc.validate().is_ok());
        assert_eq!(loc.parents_of("City").len(), 2);
        assert_eq!(loc.children_of("Country").len(), 2);
        assert_eq!(loc.level_of("Country"), Some(2));
        let paths = loc.paths_between("City", "Country");
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.first().unwrap() == "City"));
        assert!(paths.iter().all(|p| p.last().unwrap() == "Country"));
    }

    #[test]
    fn add_edge_requires_existing_categories() {
        let mut schema = DimensionSchema::new("D");
        schema.add_category("A");
        let err = schema.add_edge("A", "B").unwrap_err();
        assert!(matches!(err, MdError::UnknownCategory { .. }));
    }

    #[test]
    fn cyclic_schema_is_rejected() {
        let mut schema = DimensionSchema::new("D");
        for c in ["A", "B", "C"] {
            schema.add_category(c);
        }
        schema.add_edge("A", "B").unwrap();
        schema.add_edge("B", "C").unwrap();
        schema.add_edge("C", "A").unwrap();
        assert!(matches!(
            schema.validate(),
            Err(MdError::CyclicCategoryGraph { .. })
        ));
    }

    #[test]
    fn paths_between_same_category_is_singleton() {
        let h = hospital();
        let paths = h.paths_between("Unit", "Unit");
        assert_eq!(paths, vec![vec!["Unit".to_string()]]);
        assert!(h.paths_between("Unit", "Ward").is_empty());
    }

    #[test]
    fn display_lists_edges() {
        let rendered = hospital().to_string();
        assert!(rendered.contains("dimension Hospital"));
        assert!(rendered.contains("Ward -> Unit"));
    }
}
