//! # ontodq-mdm
//!
//! The extended Hurtado–Mendelzon multidimensional model of `ontodq`, the
//! Rust reproduction of *"Extending Contexts with Ontologies for
//! Multidimensional Data Quality Assessment"* (Milani, Bertossi, Ariyan;
//! ICDE 2014).
//!
//! The crate provides:
//!
//! * [`DimensionSchema`] / [`DimensionInstance`] — category DAGs, members,
//!   member-level roll-ups, strictness and homogeneity checks (the classical
//!   HM model),
//! * [`CategoricalRelationSchema`] — the paper's extension: relations whose
//!   categorical attributes are linked to categories at arbitrary levels of
//!   one or more dimensions,
//! * [`MdOntology`] — the multidimensional ontology `M = (S_M, D_M, Σ_M)`
//!   bundling dimensions, categorical relations with data, dimensional rules
//!   (forms (4)/(10)), dimensional EGDs (form (2)) and negative constraints
//!   (form (3)),
//! * [`mod@compile`] — the translation into Datalog± (category predicates,
//!   parent–child predicates, referential constraints of form (1)) consumed
//!   by `ontodq-chase` and `ontodq-qa`,
//! * [`navigation`] — upward/downward direction analysis of dimensional
//!   rules, used to decide whether FO query rewriting applies,
//! * [`fixtures::hospital`] — the paper's running example, verbatim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod categorical;
pub mod compile;
pub mod dimension_instance;
pub mod dimension_schema;
pub mod error;
pub mod fixtures;
pub mod navigation;
pub mod ontology;
pub mod summarizability;

pub use categorical::{CategoricalAttribute, CategoricalRelationSchema};
pub use compile::{compile, compile_with, CompileOptions, CompiledOntology};
pub use dimension_instance::DimensionInstance;
pub use dimension_schema::DimensionSchema;
pub use error::{MdError, Result};
pub use navigation::{direction_of, is_upward_only, NavigationDirection, NavigationReport};
pub use ontology::{MdOntology, OntologySummary};
pub use summarizability::{RollupProfile, SummarizabilityReport};
