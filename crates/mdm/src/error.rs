//! Errors of the multidimensional model layer.

use std::fmt;

/// Errors raised when building or validating multidimensional schemas,
/// instances and ontologies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MdError {
    /// A category was referenced that is not part of the dimension schema.
    UnknownCategory {
        /// Dimension name.
        dimension: String,
        /// Missing category name.
        category: String,
    },
    /// A dimension was referenced that is not part of the ontology.
    UnknownDimension(String),
    /// A categorical relation was referenced that is not declared.
    UnknownCategoricalRelation(String),
    /// The category DAG contains a cycle.
    CyclicCategoryGraph {
        /// Dimension name.
        dimension: String,
    },
    /// A parent-child edge was declared between categories that are not an
    /// edge of the category DAG.
    NotAdjacent {
        /// Dimension name.
        dimension: String,
        /// Child category.
        child: String,
        /// Parent category.
        parent: String,
    },
    /// A member-level roll-up references an undeclared member.
    UnknownMember {
        /// Dimension name.
        dimension: String,
        /// Category name.
        category: String,
        /// The undeclared member, rendered.
        member: String,
    },
    /// The dimension instance violates strictness: a member rolls up to two
    /// distinct members of the same parent category.
    StrictnessViolation {
        /// Dimension name.
        dimension: String,
        /// Child category.
        category: String,
        /// The offending member, rendered.
        member: String,
        /// Parent category in which two parents were found.
        parent_category: String,
    },
    /// The dimension instance violates homogeneity: a member has no parent in
    /// an adjacent parent category.
    HomogeneityViolation {
        /// Dimension name.
        dimension: String,
        /// Child category.
        category: String,
        /// The offending member, rendered.
        member: String,
        /// Parent category with no parent member.
        parent_category: String,
    },
    /// A categorical attribute refers to a dimension/category pair that does
    /// not exist.
    BadCategoricalAttribute {
        /// Relation name.
        relation: String,
        /// Attribute name.
        attribute: String,
        /// Explanation.
        reason: String,
    },
    /// A tuple of a categorical relation carries a value that is not a member
    /// of the category its attribute is linked to.
    ReferentialViolation {
        /// Relation name.
        relation: String,
        /// Attribute name.
        attribute: String,
        /// The offending value, rendered.
        value: String,
    },
    /// An underlying relational error.
    Relational(String),
}

impl fmt::Display for MdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MdError::UnknownCategory { dimension, category } => {
                write!(f, "dimension '{dimension}' has no category '{category}'")
            }
            MdError::UnknownDimension(d) => write!(f, "unknown dimension '{d}'"),
            MdError::UnknownCategoricalRelation(r) => {
                write!(f, "unknown categorical relation '{r}'")
            }
            MdError::CyclicCategoryGraph { dimension } => {
                write!(f, "category graph of dimension '{dimension}' is cyclic")
            }
            MdError::NotAdjacent { dimension, child, parent } => write!(
                f,
                "categories '{child}' and '{parent}' are not adjacent in dimension '{dimension}'"
            ),
            MdError::UnknownMember { dimension, category, member } => write!(
                f,
                "'{member}' is not a member of category '{category}' of dimension '{dimension}'"
            ),
            MdError::StrictnessViolation { dimension, category, member, parent_category } => {
                write!(
                    f,
                    "strictness violated in dimension '{dimension}': member '{member}' of '{category}' has several parents in '{parent_category}'"
                )
            }
            MdError::HomogeneityViolation { dimension, category, member, parent_category } => {
                write!(
                    f,
                    "homogeneity violated in dimension '{dimension}': member '{member}' of '{category}' has no parent in '{parent_category}'"
                )
            }
            MdError::BadCategoricalAttribute { relation, attribute, reason } => write!(
                f,
                "bad categorical attribute '{relation}.{attribute}': {reason}"
            ),
            MdError::ReferentialViolation { relation, attribute, value } => write!(
                f,
                "referential violation: '{relation}.{attribute}' value '{value}' is not a category member"
            ),
            MdError::Relational(msg) => write!(f, "relational error: {msg}"),
        }
    }
}

impl std::error::Error for MdError {}

impl From<ontodq_relational::RelationalError> for MdError {
    fn from(e: ontodq_relational::RelationalError) -> Self {
        MdError::Relational(e.to_string())
    }
}

/// Result alias for the MD layer.
pub type Result<T> = std::result::Result<T, MdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(MdError, &str)> = vec![
            (
                MdError::UnknownCategory {
                    dimension: "Hospital".into(),
                    category: "Wing".into(),
                },
                "Wing",
            ),
            (MdError::UnknownDimension("Time".into()), "Time"),
            (
                MdError::UnknownCategoricalRelation("Shifts".into()),
                "Shifts",
            ),
            (
                MdError::CyclicCategoryGraph {
                    dimension: "Hospital".into(),
                },
                "cyclic",
            ),
            (
                MdError::NotAdjacent {
                    dimension: "Hospital".into(),
                    child: "Ward".into(),
                    parent: "Institution".into(),
                },
                "not adjacent",
            ),
            (
                MdError::UnknownMember {
                    dimension: "Hospital".into(),
                    category: "Ward".into(),
                    member: "W9".into(),
                },
                "W9",
            ),
            (
                MdError::StrictnessViolation {
                    dimension: "Hospital".into(),
                    category: "Ward".into(),
                    member: "W1".into(),
                    parent_category: "Unit".into(),
                },
                "strictness",
            ),
            (
                MdError::HomogeneityViolation {
                    dimension: "Hospital".into(),
                    category: "Ward".into(),
                    member: "W1".into(),
                    parent_category: "Unit".into(),
                },
                "homogeneity",
            ),
            (
                MdError::BadCategoricalAttribute {
                    relation: "PatientWard".into(),
                    attribute: "Ward".into(),
                    reason: "no such category".into(),
                },
                "PatientWard.Ward",
            ),
            (
                MdError::ReferentialViolation {
                    relation: "PatientWard".into(),
                    attribute: "Ward".into(),
                    value: "W9".into(),
                },
                "referential",
            ),
            (MdError::Relational("boom".into()), "boom"),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "display of {err:?} should contain {needle}"
            );
        }
    }

    #[test]
    fn relational_errors_convert() {
        let rel = ontodq_relational::RelationalError::UnknownRelation("X".into());
        let md: MdError = rel.into();
        assert!(md.to_string().contains("X"));
    }
}
