//! Summarizability analysis of dimension instances.
//!
//! The HM model (Hurtado–Gutierrez–Mendelzon, *Capturing summarizability
//! with integrity constraints in OLAP*, TODS 2005 — reference \[12\] of the
//! paper) characterizes when aggregate values computed at one category can be
//! correctly derived from a lower category: roll-ups must be **strict**
//! (functions) and **homogeneous** (total).  The paper inherits these notions
//! when it fixes the dimension instances of a multidimensional context.
//!
//! This module packages the per-pair analysis: for every pair of categories
//! `(lower, upper)` with `lower ⊑ upper` it reports whether the roll-up
//! mapping is a total function, and aggregates the verdicts into a
//! [`SummarizabilityReport`] that the quality-assessment layer (and the
//! `ontology_analysis` tooling) can surface to users.

use crate::dimension_instance::DimensionInstance;
use ontodq_relational::Value;
use std::collections::BTreeMap;
use std::fmt;

/// The roll-up behaviour between one pair of comparable categories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollupProfile {
    /// The lower category.
    pub lower: String,
    /// The upper category.
    pub upper: String,
    /// Number of members of the lower category.
    pub lower_members: usize,
    /// Members of the lower category with no ancestor in the upper category
    /// (homogeneity failures for this pair).
    pub unmapped: Vec<Value>,
    /// Members of the lower category with more than one ancestor in the
    /// upper category (strictness failures for this pair).
    pub ambiguous: Vec<Value>,
}

impl RollupProfile {
    /// Is the roll-up from `lower` to `upper` a total function — i.e. is
    /// aggregation along it summarizable?
    pub fn is_summarizable(&self) -> bool {
        self.unmapped.is_empty() && self.ambiguous.is_empty()
    }

    /// Fraction of lower members that map to exactly one upper member.
    pub fn coverage(&self) -> f64 {
        if self.lower_members == 0 {
            return 1.0;
        }
        let bad = self.unmapped.len() + self.ambiguous.len();
        (self.lower_members - bad.min(self.lower_members)) as f64 / self.lower_members as f64
    }
}

impl fmt::Display for RollupProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} → {}: {}/{} members map uniquely ({} unmapped, {} ambiguous)",
            self.lower,
            self.upper,
            self.lower_members
                - (self.unmapped.len() + self.ambiguous.len()).min(self.lower_members),
            self.lower_members,
            self.unmapped.len(),
            self.ambiguous.len()
        )
    }
}

/// Summarizability analysis of a whole dimension instance.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SummarizabilityReport {
    /// One profile per comparable category pair, keyed by `(lower, upper)`.
    pub profiles: BTreeMap<(String, String), RollupProfile>,
}

impl SummarizabilityReport {
    /// Analyze a dimension instance.
    pub fn analyze(dimension: &DimensionInstance) -> Self {
        let mut profiles = BTreeMap::new();
        let schema = dimension.schema();
        for lower in schema.categories() {
            for upper in schema.categories() {
                if !schema.rolls_up_to(lower, upper) {
                    continue;
                }
                let members = dimension.members_of(lower);
                let mut unmapped = Vec::new();
                let mut ambiguous = Vec::new();
                for member in &members {
                    let ancestors = dimension.roll_up(lower, member, upper);
                    match ancestors.len() {
                        0 => unmapped.push(*member),
                        1 => {}
                        _ => ambiguous.push(*member),
                    }
                }
                profiles.insert(
                    (lower.clone(), upper.clone()),
                    RollupProfile {
                        lower: lower.clone(),
                        upper: upper.clone(),
                        lower_members: members.len(),
                        unmapped,
                        ambiguous,
                    },
                );
            }
        }
        Self { profiles }
    }

    /// Is every comparable category pair summarizable?
    pub fn is_fully_summarizable(&self) -> bool {
        self.profiles.values().all(RollupProfile::is_summarizable)
    }

    /// The pairs that are *not* summarizable.
    pub fn problem_pairs(&self) -> Vec<&RollupProfile> {
        self.profiles
            .values()
            .filter(|p| !p.is_summarizable())
            .collect()
    }

    /// The profile for one pair, if the categories are comparable.
    pub fn profile(&self, lower: &str, upper: &str) -> Option<&RollupProfile> {
        self.profiles.get(&(lower.to_string(), upper.to_string()))
    }
}

impl fmt::Display for SummarizabilityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for profile in self.profiles.values() {
            writeln!(f, "{profile}")?;
        }
        write!(f, "fully summarizable: {}", self.is_fully_summarizable())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension_schema::DimensionSchema;
    use crate::fixtures::hospital;

    fn hospital_dim() -> DimensionInstance {
        hospital::hospital_dimension()
    }

    #[test]
    fn hospital_dimension_is_fully_summarizable() {
        let report = SummarizabilityReport::analyze(&hospital_dim());
        assert!(report.is_fully_summarizable());
        assert!(report.problem_pairs().is_empty());
        // Ward rolls up to Unit, Institution and AllHospital → 3 pairs for
        // Ward, 2 for Unit, 1 for Institution = 6 in total.
        assert_eq!(report.profiles.len(), 6);
        let ward_unit = report.profile("Ward", "Unit").unwrap();
        assert_eq!(ward_unit.lower_members, 4);
        assert!(ward_unit.is_summarizable());
        assert_eq!(ward_unit.coverage(), 1.0);
        assert!(report.profile("Unit", "Ward").is_none());
    }

    #[test]
    fn missing_rollup_is_reported_as_unmapped() {
        let mut dim = hospital_dim();
        dim.add_member("Ward", "W9").unwrap();
        let report = SummarizabilityReport::analyze(&dim);
        assert!(!report.is_fully_summarizable());
        let ward_unit = report.profile("Ward", "Unit").unwrap();
        assert_eq!(ward_unit.unmapped, vec![Value::str("W9")]);
        assert!(ward_unit.ambiguous.is_empty());
        assert!((ward_unit.coverage() - 4.0 / 5.0).abs() < 1e-9);
        // The problem propagates to every higher level.
        assert_eq!(report.problem_pairs().len(), 3);
    }

    #[test]
    fn double_parent_is_reported_as_ambiguous() {
        let mut dim = hospital_dim();
        dim.add_rollup("Ward", "W1", "Unit", "Intensive").unwrap();
        let report = SummarizabilityReport::analyze(&dim);
        let ward_unit = report.profile("Ward", "Unit").unwrap();
        assert_eq!(ward_unit.ambiguous, vec![Value::str("W1")]);
        assert!(!report.is_fully_summarizable());
        let rendered = report.to_string();
        assert!(rendered.contains("fully summarizable: false"));
        assert!(rendered.contains("Ward → Unit"));
    }

    #[test]
    fn converging_paths_to_a_single_ancestor_stay_summarizable() {
        // City rolls up to Country through two different paths but reaches a
        // single member → still summarizable at the Country level.
        let mut schema = DimensionSchema::new("Location");
        for c in ["City", "Province", "SalesRegion", "Country"] {
            schema.add_category(c);
        }
        schema.add_edge("City", "Province").unwrap();
        schema.add_edge("City", "SalesRegion").unwrap();
        schema.add_edge("Province", "Country").unwrap();
        schema.add_edge("SalesRegion", "Country").unwrap();
        let mut dim = DimensionInstance::new(schema);
        dim.add_rollup("City", "Ottawa", "Province", "Ontario")
            .unwrap();
        dim.add_rollup("City", "Ottawa", "SalesRegion", "East")
            .unwrap();
        dim.add_rollup("Province", "Ontario", "Country", "Canada")
            .unwrap();
        dim.add_rollup("SalesRegion", "East", "Country", "Canada")
            .unwrap();
        let report = SummarizabilityReport::analyze(&dim);
        assert!(report.profile("City", "Country").unwrap().is_summarizable());

        // If the two paths diverge, the City → Country pair becomes
        // ambiguous.
        dim.add_rollup("SalesRegion", "East", "Country", "USA")
            .unwrap();
        let report = SummarizabilityReport::analyze(&dim);
        assert!(!report.profile("City", "Country").unwrap().is_summarizable());
        assert!(report
            .profile("City", "Country")
            .unwrap()
            .ambiguous
            .contains(&Value::str("Ottawa")));
    }

    #[test]
    fn empty_dimension_is_trivially_summarizable() {
        let dim = DimensionInstance::new(DimensionSchema::chain("D", ["A", "B"]));
        let report = SummarizabilityReport::analyze(&dim);
        assert!(report.is_fully_summarizable());
        assert_eq!(report.profile("A", "B").unwrap().coverage(), 1.0);
    }
}
