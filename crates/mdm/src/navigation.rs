//! Navigation-direction analysis of dimensional rules.
//!
//! The paper distinguishes rules that navigate **upward** (data at a lower
//! category level generates data at a higher level, e.g. rule (7):
//! PatientWard → PatientUnit via `UnitWard`) from rules that navigate
//! **downward** (e.g. rule (8): WorkingSchedules → Shifts, and the form-(10)
//! rules with parent–child atoms in the head).  The distinction matters
//! operationally: ontologies whose rules only navigate upward admit
//! first-order query rewriting (Section IV), while downward navigation
//! requires value invention and hence chase- or resolution-based answering.

use crate::ontology::MdOntology;
use ontodq_datalog::{Atom, Term, Tgd, Variable};
use std::collections::BTreeSet;
use std::fmt;

/// The navigation direction of a dimensional rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NavigationDirection {
    /// The rule propagates data from child levels to parent levels.
    Upward,
    /// The rule propagates data from parent levels to child levels.
    Downward,
    /// The rule shows evidence of both directions.
    Mixed,
    /// The rule does not join through any parent–child predicate.
    NonNavigational,
}

impl fmt::Display for NavigationDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            NavigationDirection::Upward => "upward",
            NavigationDirection::Downward => "downward",
            NavigationDirection::Mixed => "mixed",
            NavigationDirection::NonNavigational => "non-navigational",
        };
        write!(f, "{name}")
    }
}

/// Variables occurring anywhere in `atoms`.
fn variables_of(atoms: &[&Atom]) -> BTreeSet<Variable> {
    atoms.iter().flat_map(|a| a.variables()).collect()
}

/// Analyze the navigation direction of one dimensional rule with respect to
/// an ontology (whose dimensions determine the parent–child predicates).
pub fn direction_of(ontology: &MdOntology, rule: &Tgd) -> NavigationDirection {
    let parent_child = ontology.parent_child_predicates();
    let category_names: BTreeSet<&str> = ontology
        .dimensions()
        .values()
        .flat_map(|d| d.schema().categories().iter().map(String::as_str))
        .collect();

    // Split the body into parent–child atoms and "data" atoms (categorical
    // relations or other ordinary predicates).
    let pc_atoms: Vec<&Atom> = rule
        .body
        .atoms
        .iter()
        .filter(|a| parent_child.contains_key(&a.predicate))
        .collect();
    let data_atoms: Vec<&Atom> = rule
        .body
        .atoms
        .iter()
        .filter(|a| {
            !parent_child.contains_key(&a.predicate)
                && !category_names.contains(a.predicate.as_str())
        })
        .collect();
    let head_atoms: Vec<&Atom> = rule.head.iter().collect();
    let head_pc_atoms: Vec<&Atom> = rule
        .head
        .iter()
        .filter(|a| parent_child.contains_key(&a.predicate))
        .collect();

    let body_data_vars = variables_of(&data_atoms);
    let head_vars = variables_of(&head_atoms);

    let mut upward = false;
    let mut downward = false;

    for pc in &pc_atoms {
        // Parent–child predicates are binary with the parent first.
        let (parent_term, child_term) = match (&pc.terms.first(), &pc.terms.get(1)) {
            (Some(p), Some(c)) => (*p, *c),
            _ => continue,
        };
        let parent_var = parent_term.as_var();
        let child_var = child_term.as_var();
        let child_in_body = child_var
            .map(|v| body_data_vars.contains(v))
            .unwrap_or(false);
        let parent_in_body = parent_var
            .map(|v| body_data_vars.contains(v))
            .unwrap_or(false);
        let child_in_head = child_var.map(|v| head_vars.contains(v)).unwrap_or(false);
        let parent_in_head = parent_var.map(|v| head_vars.contains(v)).unwrap_or(false);
        if child_in_body && parent_in_head {
            upward = true;
        }
        if parent_in_body && child_in_head {
            downward = true;
        }
    }

    // Form-(10) rules: a parent–child atom in the head witnesses downward
    // navigation towards an (often existential) child/parent member.
    if !head_pc_atoms.is_empty() {
        downward = true;
    }

    match (upward, downward) {
        (true, true) => NavigationDirection::Mixed,
        (true, false) => NavigationDirection::Upward,
        (false, true) => NavigationDirection::Downward,
        (false, false) => {
            if pc_atoms.is_empty() && head_pc_atoms.is_empty() {
                NavigationDirection::NonNavigational
            } else {
                // A parent–child join that neither imports nor exports a
                // level change (e.g. a pure filter) is treated as
                // non-navigational.
                NavigationDirection::NonNavigational
            }
        }
    }
}

/// Analyze every dimensional rule of the ontology.
pub fn directions(ontology: &MdOntology) -> Vec<(usize, NavigationDirection)> {
    ontology
        .rules()
        .iter()
        .enumerate()
        .map(|(i, r)| (i, direction_of(ontology, r)))
        .collect()
}

/// `true` when every dimensional rule navigates upward only (or not at all) —
/// the syntactic condition under which the paper's FO query rewriting applies.
pub fn is_upward_only(ontology: &MdOntology) -> bool {
    ontology.rules().iter().all(|r| {
        matches!(
            direction_of(ontology, r),
            NavigationDirection::Upward | NavigationDirection::NonNavigational
        )
    })
}

/// `true` when some rule introduces existential values (labeled nulls) —
/// downward rules with schema mismatches or form-(10) rules.
pub fn has_value_invention(ontology: &MdOntology) -> bool {
    ontology
        .rules()
        .iter()
        .any(|r| !r.existential_variables().is_empty())
}

/// A per-rule navigation report for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NavigationReport {
    /// (rule index, direction) pairs.
    pub rules: Vec<(usize, NavigationDirection)>,
    /// Whether the whole ontology is upward-only.
    pub upward_only: bool,
    /// Whether some rule invents values.
    pub value_invention: bool,
}

/// Build a [`NavigationReport`] for an ontology.
pub fn report(ontology: &MdOntology) -> NavigationReport {
    NavigationReport {
        rules: directions(ontology),
        upward_only: is_upward_only(ontology),
        value_invention: has_value_invention(ontology),
    }
}

/// Does the given term occur in the rule's head?  Exposed for use by the
/// rewriting layer when it needs to know which parent–child joins feed head
/// positions.
pub fn term_in_head(rule: &Tgd, term: &Term) -> bool {
    rule.head.iter().any(|a| a.terms.contains(term))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorical::{CategoricalAttribute, CategoricalRelationSchema};
    use crate::dimension_instance::DimensionInstance;
    use crate::dimension_schema::DimensionSchema;
    use ontodq_datalog::parse_rule;
    use ontodq_datalog::Rule;

    fn hospital_ontology() -> MdOntology {
        let schema =
            DimensionSchema::chain("Hospital", ["Ward", "Unit", "Institution", "AllHospital"]);
        let mut hospital = DimensionInstance::new(schema);
        hospital
            .add_rollup("Ward", "W1", "Unit", "Standard")
            .unwrap();
        hospital
            .add_rollup("Unit", "Standard", "Institution", "H1")
            .unwrap();
        hospital
            .add_rollup("Institution", "H1", "AllHospital", "allHospital")
            .unwrap();
        let time = DimensionSchema::chain("Time", ["Time", "Day", "Month", "Year", "AllTime"]);
        let mut time_instance = DimensionInstance::new(time);
        time_instance
            .add_rollup("Day", "Sep/5", "Month", "September/2005")
            .unwrap();

        let mut ontology = MdOntology::new("hospital");
        ontology.add_dimension(hospital);
        ontology.add_dimension(time_instance);
        ontology.add_relation(CategoricalRelationSchema::new(
            "PatientWard",
            vec![
                CategoricalAttribute::categorical("Ward", "Hospital", "Ward"),
                CategoricalAttribute::categorical("Day", "Time", "Day"),
                CategoricalAttribute::non_categorical("Patient"),
            ],
        ));
        ontology
    }

    fn tgd(text: &str) -> Tgd {
        match parse_rule(text).unwrap() {
            Rule::Tgd(t) => t,
            other => panic!("expected TGD, got {other:?}"),
        }
    }

    #[test]
    fn rule_7_is_upward() {
        let ontology = hospital_ontology();
        let rule = tgd("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).");
        assert_eq!(direction_of(&ontology, &rule), NavigationDirection::Upward);
    }

    #[test]
    fn rule_8_is_downward() {
        let ontology = hospital_ontology();
        let rule = tgd("Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).");
        assert_eq!(
            direction_of(&ontology, &rule),
            NavigationDirection::Downward
        );
    }

    #[test]
    fn rule_9_with_head_parent_child_atom_is_downward() {
        let ontology = hospital_ontology();
        let rule =
            tgd("InstitutionUnit(i, u), PatientUnit(u, d, p) :- DischargePatients(i, d, p).");
        assert_eq!(
            direction_of(&ontology, &rule),
            NavigationDirection::Downward
        );
    }

    #[test]
    fn rules_without_parent_child_joins_are_non_navigational() {
        let ontology = hospital_ontology();
        let rule = tgd("Copy(w, d, p) :- PatientWard(w, d, p).");
        assert_eq!(
            direction_of(&ontology, &rule),
            NavigationDirection::NonNavigational
        );
    }

    #[test]
    fn mixed_direction_is_detected() {
        let ontology = hospital_ontology();
        // The rule pushes ward-level data up to units *and* unit-level data
        // down to wards at the same time.
        let rule = tgd(
            "Both(u, w2) :- PatientWard(w, d, p), UnitWard(u, w), WorkingSchedules(u2, d, n, t), UnitWard(u2, w2).",
        );
        assert_eq!(direction_of(&ontology, &rule), NavigationDirection::Mixed);
    }

    #[test]
    fn upward_only_detection() {
        let mut ontology = hospital_ontology();
        ontology
            .add_rule_text("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).")
            .unwrap();
        assert!(is_upward_only(&ontology));
        assert!(!has_value_invention(&ontology));
        ontology
            .add_rule_text("Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).")
            .unwrap();
        assert!(!is_upward_only(&ontology));
        assert!(has_value_invention(&ontology));
        let report = report(&ontology);
        assert_eq!(report.rules.len(), 2);
        assert_eq!(report.rules[0].1, NavigationDirection::Upward);
        assert_eq!(report.rules[1].1, NavigationDirection::Downward);
        assert!(!report.upward_only);
        assert!(report.value_invention);
    }

    #[test]
    fn direction_display() {
        assert_eq!(NavigationDirection::Upward.to_string(), "upward");
        assert_eq!(NavigationDirection::Downward.to_string(), "downward");
        assert_eq!(NavigationDirection::Mixed.to_string(), "mixed");
        assert_eq!(
            NavigationDirection::NonNavigational.to_string(),
            "non-navigational"
        );
    }

    #[test]
    fn term_in_head_helper() {
        let rule = tgd("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).");
        assert!(term_in_head(&rule, &Term::var("u")));
        assert!(!term_in_head(&rule, &Term::var("w")));
    }
}
