//! Reusable example fixtures.
//!
//! [`hospital`] reproduces the paper's running example (Fig. 1, Tables I–V,
//! rules (7)–(9), the closed-unit constraint and the EGD (6)) and is shared
//! by the examples, the integration tests and the benchmark harness.

pub mod hospital;
