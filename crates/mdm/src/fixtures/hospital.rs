//! The paper's running example, reproduced as a reusable fixture.
//!
//! This module builds, verbatim from the paper:
//!
//! * **Figure 1** — the `Hospital` dimension (Ward → Unit → Institution →
//!   AllHospital) and the `Time` dimension (Time → Day → Month → Year →
//!   AllTime), with their member-level roll-ups;
//! * **Table I** — the `Measurements` relation under quality assessment
//!   (returned by [`measurements_database`], it is *not* part of the
//!   ontology — it is the instance `D` that gets mapped into the context);
//! * **Table II** — the expected quality version `Measurements^q`
//!   ([`expected_quality_measurements`]);
//! * **Tables III & IV** — `WorkingSchedules` and `Shifts`;
//! * **Table V** — `DischargePatients`;
//! * the categorical relation `PatientWard` (shown in Fig. 1) and the
//!   auxiliary `Thermometer` relation used by the EGD (6);
//! * the dimensional rules (7) and (8), the optional form-(10) rule (9)
//!   ([`discharge_rule`]), the inter-dimensional constraint of Example 1
//!   ("the intensive care unit has been closed since August 2005", encoded
//!   with a `ClosedMonth` categorical relation listing the months after
//!   August 2005 present in the data), and the EGD (6).
//!
//! The fixture's `PatientWard` data is chosen to be consistent with every
//! claim the paper makes about the example: Tom Waits is in standard-care
//! wards on Sep/5 and Sep/6 (so exactly the first two measurements are of
//! quality, reproducing Table II), in the intensive ward W3 on Sep/7 (the
//! tuple discarded by the closed-unit constraint), and in the terminal ward
//! W4 on Sep/9.

use crate::categorical::{CategoricalAttribute, CategoricalRelationSchema};
use crate::dimension_instance::DimensionInstance;
use crate::dimension_schema::DimensionSchema;
use crate::ontology::MdOntology;
use ontodq_datalog::{parse_rule, Rule, Tgd};
use ontodq_relational::{Attribute, AttributeType, Database, RelationSchema, Tuple, Value};

/// Patient name used throughout the example.
pub const TOM_WAITS: &str = "Tom Waits";
/// The second patient of Table I.
pub const LOU_REED: &str = "Lou Reed";
/// The thermometer brand the doctor expects.
pub const BRAND_B1: &str = "B1";
/// The other thermometer brand.
pub const BRAND_B2: &str = "B2";

/// The timestamps of Table I, in row order.
pub const MEASUREMENT_TIMES: [&str; 6] = [
    "Sep/5-12:10",
    "Sep/6-11:50",
    "Sep/7-12:15",
    "Sep/9-12:00",
    "Sep/6-11:05",
    "Sep/5-12:05",
];

/// The `Hospital` dimension instance of Fig. 1.
pub fn hospital_dimension() -> DimensionInstance {
    let schema = DimensionSchema::chain("Hospital", ["Ward", "Unit", "Institution", "AllHospital"]);
    let mut dim = DimensionInstance::new(schema);
    dim.add_rollup("Ward", "W1", "Unit", "Standard").unwrap();
    dim.add_rollup("Ward", "W2", "Unit", "Standard").unwrap();
    dim.add_rollup("Ward", "W3", "Unit", "Intensive").unwrap();
    dim.add_rollup("Ward", "W4", "Unit", "Terminal").unwrap();
    dim.add_rollup("Unit", "Standard", "Institution", "H1")
        .unwrap();
    dim.add_rollup("Unit", "Intensive", "Institution", "H1")
        .unwrap();
    dim.add_rollup("Unit", "Terminal", "Institution", "H2")
        .unwrap();
    dim.add_rollup("Institution", "H1", "AllHospital", "allHospital")
        .unwrap();
    dim.add_rollup("Institution", "H2", "AllHospital", "allHospital")
        .unwrap();
    dim
}

/// The `Time` dimension instance of Fig. 1.
///
/// Members of the bottom `Time` category are the measurement timestamps
/// (as [`Value::Time`]); `Day` members are the day strings used by the
/// categorical relations (`Sep/5`, …); `Month` members include
/// `August/2005` (mentioned by the constraint) and the months of the data.
pub fn time_dimension() -> DimensionInstance {
    let schema = DimensionSchema::chain("Time", ["Time", "Day", "Month", "Year", "AllTime"]);
    let mut dim = DimensionInstance::new(schema);
    // Timestamp → day roll-ups (DayTime in the paper).
    for time in MEASUREMENT_TIMES {
        let value = Value::parse_time(time).expect("fixture timestamps parse");
        let day = time.split('-').next().unwrap();
        dim.add_rollup("Time", value, "Day", day).unwrap();
    }
    // Day → month roll-ups (MonthDay in the paper).
    for day in ["Sep/5", "Sep/6", "Sep/7", "Sep/9"] {
        dim.add_rollup("Day", day, "Month", "September/2005")
            .unwrap();
    }
    dim.add_rollup("Day", "Oct/5", "Month", "October/2005")
        .unwrap();
    dim.add_member("Month", "August/2005").unwrap();
    // Month → year and year → all.
    for month in ["August/2005", "September/2005", "October/2005"] {
        dim.add_rollup("Month", month, "Year", "2005").unwrap();
    }
    dim.add_rollup("Year", "2005", "AllTime", "allTime")
        .unwrap();
    dim
}

/// The categorical relation schemas of the example.
pub fn categorical_schemas() -> Vec<CategoricalRelationSchema> {
    vec![
        CategoricalRelationSchema::new(
            "PatientWard",
            vec![
                CategoricalAttribute::categorical("Ward", "Hospital", "Ward"),
                CategoricalAttribute::categorical("Day", "Time", "Day"),
                CategoricalAttribute::non_categorical("Patient"),
            ],
        ),
        CategoricalRelationSchema::new(
            "PatientUnit",
            vec![
                CategoricalAttribute::categorical("Unit", "Hospital", "Unit"),
                CategoricalAttribute::categorical("Day", "Time", "Day"),
                CategoricalAttribute::non_categorical("Patient"),
            ],
        ),
        CategoricalRelationSchema::new(
            "WorkingSchedules",
            vec![
                CategoricalAttribute::categorical("Unit", "Hospital", "Unit"),
                CategoricalAttribute::categorical("Day", "Time", "Day"),
                CategoricalAttribute::non_categorical("Nurse"),
                CategoricalAttribute::non_categorical("Type"),
            ],
        ),
        CategoricalRelationSchema::new(
            "Shifts",
            vec![
                CategoricalAttribute::categorical("Ward", "Hospital", "Ward"),
                CategoricalAttribute::categorical("Day", "Time", "Day"),
                CategoricalAttribute::non_categorical("Nurse"),
                CategoricalAttribute::non_categorical("Shift"),
            ],
        ),
        CategoricalRelationSchema::new(
            "DischargePatients",
            vec![
                CategoricalAttribute::categorical("Institution", "Hospital", "Institution"),
                CategoricalAttribute::categorical("Day", "Time", "Day"),
                CategoricalAttribute::non_categorical("Patient"),
            ],
        ),
        CategoricalRelationSchema::new(
            "Thermometer",
            vec![
                CategoricalAttribute::categorical("Ward", "Hospital", "Ward"),
                CategoricalAttribute::non_categorical("Thermometertype"),
                CategoricalAttribute::non_categorical("Nurse"),
            ],
        ),
        CategoricalRelationSchema::new(
            "ClosedMonth",
            vec![CategoricalAttribute::categorical("Month", "Time", "Month")],
        ),
    ]
}

/// Rule (7): upward navigation from `PatientWard` to `PatientUnit`.
pub fn patient_unit_rule() -> Tgd {
    dimensional_rule(
        "PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).",
        "rule-7-upward-patient-unit",
    )
}

/// Rule (8): downward navigation from `WorkingSchedules` to `Shifts`, with an
/// existential (null-producing) shift attribute.
pub fn shifts_rule() -> Tgd {
    dimensional_rule(
        "Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).",
        "rule-8-downward-shifts",
    )
}

/// Rule (9)/(10): downward navigation from `DischargePatients` to
/// `PatientUnit` with an existentially quantified *categorical* variable for
/// the unknown unit.  Not included in [`ontology`] by default because it
/// breaks the syntactic separability of the EGD (6); use
/// [`ontology_with_discharge_rule`] to include it.
pub fn discharge_rule() -> Tgd {
    dimensional_rule(
        "InstitutionUnit(i, u), PatientUnit(u, d, p) :- DischargePatients(i, d, p).",
        "rule-9-downward-discharge",
    )
}

fn dimensional_rule(text: &str, label: &str) -> Tgd {
    match parse_rule(text).expect("fixture rules parse") {
        Rule::Tgd(t) => t.labeled(label),
        other => panic!("fixture rule is not a TGD: {other:?}"),
    }
}

/// The full multidimensional ontology of the running example: both
/// dimensions, all categorical relations with their data (Tables III–V,
/// `PatientWard`, `Thermometer`, `ClosedMonth`), rules (7) and (8), the
/// closed-intensive-unit constraint, and the EGD (6).
pub fn ontology() -> MdOntology {
    let mut ontology = MdOntology::new("hospital");
    ontology.add_dimension(hospital_dimension());
    ontology.add_dimension(time_dimension());
    for schema in categorical_schemas() {
        ontology.add_relation(schema);
    }

    // PatientWard — consistent with Examples 1 and 7 and Table II.
    for (w, d, p) in [
        ("W1", "Sep/5", TOM_WAITS),
        ("W2", "Sep/6", TOM_WAITS),
        ("W3", "Sep/7", TOM_WAITS),
        ("W4", "Sep/9", TOM_WAITS),
        ("W2", "Sep/6", LOU_REED),
        ("W1", "Sep/5", LOU_REED),
    ] {
        ontology.add_tuple("PatientWard", [w, d, p]).unwrap();
    }

    // Table III: WorkingSchedules.
    for (u, d, n, t) in [
        ("Intensive", "Sep/5", "Cathy", "cert."),
        ("Standard", "Sep/5", "Helen", "cert."),
        ("Standard", "Sep/6", "Helen", "cert."),
        ("Terminal", "Sep/5", "Susan", "non-c."),
        ("Standard", "Sep/9", "Mark", "non-c."),
    ] {
        ontology
            .add_tuple("WorkingSchedules", [u, d, n, t])
            .unwrap();
    }

    // Table IV: Shifts.
    for (w, d, n, s) in [
        ("W4", "Sep/5", "Cathy", "night"),
        ("W1", "Sep/6", "Helen", "morning"),
        ("W4", "Sep/5", "Susan", "evening"),
    ] {
        ontology.add_tuple("Shifts", [w, d, n, s]).unwrap();
    }

    // Table V: DischargePatients.
    for (i, d, p) in [
        ("H1", "Sep/9", TOM_WAITS),
        ("H1", "Sep/6", LOU_REED),
        ("H2", "Oct/5", "Elvis Costello"),
    ] {
        ontology.add_tuple("DischargePatients", [i, d, p]).unwrap();
    }

    // Thermometer(Ward, Thermometertype; Nurse): standard-care wards use
    // brand B1, the others use B2 — consistent with the guideline.
    for (w, t, n) in [
        ("W1", BRAND_B1, "Helen"),
        ("W2", BRAND_B1, "Helen"),
        ("W3", BRAND_B2, "Cathy"),
        ("W4", BRAND_B2, "Susan"),
    ] {
        ontology.add_tuple("Thermometer", [w, t, n]).unwrap();
    }

    // Months during which the intensive care unit has been closed (the
    // months after August 2005 present in the data).
    for m in ["September/2005", "October/2005"] {
        ontology.add_tuple("ClosedMonth", [m]).unwrap();
    }

    // Dimensional rules (7) and (8).
    ontology.add_rule(patient_unit_rule());
    ontology.add_rule(shifts_rule());

    // Inter-dimensional constraint of Example 1/4: no patient was in the
    // intensive care unit after August 2005.
    ontology
        .add_rule_text(
            "! :- PatientWard(w, d, p), UnitWard(Intensive, w), MonthDay(m, d), ClosedMonth(m).",
        )
        .unwrap();

    // EGD (6): all thermometers used in a unit are of the same type.
    ontology
        .add_rule_text(
            "t = t2 :- Thermometer(w, t, n), Thermometer(w2, t2, n2), UnitWard(u, w), UnitWard(u, w2).",
        )
        .unwrap();

    ontology
}

/// The ontology extended with the form-(10) rule (9) of Example 6.
pub fn ontology_with_discharge_rule() -> MdOntology {
    let mut o = ontology();
    o.add_rule(discharge_rule());
    o
}

/// The relational schema of Table I (`Measurements`).
pub fn measurements_schema() -> RelationSchema {
    RelationSchema::new(
        "Measurements",
        vec![
            Attribute::new("Time", AttributeType::Time),
            Attribute::string("Patient"),
            Attribute::new("Value", AttributeType::Double),
        ],
    )
}

/// Table I as a database containing the single relation `Measurements` — the
/// instance `D` under quality assessment.
pub fn measurements_database() -> Database {
    let mut db = Database::new();
    db.create_relation(measurements_schema()).unwrap();
    for (time, patient, value) in [
        ("Sep/5-12:10", TOM_WAITS, 38.2),
        ("Sep/6-11:50", TOM_WAITS, 37.1),
        ("Sep/7-12:15", TOM_WAITS, 37.7),
        ("Sep/9-12:00", TOM_WAITS, 37.0),
        ("Sep/6-11:05", LOU_REED, 37.5),
        ("Sep/5-12:05", LOU_REED, 38.0),
    ] {
        db.insert(
            "Measurements",
            Tuple::new(vec![
                Value::parse_time(time).unwrap(),
                Value::str(patient),
                Value::double(value),
            ]),
        )
        .unwrap();
    }
    db
}

/// Table II: the expected quality version `Measurements^q` (Tom Waits'
/// measurements taken in the standard-care unit with a brand-B1 thermometer
/// by a certified nurse).
pub fn expected_quality_measurements() -> Vec<Tuple> {
    vec![
        Tuple::new(vec![
            Value::parse_time("Sep/5-12:10").unwrap(),
            Value::str(TOM_WAITS),
            Value::double(38.2),
        ]),
        Tuple::new(vec![
            Value::parse_time("Sep/6-11:50").unwrap(),
            Value::str(TOM_WAITS),
            Value::double(37.1),
        ]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::navigation::{self, NavigationDirection};
    use ontodq_chase::chase;
    use ontodq_datalog::analysis;

    #[test]
    fn dimensions_are_valid_strict_and_homogeneous() {
        for dim in [hospital_dimension(), time_dimension()] {
            assert!(dim.validate().is_ok(), "{} invalid", dim.name());
            assert!(
                dim.strictness_violations().is_empty(),
                "{} not strict",
                dim.name()
            );
            assert!(
                dim.homogeneity_violations().is_empty(),
                "{} not homogeneous",
                dim.name()
            );
        }
    }

    #[test]
    fn ontology_validates_and_has_expected_shape() {
        let o = ontology();
        assert!(o.validate().is_ok());
        let s = o.summary();
        assert_eq!(s.dimensions, 2);
        assert_eq!(s.categorical_relations, 7);
        assert_eq!(s.rules, 2);
        assert_eq!(s.egds, 1);
        assert_eq!(s.constraints, 1);
        // Table row counts.
        let data = o.data();
        assert_eq!(data.relation("PatientWard").unwrap().len(), 6);
        assert_eq!(data.relation("WorkingSchedules").unwrap().len(), 5);
        assert_eq!(data.relation("Shifts").unwrap().len(), 3);
        assert_eq!(data.relation("DischargePatients").unwrap().len(), 3);
    }

    #[test]
    fn navigation_directions_match_the_paper() {
        let o = ontology();
        let dirs = navigation::directions(&o);
        assert_eq!(dirs[0].1, NavigationDirection::Upward);
        assert_eq!(dirs[1].1, NavigationDirection::Downward);
        assert!(!navigation::is_upward_only(&o));
        let with_discharge = ontology_with_discharge_rule();
        assert_eq!(
            navigation::direction_of(&with_discharge, &discharge_rule()),
            NavigationDirection::Downward
        );
    }

    #[test]
    fn compiled_ontology_is_weakly_sticky_with_separable_egds() {
        let compiled = compile(&ontology());
        let report = analysis::classify(&compiled.program);
        assert!(
            report.weakly_sticky,
            "hospital ontology must be weakly sticky"
        );
        let separability = analysis::check_program(&compiled.program);
        assert!(separability.all_separable(), "EGD (6) must be separable");
        // With the form-(10) discharge rule, separability of a unit-level EGD
        // is no longer guaranteed syntactically (the paper's caveat) — but
        // the thermometer EGD (6) only equates Thermometer[1] values, which
        // the discharge rule never writes, so it stays separable.
        let compiled2 = compile(&ontology_with_discharge_rule());
        let report2 = analysis::classify(&compiled2.program);
        assert!(report2.weakly_sticky);
    }

    #[test]
    fn chase_reproduces_the_papers_navigation_examples() {
        let compiled = compile(&ontology());
        let result = chase(&compiled.program, &compiled.database);
        // Upward navigation: Tom Waits was in the Standard unit on Sep/5 and
        // Sep/6 and in the Intensive unit on Sep/7 (Example 1).
        let pu = result.database.relation("PatientUnit").unwrap();
        assert!(pu.contains(&Tuple::from_iter(["Standard", "Sep/5", TOM_WAITS])));
        assert!(pu.contains(&Tuple::from_iter(["Standard", "Sep/6", TOM_WAITS])));
        assert!(pu.contains(&Tuple::from_iter(["Intensive", "Sep/7", TOM_WAITS])));
        // Downward navigation: Mark has (null-shift) shifts in W1 and W2 on
        // Sep/9 (Example 2 / Example 5).
        let shifts = result.database.relation("Shifts").unwrap();
        let marks: Vec<_> = shifts
            .iter()
            .filter(|t| t.get(2) == Some(&Value::str("Mark")))
            .collect();
        assert_eq!(marks.len(), 2);
        // The inter-dimensional constraint flags the Sep/7 intensive-ward
        // tuple (the "third tuple to be discarded").
        assert_eq!(result.violations.nc.len(), 1);
        // The EGD (6) is satisfied by the fixture data.
        assert!(result.violations.egd.is_empty());
    }

    #[test]
    fn discharge_rule_generates_patient_unit_with_unknown_unit() {
        let compiled = compile(&ontology_with_discharge_rule());
        let result = chase(&compiled.program, &compiled.database);
        let iu = result.database.relation("InstitutionUnit").unwrap();
        // InstitutionUnit holds the three dimension-level pairs plus one
        // fresh-null link per discharge tuple whose unit cannot already be
        // inferred: Lou Reed's Sep/6 discharge is satisfied by the Standard
        // unit (he was in W2 that day), while Tom Waits' Sep/9 and Elvis
        // Costello's Oct/5 discharges invent unknown units.
        assert_eq!(iu.len(), 5);
        let null_links: Vec<_> = iu.iter().filter(|t| t.get(1).unwrap().is_null()).collect();
        assert_eq!(null_links.len(), 2);
        // The invented units also appear in PatientUnit (shared nulls).
        let pu = result.database.relation("PatientUnit").unwrap();
        let null_units: Vec<_> = pu.iter().filter(|t| t.get(0).unwrap().is_null()).collect();
        assert_eq!(null_units.len(), 2);
    }

    #[test]
    fn measurements_match_table_i_and_expected_quality_table_ii() {
        let db = measurements_database();
        let m = db.relation("Measurements").unwrap();
        assert_eq!(m.len(), 6);
        let expected = expected_quality_measurements();
        assert_eq!(expected.len(), 2);
        for t in &expected {
            assert!(m.contains(t), "quality tuples are a subset of Table I");
        }
    }

    #[test]
    fn time_dimension_links_measurement_times_to_days() {
        let time = time_dimension();
        let noonish = Value::parse_time("Sep/5-12:10").unwrap();
        assert_eq!(
            time.roll_up("Time", &noonish, "Day"),
            [Value::str("Sep/5")].into()
        );
        assert_eq!(
            time.roll_up("Time", &noonish, "Month"),
            [Value::str("September/2005")].into()
        );
        assert_eq!(
            time.drill_down("Month", &Value::str("September/2005"), "Day")
                .len(),
            4
        );
    }
}
