//! Multidimensional ontologies `M = (S_M, D_M, Σ_M)`.
//!
//! An [`MdOntology`] bundles:
//! * the dimensions (schemas + instances) — the paper's category predicates
//!   `K` and parent–child predicates `O` with their fixed extensions,
//! * the categorical relation schemas and their data — the predicates `R`,
//! * the dimensional rules (TGDs of forms (4) and (10)), dimensional
//!   constraints (EGDs of form (2) and negative constraints of form (3)),
//!   and, generated automatically at compile time, the referential
//!   constraints of form (1).

use crate::categorical::CategoricalRelationSchema;
use crate::dimension_instance::DimensionInstance;
use crate::error::{MdError, Result};
use ontodq_datalog::{parse_rule, Egd, NegativeConstraint, Rule, Tgd};
use ontodq_relational::{Database, Tuple, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A multidimensional ontology.
#[derive(Debug, Clone, Default)]
pub struct MdOntology {
    name: String,
    dimensions: BTreeMap<String, DimensionInstance>,
    relations: BTreeMap<String, CategoricalRelationSchema>,
    data: Database,
    rules: Vec<Tgd>,
    egds: Vec<Egd>,
    constraints: Vec<NegativeConstraint>,
}

impl MdOntology {
    /// An empty ontology.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The ontology's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Add (or replace) a dimension instance.
    pub fn add_dimension(&mut self, dimension: DimensionInstance) -> &mut Self {
        self.dimensions
            .insert(dimension.name().to_string(), dimension);
        self
    }

    /// Add (or replace) a categorical relation schema.
    pub fn add_relation(&mut self, schema: CategoricalRelationSchema) -> &mut Self {
        self.data
            .create_relation(schema.to_relation_schema())
            .expect("categorical relation schemas convert to fresh relational schemas");
        self.relations.insert(schema.name().to_string(), schema);
        self
    }

    /// Add a tuple to a categorical relation.
    pub fn add_tuple<I, V>(&mut self, relation: &str, values: I) -> Result<()>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        if !self.relations.contains_key(relation) {
            return Err(MdError::UnknownCategoricalRelation(relation.to_string()));
        }
        self.data
            .insert(relation, Tuple::from_iter(values))
            .map(|_| ())
            .map_err(MdError::from)
    }

    /// Add a dimensional rule (TGD).
    pub fn add_rule(&mut self, rule: Tgd) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Add a dimensional EGD (form (2)).
    pub fn add_egd(&mut self, egd: Egd) -> &mut Self {
        self.egds.push(egd);
        self
    }

    /// Add a dimensional negative constraint (form (3)).
    pub fn add_constraint(&mut self, nc: NegativeConstraint) -> &mut Self {
        self.constraints.push(nc);
        self
    }

    /// Parse a rule in the `ontodq-datalog` text syntax and add it to the
    /// ontology (TGDs become dimensional rules, EGDs dimensional EGDs,
    /// `! :- …` constraints dimensional constraints; facts are rejected —
    /// extensional data goes through [`MdOntology::add_tuple`]).
    pub fn add_rule_text(&mut self, text: &str) -> Result<&mut Self> {
        let rule = parse_rule(text).map_err(|e| MdError::Relational(e.to_string()))?;
        match rule {
            Rule::Tgd(t) => self.rules.push(t),
            Rule::Egd(e) => self.egds.push(e),
            Rule::Constraint(c) => self.constraints.push(c),
            Rule::Fact(f) => {
                return Err(MdError::Relational(format!(
                    "facts are not dimensional rules: {f}"
                )))
            }
            Rule::Retract(r) => {
                return Err(MdError::Relational(format!(
                    "retractions are not dimensional rules: {r}"
                )))
            }
            Rule::Delete(d) => {
                return Err(MdError::Relational(format!(
                    "conditional deletes are not dimensional rules: {d}"
                )))
            }
        }
        Ok(self)
    }

    /// The dimensions, keyed by name.
    pub fn dimensions(&self) -> &BTreeMap<String, DimensionInstance> {
        &self.dimensions
    }

    /// The dimension called `name`.
    pub fn dimension(&self, name: &str) -> Result<&DimensionInstance> {
        self.dimensions
            .get(name)
            .ok_or_else(|| MdError::UnknownDimension(name.to_string()))
    }

    /// The categorical relation schemas, keyed by name.
    pub fn relations(&self) -> &BTreeMap<String, CategoricalRelationSchema> {
        &self.relations
    }

    /// The categorical relation schema called `name`.
    pub fn relation(&self, name: &str) -> Result<&CategoricalRelationSchema> {
        self.relations
            .get(name)
            .ok_or_else(|| MdError::UnknownCategoricalRelation(name.to_string()))
    }

    /// The extensional data of the categorical relations.
    pub fn data(&self) -> &Database {
        &self.data
    }

    /// The dimensional rules.
    pub fn rules(&self) -> &[Tgd] {
        &self.rules
    }

    /// The dimensional EGDs.
    pub fn egds(&self) -> &[Egd] {
        &self.egds
    }

    /// The dimensional negative constraints.
    pub fn constraints(&self) -> &[NegativeConstraint] {
        &self.constraints
    }

    /// The name of the parent–child predicate for an adjacency edge, in the
    /// paper's style: `UnitWard`, `MonthDay`, `DayTime`, …
    pub fn parent_child_predicate(parent_category: &str, child_category: &str) -> String {
        format!("{parent_category}{child_category}")
    }

    /// All parent–child predicate names of the ontology, mapped to
    /// `(dimension, child category, parent category)`.
    pub fn parent_child_predicates(&self) -> BTreeMap<String, (String, String, String)> {
        let mut out = BTreeMap::new();
        for (dim_name, dim) in &self.dimensions {
            for (child, parent) in dim.schema().edges() {
                out.insert(
                    Self::parent_child_predicate(&parent, &child),
                    (dim_name.clone(), child.clone(), parent.clone()),
                );
            }
        }
        out
    }

    /// Check the referential integrity of the categorical data: every value
    /// at a categorical position must be a member of the linked category
    /// (labeled nulls are exempt — they stand for unknown members).  Returns
    /// all violations found.
    pub fn referential_violations(&self) -> Vec<MdError> {
        let mut violations = Vec::new();
        for (name, schema) in &self.relations {
            let Ok(instance) = self.data.relation(name) else {
                continue;
            };
            for (position, dimension, category) in schema.links() {
                let Ok(dim) = self.dimension(dimension) else {
                    violations.push(MdError::BadCategoricalAttribute {
                        relation: name.clone(),
                        attribute: schema.attributes()[position].name().to_string(),
                        reason: format!("unknown dimension '{dimension}'"),
                    });
                    continue;
                };
                if !dim.schema().has_category(category) {
                    violations.push(MdError::BadCategoricalAttribute {
                        relation: name.clone(),
                        attribute: schema.attributes()[position].name().to_string(),
                        reason: format!("dimension '{dimension}' has no category '{category}'"),
                    });
                    continue;
                }
                for tuple in instance.iter() {
                    let Some(value) = tuple.get(position) else {
                        continue;
                    };
                    if value.is_null() {
                        continue;
                    }
                    if !dim.is_member(category, value) {
                        violations.push(MdError::ReferentialViolation {
                            relation: name.clone(),
                            attribute: schema.attributes()[position].name().to_string(),
                            value: value.to_string(),
                        });
                    }
                }
            }
        }
        violations
    }

    /// Validate the ontology: dimension schemas are acyclic, categorical
    /// relation schemas are well-formed and their links resolve, and the data
    /// satisfies referential integrity.
    pub fn validate(&self) -> Result<()> {
        for dim in self.dimensions.values() {
            dim.validate()?;
        }
        for schema in self.relations.values() {
            schema.validate()?;
            for (_, dimension, category) in schema.links() {
                let dim =
                    self.dimension(dimension)
                        .map_err(|_| MdError::BadCategoricalAttribute {
                            relation: schema.name().to_string(),
                            attribute: "<link>".into(),
                            reason: format!("unknown dimension '{dimension}'"),
                        })?;
                if !dim.schema().has_category(category) {
                    return Err(MdError::UnknownCategory {
                        dimension: dimension.to_string(),
                        category: category.to_string(),
                    });
                }
            }
        }
        if let Some(violation) = self.referential_violations().into_iter().next() {
            return Err(violation);
        }
        Ok(())
    }

    /// Summary counts used by diagnostics and benches.
    pub fn summary(&self) -> OntologySummary {
        OntologySummary {
            dimensions: self.dimensions.len(),
            categories: self
                .dimensions
                .values()
                .map(|d| d.schema().categories().len())
                .sum(),
            members: self.dimensions.values().map(|d| d.member_count()).sum(),
            categorical_relations: self.relations.len(),
            categorical_tuples: self.data.total_tuples(),
            rules: self.rules.len(),
            egds: self.egds.len(),
            constraints: self.constraints.len(),
        }
    }
}

/// Summary counts of an ontology's components.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OntologySummary {
    /// Number of dimensions.
    pub dimensions: usize,
    /// Total number of categories across dimensions.
    pub categories: usize,
    /// Total number of members across categories.
    pub members: usize,
    /// Number of categorical relations.
    pub categorical_relations: usize,
    /// Total number of tuples in categorical relations.
    pub categorical_tuples: usize,
    /// Number of dimensional rules.
    pub rules: usize,
    /// Number of dimensional EGDs.
    pub egds: usize,
    /// Number of dimensional negative constraints.
    pub constraints: usize,
}

impl fmt::Display for OntologySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} dimensions, {} categories, {} members, {} categorical relations ({} tuples), {} rules, {} EGDs, {} constraints",
            self.dimensions,
            self.categories,
            self.members,
            self.categorical_relations,
            self.categorical_tuples,
            self.rules,
            self.egds,
            self.constraints
        )
    }
}

impl fmt::Display for MdOntology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ontology {} {{", self.name)?;
        for dim in self.dimensions.values() {
            writeln!(f, "{}", dim.schema())?;
        }
        for rel in self.relations.values() {
            writeln!(f, "  {rel}")?;
        }
        for rule in &self.rules {
            writeln!(f, "  {rule}")?;
        }
        for egd in &self.egds {
            writeln!(f, "  {egd}")?;
        }
        for nc in &self.constraints {
            writeln!(f, "  {nc}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorical::CategoricalAttribute;
    use crate::dimension_schema::DimensionSchema;

    fn small_ontology() -> MdOntology {
        let schema =
            DimensionSchema::chain("Hospital", ["Ward", "Unit", "Institution", "AllHospital"]);
        let mut hospital = DimensionInstance::new(schema);
        hospital
            .add_rollup("Ward", "W1", "Unit", "Standard")
            .unwrap();
        hospital
            .add_rollup("Ward", "W2", "Unit", "Standard")
            .unwrap();
        hospital
            .add_rollup("Unit", "Standard", "Institution", "H1")
            .unwrap();
        hospital
            .add_rollup("Institution", "H1", "AllHospital", "allHospital")
            .unwrap();

        let mut ontology = MdOntology::new("hospital-mini");
        ontology.add_dimension(hospital);
        ontology.add_relation(CategoricalRelationSchema::new(
            "PatientWard",
            vec![
                CategoricalAttribute::categorical("Ward", "Hospital", "Ward"),
                CategoricalAttribute::non_categorical("Day"),
                CategoricalAttribute::non_categorical("Patient"),
            ],
        ));
        ontology
            .add_tuple("PatientWard", ["W1", "Sep/5", "Tom Waits"])
            .unwrap();
        ontology
            .add_rule_text("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).")
            .unwrap();
        ontology
    }

    #[test]
    fn ontology_accessors() {
        let o = small_ontology();
        assert_eq!(o.name(), "hospital-mini");
        assert!(o.dimension("Hospital").is_ok());
        assert!(o.dimension("Time").is_err());
        assert!(o.relation("PatientWard").is_ok());
        assert!(o.relation("Shifts").is_err());
        assert_eq!(o.rules().len(), 1);
        assert_eq!(o.data().relation("PatientWard").unwrap().len(), 1);
    }

    #[test]
    fn parent_child_predicate_naming_follows_the_paper() {
        assert_eq!(
            MdOntology::parent_child_predicate("Unit", "Ward"),
            "UnitWard"
        );
        let o = small_ontology();
        let pcs = o.parent_child_predicates();
        assert!(pcs.contains_key("UnitWard"));
        assert_eq!(
            pcs.get("UnitWard"),
            Some(&(
                "Hospital".to_string(),
                "Ward".to_string(),
                "Unit".to_string()
            ))
        );
        assert!(pcs.contains_key("InstitutionUnit"));
        assert!(pcs.contains_key("AllHospitalInstitution"));
    }

    #[test]
    fn add_tuple_requires_declared_relation() {
        let mut o = small_ontology();
        assert!(matches!(
            o.add_tuple("Shifts", ["W1", "Sep/5", "Helen", "night"]),
            Err(MdError::UnknownCategoricalRelation(_))
        ));
    }

    #[test]
    fn add_rule_text_dispatches_by_kind() {
        let mut o = small_ontology();
        o.add_rule_text("! :- PatientWard(w, d, p), UnitWard(Intensive, w).")
            .unwrap();
        o.add_rule_text(
            "t = t2 :- Thermometer(w, t, n), Thermometer(w2, t2, n2), UnitWard(u, w), UnitWard(u, w2).",
        )
        .unwrap();
        assert_eq!(o.constraints().len(), 1);
        assert_eq!(o.egds().len(), 1);
        assert!(o.add_rule_text("Unit(Standard).").is_err());
        assert!(o.add_rule_text("not a rule").is_err());
    }

    #[test]
    fn referential_violations_are_detected() {
        let mut o = small_ontology();
        assert!(o.referential_violations().is_empty());
        assert!(o.validate().is_ok());
        // W9 is not a ward member.
        o.add_tuple("PatientWard", ["W9", "Sep/5", "Lou Reed"])
            .unwrap();
        let violations = o.referential_violations();
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            MdError::ReferentialViolation { value, .. } if value == "W9"
        ));
        assert!(o.validate().is_err());
    }

    #[test]
    fn validate_rejects_links_to_unknown_categories() {
        let mut o = small_ontology();
        o.add_relation(CategoricalRelationSchema::new(
            "Bad",
            vec![CategoricalAttribute::categorical(
                "Wing", "Hospital", "Wing",
            )],
        ));
        assert!(o.validate().is_err());
        let mut o2 = small_ontology();
        o2.add_relation(CategoricalRelationSchema::new(
            "Bad2",
            vec![CategoricalAttribute::categorical(
                "City", "Location", "City",
            )],
        ));
        assert!(o2.validate().is_err());
    }

    #[test]
    fn summary_counts_components() {
        let o = small_ontology();
        let s = o.summary();
        assert_eq!(s.dimensions, 1);
        assert_eq!(s.categories, 4);
        assert_eq!(s.members, 5);
        assert_eq!(s.categorical_relations, 1);
        assert_eq!(s.categorical_tuples, 1);
        assert_eq!(s.rules, 1);
        assert!(s.to_string().contains("1 dimensions"));
    }

    #[test]
    fn display_renders_components() {
        let rendered = small_ontology().to_string();
        assert!(rendered.contains("ontology hospital-mini"));
        assert!(rendered.contains("dimension Hospital"));
        assert!(rendered.contains("PatientUnit(u, d, p) :- "));
    }

    #[test]
    fn nulls_are_exempt_from_referential_checking() {
        let mut o = small_ontology();
        o.data
            .insert(
                "PatientWard",
                Tuple::new(vec![
                    Value::Null(ontodq_relational::NullId(0)),
                    Value::str("Sep/5"),
                    Value::str("X"),
                ]),
            )
            .unwrap();
        assert!(o.referential_violations().is_empty());
    }
}
