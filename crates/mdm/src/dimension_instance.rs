//! Dimension instances: members of categories and the member-level
//! parent–child relation (roll-up), as in the Hurtado–Mendelzon model.

use crate::dimension_schema::DimensionSchema;
use crate::error::{MdError, Result};
use ontodq_relational::Value;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// An instance of a dimension: members per category and member-level
/// roll-up pairs along the adjacency edges of the schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionInstance {
    schema: DimensionSchema,
    /// Category → its members.
    members: BTreeMap<String, BTreeSet<Value>>,
    /// (child category, parent category) → set of (child member, parent member).
    rollups: BTreeMap<(String, String), BTreeSet<(Value, Value)>>,
}

impl DimensionInstance {
    /// An empty instance over `schema`.
    pub fn new(schema: DimensionSchema) -> Self {
        Self {
            schema,
            members: BTreeMap::new(),
            rollups: BTreeMap::new(),
        }
    }

    /// The underlying schema.
    pub fn schema(&self) -> &DimensionSchema {
        &self.schema
    }

    /// The dimension's name.
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Add a member to a category.
    pub fn add_member(&mut self, category: &str, member: impl Into<Value>) -> Result<&mut Self> {
        if !self.schema.has_category(category) {
            return Err(MdError::UnknownCategory {
                dimension: self.name().to_string(),
                category: category.to_string(),
            });
        }
        self.members
            .entry(category.to_string())
            .or_default()
            .insert(member.into());
        Ok(self)
    }

    /// Add several members to a category.
    pub fn add_members<I, V>(&mut self, category: &str, members: I) -> Result<&mut Self>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        for m in members {
            self.add_member(category, m)?;
        }
        Ok(self)
    }

    /// Record that `child_member` (in `child_category`) rolls up to
    /// `parent_member` (in `parent_category`).  The categories must be
    /// adjacent in the schema and both members must have been declared;
    /// undeclared members are added implicitly for convenience.
    pub fn add_rollup(
        &mut self,
        child_category: &str,
        child_member: impl Into<Value>,
        parent_category: &str,
        parent_member: impl Into<Value>,
    ) -> Result<&mut Self> {
        if !self.schema.is_adjacent(child_category, parent_category) {
            return Err(MdError::NotAdjacent {
                dimension: self.name().to_string(),
                child: child_category.to_string(),
                parent: parent_category.to_string(),
            });
        }
        let child_member = child_member.into();
        let parent_member = parent_member.into();
        self.add_member(child_category, child_member)?;
        self.add_member(parent_category, parent_member)?;
        self.rollups
            .entry((child_category.to_string(), parent_category.to_string()))
            .or_default()
            .insert((child_member, parent_member));
        Ok(self)
    }

    /// The members of `category`.
    pub fn members_of(&self, category: &str) -> BTreeSet<Value> {
        self.members.get(category).cloned().unwrap_or_default()
    }

    /// Is `member` a member of `category`?
    pub fn is_member(&self, category: &str, member: &Value) -> bool {
        self.members
            .get(category)
            .map(|ms| ms.contains(member))
            .unwrap_or(false)
    }

    /// Total number of members across all categories.
    pub fn member_count(&self) -> usize {
        self.members.values().map(BTreeSet::len).sum()
    }

    /// The adjacency-level roll-up pairs between two adjacent categories.
    pub fn rollup_pairs(
        &self,
        child_category: &str,
        parent_category: &str,
    ) -> BTreeSet<(Value, Value)> {
        self.rollups
            .get(&(child_category.to_string(), parent_category.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// The direct parents of `member` (of `child_category`) in
    /// `parent_category`.
    pub fn parents_of_member(
        &self,
        child_category: &str,
        member: &Value,
        parent_category: &str,
    ) -> BTreeSet<Value> {
        self.rollup_pairs(child_category, parent_category)
            .into_iter()
            .filter_map(|(c, p)| (&c == member).then_some(p))
            .collect()
    }

    /// The direct children of `member` (of `parent_category`) in
    /// `child_category`.
    pub fn children_of_member(
        &self,
        parent_category: &str,
        member: &Value,
        child_category: &str,
    ) -> BTreeSet<Value> {
        self.rollup_pairs(child_category, parent_category)
            .into_iter()
            .filter_map(|(c, p)| (&p == member).then_some(c))
            .collect()
    }

    /// The transitive roll-up of `member` from `from_category` to
    /// `to_category` (the set of ancestors of the member in `to_category`,
    /// following any upward path).  Returns the member itself when the
    /// categories coincide.
    pub fn roll_up(
        &self,
        from_category: &str,
        member: &Value,
        to_category: &str,
    ) -> BTreeSet<Value> {
        if from_category == to_category {
            return if self.is_member(from_category, member) {
                std::iter::once(*member).collect()
            } else {
                BTreeSet::new()
            };
        }
        let mut result = BTreeSet::new();
        let mut queue: VecDeque<(String, Value)> = VecDeque::new();
        let mut seen: BTreeSet<(String, Value)> = BTreeSet::new();
        queue.push_back((from_category.to_string(), *member));
        while let Some((category, current)) = queue.pop_front() {
            for parent_category in self.schema.parents_of(&category) {
                for parent in self.parents_of_member(&category, &current, &parent_category) {
                    if parent_category == to_category {
                        result.insert(parent);
                    }
                    if seen.insert((parent_category.clone(), parent)) {
                        queue.push_back((parent_category.clone(), parent));
                    }
                }
            }
        }
        result
    }

    /// The transitive drill-down of `member` from `from_category` to
    /// `to_category` (the set of descendants of the member in `to_category`).
    pub fn drill_down(
        &self,
        from_category: &str,
        member: &Value,
        to_category: &str,
    ) -> BTreeSet<Value> {
        if from_category == to_category {
            return if self.is_member(from_category, member) {
                std::iter::once(*member).collect()
            } else {
                BTreeSet::new()
            };
        }
        let mut result = BTreeSet::new();
        let mut queue: VecDeque<(String, Value)> = VecDeque::new();
        let mut seen: BTreeSet<(String, Value)> = BTreeSet::new();
        queue.push_back((from_category.to_string(), *member));
        while let Some((category, current)) = queue.pop_front() {
            for child_category in self.schema.children_of(&category) {
                for child in self.children_of_member(&category, &current, &child_category) {
                    if child_category == to_category {
                        result.insert(child);
                    }
                    if seen.insert((child_category.clone(), child)) {
                        queue.push_back((child_category.clone(), child));
                    }
                }
            }
        }
        result
    }

    /// Check **strictness**: every member rolls up to at most one member of
    /// each (transitively) higher category.  Returns the violations found.
    pub fn strictness_violations(&self) -> Vec<MdError> {
        let mut violations = Vec::new();
        for (category, members) in &self.members {
            for upper in self.schema.categories() {
                if !self.schema.rolls_up_to(category, upper) {
                    continue;
                }
                for member in members {
                    let ancestors = self.roll_up(category, member, upper);
                    if ancestors.len() > 1 {
                        violations.push(MdError::StrictnessViolation {
                            dimension: self.name().to_string(),
                            category: category.clone(),
                            member: member.to_string(),
                            parent_category: upper.clone(),
                        });
                    }
                }
            }
        }
        violations
    }

    /// Check **homogeneity** (completeness of roll-ups): every member has at
    /// least one parent in every adjacent parent category.  Returns the
    /// violations found.
    pub fn homogeneity_violations(&self) -> Vec<MdError> {
        let mut violations = Vec::new();
        for (category, members) in &self.members {
            for parent_category in self.schema.parents_of(category) {
                for member in members {
                    if self
                        .parents_of_member(category, member, &parent_category)
                        .is_empty()
                    {
                        violations.push(MdError::HomogeneityViolation {
                            dimension: self.name().to_string(),
                            category: category.clone(),
                            member: member.to_string(),
                            parent_category: parent_category.clone(),
                        });
                    }
                }
            }
        }
        violations
    }

    /// Validate the instance: the schema must be acyclic and every roll-up
    /// pair must connect declared members of adjacent categories (the latter
    /// holds by construction through [`DimensionInstance::add_rollup`]).
    /// Strictness and homogeneity are *not* required — the HM model treats
    /// them as optional integrity constraints — but are reported separately
    /// by [`DimensionInstance::strictness_violations`] and
    /// [`DimensionInstance::homogeneity_violations`].
    pub fn validate(&self) -> Result<()> {
        self.schema.validate()
    }
}

impl fmt::Display for DimensionInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dimension instance {} {{", self.name())?;
        for (category, members) in &self.members {
            let rendered: Vec<String> = members.iter().map(|m| m.to_string()).collect();
            writeln!(f, "  {category}: {}", rendered.join(", "))?;
        }
        for ((child, parent), pairs) in &self.rollups {
            for (c, p) in pairs {
                writeln!(f, "  {child}:{c} -> {parent}:{p}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Hospital dimension instance of Fig. 1.
    pub(crate) fn hospital_instance() -> DimensionInstance {
        let schema =
            DimensionSchema::chain("Hospital", ["Ward", "Unit", "Institution", "AllHospital"]);
        let mut dim = DimensionInstance::new(schema);
        dim.add_rollup("Ward", "W1", "Unit", "Standard").unwrap();
        dim.add_rollup("Ward", "W2", "Unit", "Standard").unwrap();
        dim.add_rollup("Ward", "W3", "Unit", "Intensive").unwrap();
        dim.add_rollup("Ward", "W4", "Unit", "Terminal").unwrap();
        dim.add_rollup("Unit", "Standard", "Institution", "H1")
            .unwrap();
        dim.add_rollup("Unit", "Intensive", "Institution", "H1")
            .unwrap();
        dim.add_rollup("Unit", "Terminal", "Institution", "H2")
            .unwrap();
        dim.add_rollup("Institution", "H1", "AllHospital", "allHospital")
            .unwrap();
        dim.add_rollup("Institution", "H2", "AllHospital", "allHospital")
            .unwrap();
        dim
    }

    #[test]
    fn members_and_rollups_are_recorded() {
        let dim = hospital_instance();
        assert_eq!(dim.members_of("Ward").len(), 4);
        assert_eq!(dim.members_of("Unit").len(), 3);
        assert!(dim.is_member("Unit", &Value::str("Standard")));
        assert!(!dim.is_member("Unit", &Value::str("Oncology")));
        assert_eq!(dim.member_count(), 4 + 3 + 2 + 1);
        assert_eq!(dim.rollup_pairs("Ward", "Unit").len(), 4);
    }

    #[test]
    fn direct_parents_and_children() {
        let dim = hospital_instance();
        assert_eq!(
            dim.parents_of_member("Ward", &Value::str("W1"), "Unit"),
            [Value::str("Standard")].into()
        );
        assert_eq!(
            dim.children_of_member("Unit", &Value::str("Standard"), "Ward"),
            [Value::str("W1"), Value::str("W2")].into()
        );
        assert!(dim
            .parents_of_member("Ward", &Value::str("W9"), "Unit")
            .is_empty());
    }

    #[test]
    fn transitive_roll_up_and_drill_down() {
        let dim = hospital_instance();
        assert_eq!(
            dim.roll_up("Ward", &Value::str("W1"), "Institution"),
            [Value::str("H1")].into()
        );
        assert_eq!(
            dim.roll_up("Ward", &Value::str("W4"), "Institution"),
            [Value::str("H2")].into()
        );
        assert_eq!(
            dim.drill_down("Institution", &Value::str("H1"), "Ward"),
            [Value::str("W1"), Value::str("W2"), Value::str("W3")].into()
        );
        // Same category: identity on members.
        assert_eq!(
            dim.roll_up("Unit", &Value::str("Standard"), "Unit"),
            [Value::str("Standard")].into()
        );
        assert!(dim
            .roll_up("Unit", &Value::str("Oncology"), "Unit")
            .is_empty());
    }

    #[test]
    fn hospital_instance_is_strict_and_homogeneous() {
        let dim = hospital_instance();
        assert!(dim.validate().is_ok());
        assert!(dim.strictness_violations().is_empty());
        assert!(dim.homogeneity_violations().is_empty());
    }

    #[test]
    fn strictness_violation_is_detected() {
        let mut dim = hospital_instance();
        // W1 now also rolls up to Intensive → two units for one ward.
        dim.add_rollup("Ward", "W1", "Unit", "Intensive").unwrap();
        let violations = dim.strictness_violations();
        assert!(!violations.is_empty());
        assert!(violations.iter().any(|v| matches!(
            v,
            MdError::StrictnessViolation { member, .. } if member == "W1"
        )));
    }

    #[test]
    fn homogeneity_violation_is_detected() {
        let mut dim = hospital_instance();
        // A new ward with no unit.
        dim.add_member("Ward", "W9").unwrap();
        let violations = dim.homogeneity_violations();
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            MdError::HomogeneityViolation { member, parent_category, .. }
                if member == "W9" && parent_category == "Unit"
        ));
    }

    #[test]
    fn add_member_and_rollup_validate_categories() {
        let mut dim = hospital_instance();
        assert!(matches!(
            dim.add_member("Wing", "X"),
            Err(MdError::UnknownCategory { .. })
        ));
        assert!(matches!(
            dim.add_rollup("Ward", "W1", "Institution", "H1"),
            Err(MdError::NotAdjacent { .. })
        ));
    }

    #[test]
    fn non_strict_dag_rollup_collects_all_ancestors() {
        let mut schema = DimensionSchema::new("Location");
        for c in ["City", "Province", "SalesRegion", "Country"] {
            schema.add_category(c);
        }
        schema.add_edge("City", "Province").unwrap();
        schema.add_edge("City", "SalesRegion").unwrap();
        schema.add_edge("Province", "Country").unwrap();
        schema.add_edge("SalesRegion", "Country").unwrap();
        let mut dim = DimensionInstance::new(schema);
        dim.add_rollup("City", "Ottawa", "Province", "Ontario")
            .unwrap();
        dim.add_rollup("City", "Ottawa", "SalesRegion", "East")
            .unwrap();
        dim.add_rollup("Province", "Ontario", "Country", "Canada")
            .unwrap();
        dim.add_rollup("SalesRegion", "East", "Country", "Canada")
            .unwrap();
        // Two paths, one ancestor: still strict at the Country level.
        assert_eq!(
            dim.roll_up("City", &Value::str("Ottawa"), "Country"),
            [Value::str("Canada")].into()
        );
        assert!(dim.strictness_violations().is_empty());
    }

    #[test]
    fn display_renders_members_and_edges() {
        let rendered = hospital_instance().to_string();
        assert!(rendered.contains("Ward: W1, W2, W3, W4"));
        assert!(rendered.contains("Ward:W1 -> Unit:Standard"));
    }
}
