//! Compilation of a multidimensional ontology into a Datalog± program plus an
//! extensional database — the paper's Section III representation.
//!
//! The compilation produces:
//!
//! * **category predicates** `K`: one unary relation per category, holding
//!   the category's members (`Ward(W1)`, `Unit(Standard)`, …),
//! * **parent–child predicates** `O`: one binary relation per adjacency edge,
//!   named in the paper's style (`UnitWard(Standard, W1)`,
//!   `MonthDay(September/2005, Sep/5)`, …) with the *parent first*,
//! * **categorical predicates** `R`: the categorical relations and their
//!   data,
//! * **referential constraints** of form (1): one negative constraint per
//!   categorical attribute, `⊥ ← R(…, e, …), ¬K(e)`,
//! * the ontology's **dimensional rules** (forms (4)/(10)), **EGDs**
//!   (form (2)) and **negative constraints** (form (3)) verbatim.
//!
//! The result is a [`CompiledOntology`]: a [`Program`] (rules and
//! constraints) plus a [`Database`] (the extensional data `D_M`).

use crate::ontology::MdOntology;
use ontodq_datalog::{Atom, Conjunction, NegativeConstraint, Program, Term};
use ontodq_relational::{Database, Tuple};

/// The result of compiling an [`MdOntology`].
#[derive(Debug, Clone)]
pub struct CompiledOntology {
    /// The Datalog± program: dimensional rules, EGDs, referential and
    /// dimensional negative constraints.
    pub program: Program,
    /// The extensional database: category members, parent–child pairs and
    /// categorical relation data.
    pub database: Database,
}

impl CompiledOntology {
    /// Convenience: the program's TGDs (the dimensional rules).
    pub fn tgds(&self) -> &[ontodq_datalog::Tgd] {
        &self.program.tgds
    }
}

/// Options controlling compilation.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Emit the form-(1) referential negative constraints (one per
    /// categorical attribute).  On by default.
    pub referential_constraints: bool,
    /// Build hash indexes on the parent–child predicates (both positions)
    /// and on the categorical relations' categorical positions, to speed up
    /// chase joins.  On by default.
    pub build_indexes: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self {
            referential_constraints: true,
            build_indexes: true,
        }
    }
}

/// Compile an ontology with default options.
pub fn compile(ontology: &MdOntology) -> CompiledOntology {
    compile_with(ontology, &CompileOptions::default())
}

/// Compile an ontology with explicit options.
pub fn compile_with(ontology: &MdOntology, options: &CompileOptions) -> CompiledOntology {
    let mut program = Program::new();
    let mut database = ontology.data().clone();

    // Category predicates K and parent–child predicates O.
    for dimension in ontology.dimensions().values() {
        for category in dimension.schema().categories() {
            let relation = database.relation_or_create(category, 1);
            for member in dimension.members_of(category) {
                relation.insert_unchecked(Tuple::new(vec![member]));
            }
        }
        for (child, parent) in dimension.schema().edges() {
            let predicate = MdOntology::parent_child_predicate(&parent, &child);
            let relation = database.relation_or_create(&predicate, 2);
            for (child_member, parent_member) in dimension.rollup_pairs(&child, &parent) {
                relation.insert_unchecked(Tuple::new(vec![parent_member, child_member]));
            }
            if options.build_indexes {
                let relation = database.relation_or_create(&predicate, 2);
                relation.build_index(0);
                relation.build_index(1);
            }
        }
    }

    // Referential constraints of form (1).
    if options.referential_constraints {
        for schema in ontology.relations().values() {
            let attribute_terms: Vec<Term> = schema
                .attributes()
                .iter()
                .map(|a| Term::var(format!("x_{}", a.name().to_lowercase())))
                .collect();
            for (position, _dimension, category) in schema.links() {
                let body =
                    Conjunction::positive(vec![Atom::new(schema.name(), attribute_terms.clone())])
                        .and_not(Atom::new(category, vec![attribute_terms[position].clone()]));
                program
                    .constraints
                    .push(NegativeConstraint::new(body).labeled(format!(
                        "ref:{}.{}",
                        schema.name(),
                        schema.attributes()[position].name()
                    )));
            }
        }
    }

    // Dimensional rules and constraints, verbatim.
    program.tgds.extend(ontology.rules().iter().cloned());
    program.egds.extend(ontology.egds().iter().cloned());
    program
        .constraints
        .extend(ontology.constraints().iter().cloned());

    // Indexes on categorical positions.
    if options.build_indexes {
        for schema in ontology.relations().values() {
            if let Ok(relation) = database.relation_mut(schema.name()) {
                for position in schema.categorical_positions() {
                    relation.build_index(position);
                }
            }
        }
    }

    CompiledOntology { program, database }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::categorical::{CategoricalAttribute, CategoricalRelationSchema};
    use crate::dimension_instance::DimensionInstance;
    use crate::dimension_schema::DimensionSchema;
    use ontodq_chase::chase;
    use ontodq_datalog::analysis;
    use ontodq_relational::Value;

    fn mini_ontology() -> MdOntology {
        let schema = DimensionSchema::chain("Hospital", ["Ward", "Unit", "Institution"]);
        let mut hospital = DimensionInstance::new(schema);
        hospital
            .add_rollup("Ward", "W1", "Unit", "Standard")
            .unwrap();
        hospital
            .add_rollup("Ward", "W2", "Unit", "Standard")
            .unwrap();
        hospital
            .add_rollup("Ward", "W3", "Unit", "Intensive")
            .unwrap();
        hospital
            .add_rollup("Unit", "Standard", "Institution", "H1")
            .unwrap();
        hospital
            .add_rollup("Unit", "Intensive", "Institution", "H1")
            .unwrap();

        let mut ontology = MdOntology::new("mini");
        ontology.add_dimension(hospital);
        ontology.add_relation(CategoricalRelationSchema::new(
            "PatientWard",
            vec![
                CategoricalAttribute::categorical("Ward", "Hospital", "Ward"),
                CategoricalAttribute::non_categorical("Day"),
                CategoricalAttribute::non_categorical("Patient"),
            ],
        ));
        ontology
            .add_tuple("PatientWard", ["W1", "Sep/5", "Tom Waits"])
            .unwrap();
        ontology
            .add_tuple("PatientWard", ["W3", "Sep/7", "Tom Waits"])
            .unwrap();
        ontology
            .add_rule_text("PatientUnit(u, d, p) :- PatientWard(w, d, p), UnitWard(u, w).")
            .unwrap();
        ontology
    }

    #[test]
    fn category_and_parent_child_predicates_are_materialized() {
        let compiled = compile(&mini_ontology());
        let db = &compiled.database;
        assert_eq!(db.relation("Ward").unwrap().len(), 3);
        assert_eq!(db.relation("Unit").unwrap().len(), 2);
        assert_eq!(db.relation("Institution").unwrap().len(), 1);
        // Parent first, child second — as in the paper's UnitWard(u, w).
        assert!(db.contains("UnitWard", &Tuple::from_iter(["Standard", "W1"])));
        assert!(db.contains("InstitutionUnit", &Tuple::from_iter(["H1", "Intensive"])));
        // Categorical data is carried over.
        assert_eq!(db.relation("PatientWard").unwrap().len(), 2);
    }

    #[test]
    fn referential_constraints_are_emitted_per_categorical_attribute() {
        let compiled = compile(&mini_ontology());
        // One categorical attribute (Ward) → one referential constraint, plus
        // none of the dimensional kind.
        assert_eq!(compiled.program.constraints.len(), 1);
        let nc = &compiled.program.constraints[0];
        assert_eq!(nc.label.as_deref(), Some("ref:PatientWard.Ward"));
        assert_eq!(nc.body.atoms.len(), 1);
        assert_eq!(nc.body.negated.len(), 1);
        assert_eq!(nc.body.negated[0].predicate, "Ward");
    }

    #[test]
    fn compilation_can_skip_referential_constraints_and_indexes() {
        let compiled = compile_with(
            &mini_ontology(),
            &CompileOptions {
                referential_constraints: false,
                build_indexes: false,
            },
        );
        assert!(compiled.program.constraints.is_empty());
        assert!(!compiled.database.relation("UnitWard").unwrap().has_index(0));
    }

    #[test]
    fn chasing_the_compiled_ontology_performs_upward_navigation() {
        let compiled = compile(&mini_ontology());
        let result = chase(&compiled.program, &compiled.database);
        assert!(result.violations.is_empty());
        let pu = result.database.relation("PatientUnit").unwrap();
        assert_eq!(pu.len(), 2);
        assert!(pu.contains(&Tuple::from_iter(["Standard", "Sep/5", "Tom Waits"])));
        assert!(pu.contains(&Tuple::from_iter(["Intensive", "Sep/7", "Tom Waits"])));
    }

    #[test]
    fn referential_constraint_fires_on_bad_data() {
        let mut ontology = mini_ontology();
        // Insert a tuple whose ward is not a member; bypass the MD-level
        // check by writing into the compiled database instead.
        let compiled = compile(&ontology);
        let mut db = compiled.database.clone();
        db.insert("PatientWard", Tuple::from_iter(["W9", "Sep/8", "Lou Reed"]))
            .unwrap();
        let result = chase(&compiled.program, &db);
        assert_eq!(result.violations.nc.len(), 1);
        // The MD-level referential check reports the same problem.
        ontology
            .add_tuple("PatientWard", ["W9", "Sep/8", "Lou Reed"])
            .unwrap();
        assert_eq!(ontology.referential_violations().len(), 1);
    }

    #[test]
    fn compiled_dimensional_rules_are_weakly_sticky_and_weakly_acyclic() {
        let compiled = compile(&mini_ontology());
        let report = analysis::classify(&compiled.program);
        assert!(report.weakly_sticky);
        assert!(report.weakly_acyclic);
    }

    #[test]
    fn category_members_become_unary_facts() {
        let compiled = compile(&mini_ontology());
        let ward = compiled.database.relation("Ward").unwrap();
        for w in ["W1", "W2", "W3"] {
            assert!(ward.contains(&Tuple::new(vec![Value::str(w)])));
        }
    }

    #[test]
    fn egds_and_dimensional_constraints_are_carried_over() {
        let mut ontology = mini_ontology();
        ontology
            .add_rule_text("! :- PatientWard(w, d, p), UnitWard(Intensive, w).")
            .unwrap();
        ontology
            .add_rule_text(
                "t = t2 :- Thermometer(w, t, n), Thermometer(w2, t2, n2), UnitWard(u, w), UnitWard(u, w2).",
            )
            .unwrap();
        let compiled = compile(&ontology);
        assert_eq!(compiled.program.egds.len(), 1);
        // 1 referential + 1 dimensional constraint.
        assert_eq!(compiled.program.constraints.len(), 2);
        assert_eq!(compiled.tgds().len(), 1);
    }
}
