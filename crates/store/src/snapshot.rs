//! Context snapshots: the durable image of one registered context.
//!
//! A snapshot file (`snap/<context>.snap`) captures everything a restart
//! needs to resume *incrementally* instead of re-chasing from scratch:
//!
//! * the instance under assessment `D` (all applied batches folded in),
//! * the chased contextual instance — the working database of the
//!   resumable [`ChaseState`], with every row's insert stamp and the
//!   database epoch, so the delta structure survives,
//! * the **per-rule epoch watermarks** (TGD and EGD floors) and the
//!   next-labeled-null counter of the [`ChaseState`],
//! * the per-context version (number of applied batches), which tells
//!   recovery which WAL records are already included (replay resumes at
//!   `seq > version`).
//!
//! Files use the same framing and local-dictionary codec as WAL segments
//! (magic `ODQSNP2\n`, symbol-definition records, then one snapshot
//! record), and are written to a temporary sibling, fsynced, and renamed
//! into place — a crash mid-save leaves the previous snapshot intact.
//! Format version 2 persists physical arena rows (stamp, liveness,
//! support count, tuple) so retraction bookkeeping survives restarts;
//! version-1 files are rejected as corrupt and recovery falls back to the
//! WAL as for any unreadable snapshot.

use crate::codec::{
    decode_database, decode_floors, encode_database, encode_floors, put_u32, put_u64, Cursor,
    DictReader, DictWriter,
};
use crate::error::{Result, StoreError};
use crate::io::{
    guarded_fsync, guarded_rename, guarded_sync_dir, guarded_write, IoOp, SharedIoPolicy,
};
use crate::wal::{frame, parse_frame, REC_SYMDEF};
use ontodq_chase::ChaseState;
use ontodq_relational::Database;
use std::fs::{self, File};
use std::io::Read;
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot file.
const SNAPSHOT_MAGIC: &[u8; 8] = b"ODQSNP2\n";

/// Record type: the snapshot body (exactly one per file, after its symbol
/// definitions).
const REC_SNAPSHOT: u8 = 3;

/// A borrowed view of one context's durable state — what
/// [`crate::Store::save_snapshot`] serializes.  Borrowing matters: the
/// server captures snapshots while holding **every** writer lock, so the
/// encode path must not force a deep clone of each instance and chase
/// state first.
#[derive(Debug, Clone, Copy)]
pub struct ContextImage<'a> {
    /// Context name (the registration key).
    pub name: &'a str,
    /// Number of update batches folded in; WAL replay resumes at
    /// `seq > version`.
    pub version: u64,
    /// Fingerprint of the compiled rule set the chase state's positional
    /// watermarks belong to (`ResumableAssessment::program_fingerprint` on
    /// the server side); restore refuses a state whose program changed.
    pub program_fingerprint: u64,
    /// The instance under assessment `D`.
    pub instance: &'a Database,
    /// The resumable chase state (chased contextual instance + watermarks +
    /// null counter).
    pub state: &'a ChaseState,
}

/// The owned counterpart of [`ContextImage`], as read back on recovery.
#[derive(Debug, Clone)]
pub struct PersistedContext {
    /// Context name (the registration key).
    pub name: String,
    /// Number of update batches folded in when the snapshot was taken.
    pub version: u64,
    /// Rule-set fingerprint captured at save time.
    pub program_fingerprint: u64,
    /// The instance under assessment `D`.
    pub instance: Database,
    /// The resumable chase state.
    pub state: ChaseState,
}

/// Write `snapshot` to `path` atomically (temp file + fsync + rename),
/// with every durability edge guarded by `policy`.
pub(crate) fn save_snapshot(
    path: &Path,
    snapshot: &ContextImage<'_>,
    policy: &SharedIoPolicy,
) -> Result<()> {
    let mut dict = DictWriter::new();
    let mut body = vec![REC_SNAPSHOT];
    put_u32(&mut body, dict.local_str(snapshot.name));
    put_u64(&mut body, snapshot.version);
    put_u64(&mut body, snapshot.program_fingerprint);
    encode_database(&mut body, &mut dict, snapshot.instance);
    encode_database(&mut body, &mut dict, snapshot.state.database());
    encode_floors(&mut body, snapshot.state.tgd_floors());
    encode_floors(&mut body, snapshot.state.egd_floors());
    put_u64(&mut body, snapshot.state.next_null());

    let mut bytes = SNAPSHOT_MAGIC.to_vec();
    for (local, text) in dict.drain_new() {
        let mut def = vec![REC_SYMDEF];
        put_u32(&mut def, local);
        put_u32(&mut def, text.len() as u32);
        def.extend_from_slice(text.as_bytes());
        frame(&mut bytes, &def)?;
    }
    frame(&mut bytes, &body)?;

    let tmp = path.with_extension("snap.tmp");
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut file = File::create(&tmp)?;
    guarded_write(policy, IoOp::SnapshotWrite, &mut file, &bytes)?;
    guarded_fsync(policy, IoOp::SnapshotFsync, &file)?;
    drop(file);
    // A failure up to and including the rename leaves the previous
    // snapshot untouched — the temp file is garbage a later save
    // overwrites — so snapshot faults never lose committed state, only
    // the checkpoint attempt.
    guarded_rename(policy, IoOp::SnapshotRename, &tmp, path)?;
    // Persist the rename itself: the WAL is compacted right after a
    // checkpoint on the strength of this snapshot, so the directory entry
    // must be durable before the segment unlinks can be.
    if let Some(parent) = path.parent() {
        guarded_sync_dir(policy, parent)?;
    }
    Ok(())
}

/// Load the snapshot at `path`.
pub(crate) fn load_snapshot(path: &Path) -> Result<PersistedContext> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < SNAPSHOT_MAGIC.len() || &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(StoreError::corrupt(path, "bad snapshot magic"));
    }
    let mut dict = DictReader::new();
    let mut offset = SNAPSHOT_MAGIC.len();
    loop {
        let remaining = &bytes[offset..];
        if remaining.is_empty() {
            return Err(StoreError::corrupt(path, "snapshot record missing"));
        }
        let framed = parse_frame(remaining)
            .ok_or_else(|| StoreError::corrupt(path, format!("invalid record at byte {offset}")))?;
        let mut cursor = Cursor::new(framed.payload, path);
        match cursor.take_u8()? {
            REC_SYMDEF => {
                let local = cursor.take_u32()?;
                let len = cursor.take_u32()? as usize;
                let text = cursor.take_str(len)?;
                dict.define(local, text, path)?;
            }
            REC_SNAPSHOT => {
                let name = dict.resolve(cursor.take_u32()?, path)?.as_str().to_string();
                let version = cursor.take_u64()?;
                let program_fingerprint = cursor.take_u64()?;
                let instance = decode_database(&mut cursor, &dict)?;
                let contextual = decode_database(&mut cursor, &dict)?;
                let tgd_floors = decode_floors(&mut cursor)?;
                let egd_floors = decode_floors(&mut cursor)?;
                let next_null = cursor.take_u64()?;
                if !cursor.is_empty() {
                    return Err(StoreError::corrupt(path, "trailing bytes after snapshot"));
                }
                return Ok(PersistedContext {
                    name,
                    version,
                    program_fingerprint,
                    instance,
                    state: ChaseState::from_parts(contextual, tgd_floors, egd_floors, next_null),
                });
            }
            other => {
                return Err(StoreError::corrupt(
                    path,
                    format!("unexpected record type {other} at byte {offset}"),
                ))
            }
        }
        offset += framed.total_len;
    }
}

/// The snapshot path of `context` inside the snapshot directory.
pub(crate) fn snapshot_path(dir: &Path, context: &str) -> PathBuf {
    // Context names come from the registration API and may contain
    // path-hostile characters; escape everything but a safe alphabet.
    // Fixed six hex digits per escape (code points reach U+10FFFF), so the
    // mapping is prefix-free and two distinct names can never collide.
    let mut name = String::with_capacity(context.len());
    for c in context.chars() {
        if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
            name.push(c);
        } else {
            name.push_str(&format!("%{:06x}", c as u32));
        }
    }
    dir.join(format!("{name}.snap"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_chase::chase_incremental;
    use ontodq_datalog::parse_program;
    use ontodq_relational::Tuple;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ontodq-snap-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshots_round_trip_chase_state_exactly() {
        let dir = temp_dir("roundtrip");
        let program =
            parse_program("Shifts(w, d, n, z) :- WorkingSchedules(u, d, n, t), UnitWard(u, w).\n")
                .unwrap();
        let mut db = Database::new();
        db.insert_values("UnitWard", ["Standard", "W1"]).unwrap();
        db.insert_values("WorkingSchedules", ["Standard", "Sep/5", "Anna", "cert"])
            .unwrap();
        let mut state = ChaseState::new(&program, &db);
        let _ = chase_incremental(&program, &mut state);
        state
            .insert_batch([(
                "WorkingSchedules".to_string(),
                Tuple::from_iter(["Standard", "Sep/6", "Mark", "cert"]),
            )])
            .unwrap();
        let _ = chase_incremental(&program, &mut state);

        let image = ContextImage {
            name: "unit/ward context",
            version: 5,
            program_fingerprint: 0xFEED_F00D,
            instance: &db,
            state: &state,
        };
        let path = snapshot_path(&dir, image.name);
        save_snapshot(&path, &image, &crate::io::passthrough_policy()).unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.name, image.name);
        assert_eq!(loaded.version, 5);
        assert_eq!(loaded.program_fingerprint, 0xFEED_F00D);
        assert_eq!(loaded.state.next_null(), state.next_null());
        assert_eq!(loaded.state.tgd_floors(), state.tgd_floors());
        assert_eq!(loaded.state.egd_floors(), state.egd_floors());
        assert_eq!(loaded.state.database().epoch(), state.database().epoch());
        for relation in state.database().relations() {
            let got = loaded.state.database().relation(relation.name()).unwrap();
            assert_eq!(got.tuples(), relation.tuples());
            assert_eq!(got.stamps(), relation.stamps());
        }
        // A resumed chase from the loaded state is a no-op, exactly like the
        // live one.
        let mut resumed = loaded.state;
        let result = chase_incremental(&program, &mut resumed);
        assert_eq!(result.stats.tuples_added, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_failed_save_leaves_the_previous_snapshot_intact() {
        let dir = temp_dir("atomic");
        let instance = Database::new();
        let state = ChaseState::from_parts(Database::new(), vec![], vec![], 0);
        let image = ContextImage {
            name: "ctx",
            version: 1,
            program_fingerprint: 0,
            instance: &instance,
            state: &state,
        };
        let path = snapshot_path(&dir, "ctx");
        save_snapshot(&path, &image, &crate::io::passthrough_policy()).unwrap();
        // Simulate a crash mid-save: a stale temp file must not shadow or
        // corrupt the committed snapshot.
        fs::write(path.with_extension("snap.tmp"), b"garbage").unwrap();
        let loaded = load_snapshot(&path).unwrap();
        assert_eq!(loaded.version, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshots_are_detected() {
        let dir = temp_dir("corrupt");
        let instance = Database::new();
        let state = ChaseState::from_parts(Database::new(), vec![None], vec![], 3);
        let image = ContextImage {
            name: "ctx",
            version: 1,
            program_fingerprint: 0,
            instance: &instance,
            state: &state,
        };
        let path = snapshot_path(&dir, "ctx");
        save_snapshot(&path, &image, &crate::io::passthrough_policy()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_snapshot(&path),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_paths_escape_hostile_names() {
        let dir = PathBuf::from("/data/snap");
        let path = snapshot_path(&dir, "../../etc/passwd");
        let name = path.file_name().unwrap().to_str().unwrap();
        assert!(!name.contains(".."));
        assert!(!name.contains('/'));
        assert!(path.starts_with(&dir));
        // Distinct names stay distinct after escaping — including the
        // supplementary-plane edge where a 5-hex-digit code point could
        // otherwise collide with a 4-digit one plus a literal digit.
        assert_ne!(snapshot_path(&dir, "a/b"), snapshot_path(&dir, "a%002fb"));
        assert_ne!(
            snapshot_path(&dir, "\u{10000}"),
            snapshot_path(&dir, "\u{1000}0")
        );
    }
}
