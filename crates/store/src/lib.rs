//! # ontodq-store
//!
//! Durable persistence for the `ontodq` quality-assessment service: a
//! write-ahead log of applied update batches, periodic snapshots of each
//! context's resumable chase state, crash recovery with torn-tail healing,
//! and log compaction.  `std`-only, like the rest of the workspace.
//!
//! Before this crate every byte of a running `ontodq-server` lived in
//! memory: a restart lost all registered contexts, applied batches and
//! chase watermarks and forced a from-scratch re-chase.  The store makes
//! restart an **incremental** operation:
//!
//! ```text
//! restart = load snapshot (instance + chased state + per-rule watermarks)
//!         + replay the WAL tail through the existing chase_incremental path
//! ```
//!
//! The pieces:
//!
//! * [`codec`] — an **interner-aware** binary codec.  Global
//!   [`ontodq_relational::Sym`] ids are process-local, so every file carries
//!   its own local symbol dictionary and data records reference strings by
//!   file-local id; replay re-interns each distinct string once per file.
//!   Databases serialize with their epoch and per-row insert stamps, so the
//!   delta structure the resumable chase depends on survives exactly.
//! * [`wal`] — an append-only, CRC32-checked, length-prefixed log of
//!   applied batches: one fsynced record group per `!flush`, segment
//!   rotation at a size threshold, and recovery that truncates a torn tail
//!   record and replays the committed prefix deterministically.
//! * [`snapshot`] — atomic per-context snapshots
//!   ([`PersistedContext`]): the instance under assessment, the chased
//!   contextual instance, and the [`ontodq_chase::ChaseState`] per-rule
//!   epoch watermarks and null counter.
//! * [`io`] — deterministic fault injection: an [`IoPolicy`] consulted at
//!   every durability edge (WAL writes/fsyncs/rotation, snapshot
//!   temp+rename), passthrough in production, a seeded [`FaultSchedule`]
//!   of injected errors, short writes and crash points under test.
//! * [`store`] — the [`Store`]: one data directory tying both together,
//!   with [`Store::recover`] returning each context's newest snapshot plus
//!   exactly the committed batches newer than it, and [`Store::compact`]
//!   deleting segments a fresh round of snapshots has superseded.
//!
//! See `docs/persistence.md` for the on-disk format specification and the
//! recovery algorithm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Durability code must degrade through typed errors, never panic on a
// fallible operation; tests are free to unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod codec;
pub mod error;
pub mod io;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use codec::crc32;
pub use error::{Result, StoreError};
pub use io::{
    passthrough_policy, FaultDecision, FaultSchedule, IoOp, IoPolicy, PassThrough, PlannedFault,
    SharedIoPolicy,
};
pub use snapshot::{ContextImage, PersistedContext};
pub use store::{Recovery, Store, StoreConfig, StoreMetrics};
pub use wal::{BatchKind, ReplayedBatch, Wal, WalConfig, WalStats};

#[cfg(test)]
mod send_sync_audit {
    use super::*;

    /// The server shares the store across session threads behind a mutex;
    /// everything must cross threads.
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn store_types_are_send_and_sync() {
        assert_send_sync::<Store>();
        assert_send_sync::<StoreConfig>();
        assert_send_sync::<PersistedContext>();
        assert_send_sync::<Recovery>();
        assert_send_sync::<WalStats>();
        assert_send_sync::<StoreError>();
    }
}
