//! Storage errors.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(io::Error),
    /// A record, segment or snapshot failed structural validation (bad
    /// magic, CRC mismatch in a non-tail position, truncated payload, an
    /// undefined dictionary id, …).  Carries the offending path and a
    /// human-readable reason.
    Corrupt {
        /// File the corruption was detected in.
        path: PathBuf,
        /// What was wrong.
        reason: String,
    },
    /// A decoded value violated the relational schema it was replayed into
    /// (should only happen when the log was produced by an incompatible
    /// schema version).
    Data(String),
    /// A fault-injection policy simulated process death mid-operation
    /// (see [`crate::io::FaultDecision::Crash`]).  The instance must be
    /// abandoned and recovery run on a fresh one; in particular the WAL
    /// skips its heal-and-retry path, leaving whatever torn bytes the
    /// "crash" left for recovery to truncate — exactly like a real power
    /// loss.
    SimulatedCrash(String),
}

impl StoreError {
    pub(crate) fn corrupt(path: impl Into<PathBuf>, reason: impl Into<String>) -> Self {
        StoreError::Corrupt {
            path: path.into(),
            reason: reason.into(),
        }
    }

    /// Whether retrying the failed operation could plausibly succeed.
    /// `Interrupted`/`WouldBlock`/`TimedOut` I/O errors are transient
    /// (injected transient faults use these kinds too); corruption,
    /// schema violations and simulated crashes are not.
    pub fn is_transient(&self) -> bool {
        match self {
            StoreError::Io(e) => matches!(
                e.kind(),
                std::io::ErrorKind::Interrupted
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }

    /// Whether this error is an injected process-death simulation.
    pub fn is_simulated_crash(&self) -> bool {
        matches!(self, StoreError::SimulatedCrash(_))
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Corrupt { path, reason } => {
                write!(f, "corrupt store file {}: {reason}", path.display())
            }
            StoreError::Data(msg) => write!(f, "data error: {msg}"),
            StoreError::SimulatedCrash(what) => {
                write!(f, "simulated crash during {what}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<ontodq_relational::RelationalError> for StoreError {
    fn from(e: ontodq_relational::RelationalError) -> Self {
        StoreError::Data(e.to_string())
    }
}

/// Store result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
