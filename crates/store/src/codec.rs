//! The interner-aware binary codec.
//!
//! Every persisted artifact (WAL segment, snapshot) is a sequence of framed
//! records over the same primitive encoding.  String data never appears
//! inline in data records: each file carries its own **local symbol
//! dictionary** — symbol-definition records mapping a file-local `u32` id to
//! the UTF-8 string — and data records reference strings by local id.  The
//! global [`Sym`] ids of the producing process are deliberately *not*
//! persisted: they are first-intern-order identities and mean nothing in
//! another process.  On replay each distinct string is re-interned into the
//! global table exactly once per file (when its definition record is read),
//! and all decoded values carry the *new* process's symbols.
//!
//! Primitives are little-endian fixed width.  A [`Value`] is one tag byte
//! plus its payload:
//!
//! | tag | variant | payload |
//! |---|---|---|
//! | 0 | `Str` | `u32` local symbol id |
//! | 1 | `Int` | `i64` |
//! | 2 | `Double` | `u64` IEEE-754 bits |
//! | 3 | `Bool` | `u8` |
//! | 4 | `Time` | `i64` minutes |
//! | 5 | `Null` | `u64` labeled-null id |
//!
//! Labeled-null ids are stable process-local integers and are persisted
//! verbatim (snapshots also persist the next-null counter, so recovery can
//! never re-mint a persisted id).
//!
//! A database is serialized with its epoch, and every row with its insert
//! stamp, so the delta structure the resumable chase depends on survives the
//! round trip bit-for-bit.

use crate::error::{Result, StoreError};
use ontodq_relational::{
    Attribute, AttributeType, Database, NullId, RelationInstance, RelationSchema, Sym, Tuple, Value,
};
use std::collections::HashMap;
use std::path::Path;

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3 polynomial, reflected) — std has no checksum, so the
// classic 256-entry table is generated at compile time.
// ---------------------------------------------------------------------------

const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Primitive writers.
// ---------------------------------------------------------------------------

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

pub(crate) fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

// ---------------------------------------------------------------------------
// The cursor: a bounds-checked reader over one record payload.
// ---------------------------------------------------------------------------

/// A bounds-checked reader over a decoded record payload.  All take-methods
/// fail (rather than panic) on truncated input, so a torn or corrupt record
/// surfaces as a [`StoreError::Corrupt`] with the file it came from.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8], path: &'a Path) -> Self {
        Self { buf, pos: 0, path }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn corrupt(&self, reason: impl Into<String>) -> StoreError {
        StoreError::corrupt(self.path, reason)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or_else(|| self.corrupt(format!("record truncated at byte {}", self.pos)))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn take_u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn take_i64(&mut self) -> Result<i64> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn take_str(&mut self, len: usize) -> Result<&'a str> {
        std::str::from_utf8(self.take(len)?)
            .map_err(|_| self.corrupt("symbol definition is not valid UTF-8"))
    }
}

// ---------------------------------------------------------------------------
// Local symbol dictionaries.
// ---------------------------------------------------------------------------

/// The encode side of a file-local symbol dictionary: assigns dense local
/// ids to the distinct strings a file references, collecting newly assigned
/// entries so the caller can emit their symbol-definition records *before*
/// the data record that references them.
#[derive(Debug, Default)]
pub(crate) struct DictWriter {
    /// Global symbol id → local id (globals are process-unique, so they key
    /// the map; their numeric value is never written out).
    locals: HashMap<u32, u32>,
    /// Entries assigned since the last [`DictWriter::drain_new`], in
    /// assignment order.
    fresh: Vec<(u32, &'static str)>,
}

impl DictWriter {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// The local id of `sym`, assigning the next dense id on first sight.
    pub(crate) fn local(&mut self, sym: Sym) -> u32 {
        let next = self.locals.len() as u32;
        *self.locals.entry(sym.id()).or_insert_with(|| {
            self.fresh.push((next, sym.as_str()));
            next
        })
    }

    /// The local id of an arbitrary string (interned first — idempotent for
    /// strings the process already knows, which is every string reachable
    /// from live data).
    pub(crate) fn local_str(&mut self, text: &str) -> u32 {
        self.local(Sym::new(text))
    }

    /// Dictionary entries assigned since the previous drain, in assignment
    /// order — the symbol-definition records owed before the next data
    /// record.
    pub(crate) fn drain_new(&mut self) -> Vec<(u32, &'static str)> {
        std::mem::take(&mut self.fresh)
    }
}

/// The decode side: file-local id → re-interned global symbol.  Each
/// distinct string costs one intern per file, after which every reference is
/// a dense-array lookup.
#[derive(Debug, Default)]
pub(crate) struct DictReader {
    symbols: Vec<Sym>,
}

impl DictReader {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Define the next local id.  Definitions must arrive densely in id
    /// order (the writer assigns them that way).
    pub(crate) fn define(&mut self, local: u32, text: &str, path: &Path) -> Result<()> {
        if local as usize != self.symbols.len() {
            return Err(StoreError::corrupt(
                path,
                format!(
                    "symbol definition out of order: got id {local}, expected {}",
                    self.symbols.len()
                ),
            ));
        }
        self.symbols.push(Sym::new(text));
        Ok(())
    }

    pub(crate) fn resolve(&self, local: u32, path: &Path) -> Result<Sym> {
        self.symbols
            .get(local as usize)
            .copied()
            .ok_or_else(|| StoreError::corrupt(path, format!("undefined symbol id {local}")))
    }
}

// ---------------------------------------------------------------------------
// Values and tuples.
// ---------------------------------------------------------------------------

const TAG_STR: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_DOUBLE: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_TIME: u8 = 4;
const TAG_NULL: u8 = 5;

pub(crate) fn encode_value(buf: &mut Vec<u8>, dict: &mut DictWriter, value: &Value) {
    match value {
        Value::Str(sym) => {
            put_u8(buf, TAG_STR);
            put_u32(buf, dict.local(*sym));
        }
        Value::Int(i) => {
            put_u8(buf, TAG_INT);
            put_i64(buf, *i);
        }
        Value::Double(d) => {
            put_u8(buf, TAG_DOUBLE);
            put_u64(buf, d.to_bits());
        }
        Value::Bool(b) => {
            put_u8(buf, TAG_BOOL);
            put_u8(buf, *b as u8);
        }
        Value::Time(t) => {
            put_u8(buf, TAG_TIME);
            put_i64(buf, *t);
        }
        Value::Null(id) => {
            put_u8(buf, TAG_NULL);
            put_u64(buf, id.id());
        }
    }
}

pub(crate) fn decode_value(cursor: &mut Cursor<'_>, dict: &DictReader) -> Result<Value> {
    let tag = cursor.take_u8()?;
    Ok(match tag {
        TAG_STR => Value::Str(dict.resolve(cursor.take_u32()?, cursor.path)?),
        TAG_INT => Value::Int(cursor.take_i64()?),
        TAG_DOUBLE => Value::Double(f64::from_bits(cursor.take_u64()?)),
        TAG_BOOL => Value::Bool(cursor.take_u8()? != 0),
        TAG_TIME => Value::Time(cursor.take_i64()?),
        TAG_NULL => Value::Null(NullId(cursor.take_u64()?)),
        other => return Err(cursor.corrupt(format!("unknown value tag {other}"))),
    })
}

pub(crate) fn encode_tuple(buf: &mut Vec<u8>, dict: &mut DictWriter, tuple: &Tuple) {
    put_u16(buf, tuple.arity() as u16);
    for value in tuple.values() {
        encode_value(buf, dict, value);
    }
}

pub(crate) fn decode_tuple(cursor: &mut Cursor<'_>, dict: &DictReader) -> Result<Tuple> {
    let arity = cursor.take_u16()? as usize;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(decode_value(cursor, dict)?);
    }
    Ok(Tuple::new(values))
}

// ---------------------------------------------------------------------------
// Schemas and databases.
// ---------------------------------------------------------------------------

fn type_tag(ty: AttributeType) -> u8 {
    match ty {
        AttributeType::String => 0,
        AttributeType::Integer => 1,
        AttributeType::Double => 2,
        AttributeType::Boolean => 3,
        AttributeType::Time => 4,
        AttributeType::Any => 5,
    }
}

fn type_from_tag(tag: u8, cursor: &Cursor<'_>) -> Result<AttributeType> {
    Ok(match tag {
        0 => AttributeType::String,
        1 => AttributeType::Integer,
        2 => AttributeType::Double,
        3 => AttributeType::Boolean,
        4 => AttributeType::Time,
        5 => AttributeType::Any,
        other => return Err(cursor.corrupt(format!("unknown attribute type tag {other}"))),
    })
}

fn encode_schema(buf: &mut Vec<u8>, dict: &mut DictWriter, schema: &RelationSchema) {
    put_u32(buf, dict.local_str(schema.name()));
    put_u16(buf, schema.arity() as u16);
    for attribute in schema.attributes() {
        put_u32(buf, dict.local_str(&attribute.name));
        put_u8(buf, type_tag(attribute.ty));
    }
}

fn decode_schema(cursor: &mut Cursor<'_>, dict: &DictReader) -> Result<RelationSchema> {
    let name = dict.resolve(cursor.take_u32()?, cursor.path)?;
    let arity = cursor.take_u16()? as usize;
    let mut attributes = Vec::with_capacity(arity);
    for _ in 0..arity {
        let attr_name = dict.resolve(cursor.take_u32()?, cursor.path)?;
        let tag = cursor.take_u8()?;
        attributes.push(Attribute::new(
            attr_name.as_str(),
            type_from_tag(tag, cursor)?,
        ));
    }
    Ok(RelationSchema::new(name.as_str(), attributes))
}

/// Serialize a whole database: epoch, then every relation with its schema
/// and **physical** rows — stamp, liveness byte, support count, tuple — in
/// arena order (stamps stay sorted on replay).  Tombstoned rows are
/// persisted too, so the delta structure *and* the retraction bookkeeping
/// survive the round trip bit-for-bit.
pub(crate) fn encode_database(buf: &mut Vec<u8>, dict: &mut DictWriter, db: &Database) {
    put_u64(buf, db.epoch());
    put_u32(buf, db.relation_count() as u32);
    for relation in db.relations() {
        encode_schema(buf, dict, relation.schema());
        put_u32(buf, relation.total_rows() as u32);
        let stamps = relation.stamps();
        for row in 0..relation.total_rows() as u32 {
            put_u64(buf, stamps[row as usize]);
            put_u8(buf, relation.is_live(row) as u8);
            put_u32(buf, relation.support_of(row));
            encode_tuple(buf, dict, &relation.row_tuple(row));
        }
    }
}

/// The inverse of [`encode_database`]: rows are replayed with their original
/// stamps, liveness and support counts, and the serialized epoch is restored
/// exactly (it may sit above every stamp).
pub(crate) fn decode_database(cursor: &mut Cursor<'_>, dict: &DictReader) -> Result<Database> {
    let epoch = cursor.take_u64()?;
    let relation_count = cursor.take_u32()? as usize;
    let mut db = Database::new();
    for _ in 0..relation_count {
        let schema = decode_schema(cursor, dict)?;
        let rows = cursor.take_u32()? as usize;
        let name = schema.name().to_string();
        let mut relation = RelationInstance::new(schema);
        for row in 0..rows {
            let stamp = cursor.take_u64()?;
            let live = match cursor.take_u8()? {
                0 => false,
                1 => true,
                other => {
                    return Err(cursor.corrupt(format!("unknown liveness byte {other}")));
                }
            };
            let support = cursor.take_u32()?;
            let tuple = decode_tuple(cursor, dict)?;
            // Physical rows are pairwise distinct among the *live* subset,
            // and a dead row is tombstoned immediately after its append —
            // which drops it from the dedup map — so every append lands in
            // a fresh slot and the arena layout is reproduced exactly.
            if !relation.insert_stamped(tuple, stamp)? {
                return Err(
                    cursor.corrupt(format!("duplicate physical row {row} in relation '{name}'"))
                );
            }
            let row = row as u32;
            if !live {
                relation.delete_row(row);
            } else if support != 1 {
                relation.set_support(row, support);
            }
        }
        db.insert_relation(relation);
    }
    db.raise_epoch(epoch);
    Ok(db)
}

/// Serialize a watermark vector (`None` = never evaluated).
pub(crate) fn encode_floors(buf: &mut Vec<u8>, floors: &[Option<u64>]) {
    put_u32(buf, floors.len() as u32);
    for floor in floors {
        match floor {
            Some(epoch) => {
                put_u8(buf, 1);
                put_u64(buf, *epoch);
            }
            None => put_u8(buf, 0),
        }
    }
}

pub(crate) fn decode_floors(cursor: &mut Cursor<'_>) -> Result<Vec<Option<u64>>> {
    let len = cursor.take_u32()? as usize;
    let mut floors = Vec::with_capacity(len);
    for _ in 0..len {
        floors.push(match cursor.take_u8()? {
            0 => None,
            1 => Some(cursor.take_u64()?),
            other => return Err(cursor.corrupt(format!("unknown floor tag {other}"))),
        });
    }
    Ok(floors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn round_trip_db(db: &Database) -> Database {
        let path = PathBuf::from("test.bin");
        let mut dict = DictWriter::new();
        let mut buf = Vec::new();
        encode_database(&mut buf, &mut dict, db);
        let mut reader = DictReader::new();
        for (local, text) in dict.drain_new() {
            reader.define(local, text, &path).unwrap();
        }
        let mut cursor = Cursor::new(&buf, &path);
        let decoded = decode_database(&mut cursor, &reader).unwrap();
        assert!(cursor.is_empty());
        decoded
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn values_round_trip_through_the_dictionary() {
        let path = PathBuf::from("test.bin");
        let values = vec![
            Value::str("Tom Waits"),
            Value::str("Tom Waits"), // repeated: one dictionary entry
            Value::int(-42),
            Value::double(38.2),
            Value::bool(true),
            Value::parse_time("Sep/5-12:10").unwrap(),
            Value::null(NullId(7)),
        ];
        let mut dict = DictWriter::new();
        let mut buf = Vec::new();
        for v in &values {
            encode_value(&mut buf, &mut dict, v);
        }
        let defs = dict.drain_new();
        assert_eq!(defs.len(), 1, "repeated strings share one entry");
        let mut reader = DictReader::new();
        for (local, text) in defs {
            reader.define(local, text, &path).unwrap();
        }
        let mut cursor = Cursor::new(&buf, &path);
        for v in &values {
            assert_eq!(&decode_value(&mut cursor, &reader).unwrap(), v);
        }
        assert!(cursor.is_empty());
    }

    #[test]
    fn databases_round_trip_with_stamps_and_epoch() {
        let mut db = Database::new();
        db.insert_values("PatientWard", ["W1", "Sep/5", "Tom Waits"])
            .unwrap();
        db.advance_epoch();
        db.insert_values("PatientWard", ["W2", "Sep/6", "Lou Reed"])
            .unwrap();
        db.insert(
            "Shifts",
            Tuple::new(vec![Value::str("W1"), Value::null(NullId(3))]),
        )
        .unwrap();
        db.advance_epoch(); // epoch strictly above every stamp
        let decoded = round_trip_db(&db);
        assert_eq!(decoded.epoch(), db.epoch());
        assert_eq!(decoded.relation_names(), db.relation_names());
        for relation in db.relations() {
            let got = decoded.relation(relation.name()).unwrap();
            assert_eq!(got.tuples(), relation.tuples());
            assert_eq!(got.stamps(), relation.stamps());
            assert_eq!(got.schema(), relation.schema());
        }
    }

    #[test]
    fn databases_round_trip_tombstones_and_support_counts() {
        let mut db = Database::new();
        db.insert_values("E", ["a", "b"]).unwrap();
        db.advance_epoch();
        db.insert_values("E", ["b", "c"]).unwrap();
        db.insert_values("E", ["c", "d"]).unwrap();
        db.advance_epoch();
        // Tombstone one row, bump another's support, and delete-then-reinsert
        // a third so the arena holds a dead row before a live duplicate.
        let e = db.relation_mut("E").unwrap();
        e.delete(&Tuple::from_iter(["b", "c"]));
        e.set_support(0, 3);
        e.delete(&Tuple::from_iter(["c", "d"]));
        e.insert(Tuple::from_iter(["c", "d"])).unwrap();
        assert_eq!(e.total_rows(), 4);
        assert_eq!(e.dead_rows(), 2);

        let decoded = round_trip_db(&db);
        assert_eq!(decoded.epoch(), db.epoch());
        let got = decoded.relation("E").unwrap();
        let want = db.relation("E").unwrap();
        assert_eq!(got.total_rows(), want.total_rows());
        assert_eq!(got.dead_rows(), want.dead_rows());
        assert_eq!(got.stamps(), want.stamps());
        for row in 0..want.total_rows() as u32 {
            assert_eq!(got.is_live(row), want.is_live(row), "row {row}");
            assert_eq!(got.support_of(row), want.support_of(row), "row {row}");
            assert_eq!(got.row_tuple(row), want.row_tuple(row), "row {row}");
        }
        assert_eq!(got.tuples(), want.tuples());
    }

    #[test]
    fn truncated_payloads_are_corruption_not_panics() {
        let path = PathBuf::from("test.bin");
        let mut dict = DictWriter::new();
        let mut buf = Vec::new();
        encode_tuple(&mut buf, &mut dict, &Tuple::from_iter(["a", "b"]));
        let mut reader = DictReader::new();
        for (local, text) in dict.drain_new() {
            reader.define(local, text, &path).unwrap();
        }
        for cut in 0..buf.len() {
            let mut cursor = Cursor::new(&buf[..cut], &path);
            assert!(decode_tuple(&mut cursor, &reader).is_err());
        }
        // Undefined symbol ids are corruption too.
        let empty = DictReader::new();
        let mut cursor = Cursor::new(&buf, &path);
        assert!(decode_tuple(&mut cursor, &empty).is_err());
    }

    #[test]
    fn floors_round_trip() {
        let path = PathBuf::from("test.bin");
        let floors = vec![None, Some(0), Some(17), None];
        let mut buf = Vec::new();
        encode_floors(&mut buf, &floors);
        let mut cursor = Cursor::new(&buf, &path);
        assert_eq!(decode_floors(&mut cursor).unwrap(), floors);
        assert!(cursor.is_empty());
    }
}
