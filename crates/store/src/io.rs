//! Deterministic fault injection for the durability layer.
//!
//! Every I/O edge the store's crash-safety argument depends on — WAL
//! segment creation, record-group writes, fsyncs, seals, heal
//! truncations, snapshot writes/fsyncs/renames, directory syncs — funnels
//! through an [`IoPolicy`].  Production uses the zero-cost
//! [`PassThrough`] policy (one uncontended mutex lock per operation,
//! noise next to the fsync it guards); tests install a seeded
//! [`FaultSchedule`] that injects `io::Error`s, short writes, and
//! crash-at-byte-N at chosen occurrences of chosen operations, making
//! every durability edge reachable in-process and deterministically.
//!
//! The fault vocabulary mirrors what real disks and kernels do:
//!
//! * **Fail** — the syscall returns an error; nothing was written.  A
//!   *transient* failure (`Interrupted`/`WouldBlock`/`TimedOut`) may be
//!   retried by the WAL's heal-and-retry path; anything else is
//!   permanent and poisons the log.
//! * **Short write** — only a prefix of the buffer reaches the file
//!   before the error: the torn-record shape recovery must truncate.
//! * **Crash** — a prefix reaches the file and the process is assumed
//!   dead: the error is marked as a simulated crash, the WAL skips its
//!   heal path (a dead process heals nothing), and every further guarded
//!   operation fails until the harness discards the instance and runs
//!   recovery, exactly like a restart after power loss.

use crate::error::{Result, StoreError};
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// One guarded I/O operation, identifying *where* in the durability path
/// a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum IoOp {
    /// Creating and initializing a fresh WAL segment (magic + fsync).
    WalSegmentCreate,
    /// Writing one record group (symbol defs + batch) to the active segment.
    WalWrite,
    /// Fsyncing the record group just written.
    WalFsync,
    /// The final fsync when a segment is sealed at the rotation threshold.
    WalSeal,
    /// Truncating a torn segment back to its last known-good boundary
    /// (the WAL's self-heal path after a failed append).
    WalTruncate,
    /// Writing the snapshot temp file.
    SnapshotWrite,
    /// Fsyncing the snapshot temp file.
    SnapshotFsync,
    /// Renaming the snapshot temp file into place.
    SnapshotRename,
    /// Fsyncing a directory (making creates/renames/unlinks durable).
    DirSync,
}

impl IoOp {
    /// Every guarded operation, for schedule generators that pick one.
    pub const ALL: [IoOp; 9] = [
        IoOp::WalSegmentCreate,
        IoOp::WalWrite,
        IoOp::WalFsync,
        IoOp::WalSeal,
        IoOp::WalTruncate,
        IoOp::SnapshotWrite,
        IoOp::SnapshotFsync,
        IoOp::SnapshotRename,
        IoOp::DirSync,
    ];

    fn index(self) -> usize {
        match self {
            IoOp::WalSegmentCreate => 0,
            IoOp::WalWrite => 1,
            IoOp::WalFsync => 2,
            IoOp::WalSeal => 3,
            IoOp::WalTruncate => 4,
            IoOp::SnapshotWrite => 5,
            IoOp::SnapshotFsync => 6,
            IoOp::SnapshotRename => 7,
            IoOp::DirSync => 8,
        }
    }
}

impl fmt::Display for IoOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            IoOp::WalSegmentCreate => "wal-segment-create",
            IoOp::WalWrite => "wal-write",
            IoOp::WalFsync => "wal-fsync",
            IoOp::WalSeal => "wal-seal",
            IoOp::WalTruncate => "wal-truncate",
            IoOp::SnapshotWrite => "snapshot-write",
            IoOp::SnapshotFsync => "snapshot-fsync",
            IoOp::SnapshotRename => "snapshot-rename",
            IoOp::DirSync => "dir-sync",
        };
        f.write_str(name)
    }
}

/// What a policy tells a guarded operation to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Perform the real operation.
    Pass,
    /// Return an error of this kind without touching the file.  Transience
    /// is encoded in the kind: `Interrupted`, `WouldBlock` and `TimedOut`
    /// are retryable (see [`StoreError::is_transient`]); everything else
    /// is permanent.
    Fail(io::ErrorKind),
    /// Write only the first `keep` bytes of the buffer, then fail
    /// permanently — a torn write the process observes.  On non-write
    /// operations this degenerates to a permanent [`FaultDecision::Fail`].
    ShortWrite {
        /// Bytes of the buffer that reach the file before the error.
        keep: usize,
    },
    /// Write the first `keep` bytes, then simulate process death: the
    /// returned error satisfies [`StoreError::is_simulated_crash`] and the
    /// policy refuses all further operations until the harness runs
    /// recovery on a fresh instance.
    Crash {
        /// Bytes of the buffer that reach the file before the "crash".
        keep: usize,
    },
}

/// A fault-injection policy consulted before every guarded I/O operation.
///
/// `decide` receives the operation and the buffer length (0 for
/// fsync/rename/truncate) and returns what to do.  Implementations are
/// behind a mutex shared between the store and the test harness, so they
/// may keep mutable schedule state.
pub trait IoPolicy: Send {
    /// Decide the fate of one guarded operation.
    fn decide(&mut self, op: IoOp, len: usize) -> FaultDecision;
}

/// The production policy: every operation passes through untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct PassThrough;

impl IoPolicy for PassThrough {
    fn decide(&mut self, _op: IoOp, _len: usize) -> FaultDecision {
        FaultDecision::Pass
    }
}

/// A policy handle shareable between a [`crate::Store`] (and its WAL and
/// snapshot writer) and the harness that scripted it.
pub type SharedIoPolicy = Arc<Mutex<dyn IoPolicy>>;

/// A fresh passthrough policy handle (the default for
/// [`crate::Store::open`]).
pub fn passthrough_policy() -> SharedIoPolicy {
    Arc::new(Mutex::new(PassThrough))
}

/// One planned fault: on the `nth` (0-based) occurrence of `op`, inject
/// `decision` instead of performing the operation.
#[derive(Debug, Clone, Copy)]
pub struct PlannedFault {
    /// Which guarded operation to hit.
    pub op: IoOp,
    /// Which occurrence of that operation (0-based) to hit.
    pub nth: u64,
    /// What to inject when it fires.
    pub decision: FaultDecision,
}

/// A deterministic fault schedule: counts occurrences of each guarded
/// operation and fires each [`PlannedFault`] exactly once when its
/// occurrence comes up.  After a [`FaultDecision::Crash`] fires, every
/// subsequent operation fails (the process is "dead") until the harness
/// abandons the instance.
///
/// Tests keep an `Arc<Mutex<FaultSchedule>>` and hand a coerced clone to
/// [`crate::Store::open_with_policy`], so they can inspect
/// [`FaultSchedule::injected`] and occurrence counts afterwards.
#[derive(Debug, Default)]
pub struct FaultSchedule {
    plan: Vec<(PlannedFault, bool)>,
    seen: [u64; IoOp::ALL.len()],
    injected: u64,
    crashed: bool,
}

impl FaultSchedule {
    /// An empty schedule (injects nothing until faults are added).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one planned fault.
    pub fn push(&mut self, fault: PlannedFault) -> &mut Self {
        self.plan.push((fault, false));
        self
    }

    /// Fail the `nth` occurrence of `op` permanently (kind `Other`).
    pub fn fail_nth(&mut self, op: IoOp, nth: u64) -> &mut Self {
        self.push(PlannedFault {
            op,
            nth,
            decision: FaultDecision::Fail(io::ErrorKind::Other),
        })
    }

    /// Fail the `nth` occurrence of `op` transiently (kind `Interrupted`,
    /// retryable by the WAL's heal path).
    pub fn transient_nth(&mut self, op: IoOp, nth: u64) -> &mut Self {
        self.push(PlannedFault {
            op,
            nth,
            decision: FaultDecision::Fail(io::ErrorKind::Interrupted),
        })
    }

    /// Short-write the `nth` occurrence of `op`, keeping `keep` bytes.
    pub fn short_write_nth(&mut self, op: IoOp, nth: u64, keep: usize) -> &mut Self {
        self.push(PlannedFault {
            op,
            nth,
            decision: FaultDecision::ShortWrite { keep },
        })
    }

    /// Crash at the `nth` occurrence of `op` after `keep` bytes.
    pub fn crash_nth(&mut self, op: IoOp, nth: u64, keep: usize) -> &mut Self {
        self.push(PlannedFault {
            op,
            nth,
            decision: FaultDecision::Crash { keep },
        })
    }

    /// How many faults have fired so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Whether a crash fault has fired (the instance must be abandoned).
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// How many occurrences of `op` the store has attempted.
    pub fn observed(&self, op: IoOp) -> u64 {
        self.seen[op.index()]
    }

    /// Drop every not-yet-fired fault and clear the crashed flag — the
    /// harness's "replace the disk and restart" step between runs.
    pub fn clear(&mut self) {
        self.plan.clear();
        self.crashed = false;
    }
}

impl IoPolicy for FaultSchedule {
    fn decide(&mut self, op: IoOp, _len: usize) -> FaultDecision {
        if self.crashed {
            // The simulated process is dead: freeze the on-disk state by
            // refusing every further guarded operation.
            return FaultDecision::Fail(io::ErrorKind::Other);
        }
        let occurrence = self.seen[op.index()];
        self.seen[op.index()] += 1;
        for (fault, fired) in &mut self.plan {
            if !*fired && fault.op == op && fault.nth == occurrence {
                *fired = true;
                self.injected += 1;
                if let FaultDecision::Crash { .. } = fault.decision {
                    self.crashed = true;
                }
                return fault.decision;
            }
        }
        FaultDecision::Pass
    }
}

fn decide(policy: &SharedIoPolicy, op: IoOp, len: usize) -> FaultDecision {
    // A policy poisoned by a panicking test impl still holds valid state
    // (decide mutates counters only); recover it rather than panicking in
    // the durability path.
    match policy.lock() {
        Ok(mut guard) => guard.decide(op, len),
        Err(poisoned) => poisoned.into_inner().decide(op, len),
    }
}

fn injected_error(op: IoOp, kind: io::ErrorKind) -> StoreError {
    StoreError::Io(io::Error::new(kind, format!("injected {op} fault")))
}

/// `write_all` guarded by the policy.
pub(crate) fn guarded_write(
    policy: &SharedIoPolicy,
    op: IoOp,
    file: &mut File,
    bytes: &[u8],
) -> Result<()> {
    match decide(policy, op, bytes.len()) {
        FaultDecision::Pass => {
            file.write_all(bytes)?;
            Ok(())
        }
        FaultDecision::Fail(kind) => Err(injected_error(op, kind)),
        FaultDecision::ShortWrite { keep } => {
            let keep = keep.min(bytes.len());
            file.write_all(&bytes[..keep])?;
            Err(StoreError::Io(io::Error::new(
                io::ErrorKind::WriteZero,
                format!(
                    "injected short write at {op}: {keep} of {} bytes",
                    bytes.len()
                ),
            )))
        }
        FaultDecision::Crash { keep } => {
            let keep = keep.min(bytes.len());
            let _ = file.write_all(&bytes[..keep]);
            Err(StoreError::SimulatedCrash(format!(
                "{op} after {keep} of {} bytes",
                bytes.len()
            )))
        }
    }
}

/// `sync_data` guarded by the policy.
pub(crate) fn guarded_fsync(policy: &SharedIoPolicy, op: IoOp, file: &File) -> Result<()> {
    match decide(policy, op, 0) {
        FaultDecision::Pass => {
            file.sync_data()?;
            Ok(())
        }
        FaultDecision::Fail(kind) => Err(injected_error(op, kind)),
        FaultDecision::ShortWrite { .. } => Err(injected_error(op, io::ErrorKind::Other)),
        FaultDecision::Crash { .. } => {
            // The bytes already written stay in the (simulated) page
            // cache; whether they survive is recovery's problem.
            Err(StoreError::SimulatedCrash(format!("{op}")))
        }
    }
}

/// `set_len` guarded by the policy (the WAL heal path).
pub(crate) fn guarded_truncate(
    policy: &SharedIoPolicy,
    op: IoOp,
    file: &File,
    len: u64,
) -> Result<()> {
    match decide(policy, op, 0) {
        FaultDecision::Pass => {
            file.set_len(len)?;
            Ok(())
        }
        FaultDecision::Fail(kind) => Err(injected_error(op, kind)),
        FaultDecision::ShortWrite { .. } => Err(injected_error(op, io::ErrorKind::Other)),
        FaultDecision::Crash { .. } => Err(StoreError::SimulatedCrash(format!("{op}"))),
    }
}

/// `fs::rename` guarded by the policy.
pub(crate) fn guarded_rename(
    policy: &SharedIoPolicy,
    op: IoOp,
    from: &Path,
    to: &Path,
) -> Result<()> {
    match decide(policy, op, 0) {
        FaultDecision::Pass => {
            fs::rename(from, to)?;
            Ok(())
        }
        FaultDecision::Fail(kind) => Err(injected_error(op, kind)),
        FaultDecision::ShortWrite { .. } => Err(injected_error(op, io::ErrorKind::Other)),
        FaultDecision::Crash { .. } => Err(StoreError::SimulatedCrash(format!("{op}"))),
    }
}

/// Directory fsync guarded by the policy.
pub(crate) fn guarded_sync_dir(policy: &SharedIoPolicy, dir: &Path) -> Result<()> {
    match decide(policy, IoOp::DirSync, 0) {
        FaultDecision::Pass => {
            File::open(dir)?.sync_all()?;
            Ok(())
        }
        FaultDecision::Fail(kind) => Err(injected_error(IoOp::DirSync, kind)),
        FaultDecision::ShortWrite { .. } => {
            Err(injected_error(IoOp::DirSync, io::ErrorKind::Other))
        }
        FaultDecision::Crash { .. } => {
            Err(StoreError::SimulatedCrash(format!("{}", IoOp::DirSync)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_always_passes() {
        let mut p = PassThrough;
        for op in IoOp::ALL {
            assert_eq!(p.decide(op, 123), FaultDecision::Pass);
        }
    }

    #[test]
    fn schedules_fire_on_the_exact_occurrence_and_only_once() {
        let mut s = FaultSchedule::new();
        s.fail_nth(IoOp::WalFsync, 2);
        assert_eq!(s.decide(IoOp::WalFsync, 0), FaultDecision::Pass);
        assert_eq!(s.decide(IoOp::WalWrite, 10), FaultDecision::Pass);
        assert_eq!(s.decide(IoOp::WalFsync, 0), FaultDecision::Pass);
        assert!(matches!(
            s.decide(IoOp::WalFsync, 0),
            FaultDecision::Fail(io::ErrorKind::Other)
        ));
        assert_eq!(s.decide(IoOp::WalFsync, 0), FaultDecision::Pass);
        assert_eq!(s.injected(), 1);
        assert_eq!(s.observed(IoOp::WalFsync), 4);
        assert_eq!(s.observed(IoOp::WalWrite), 1);
    }

    #[test]
    fn a_crash_freezes_the_schedule_until_cleared() {
        let mut s = FaultSchedule::new();
        s.crash_nth(IoOp::WalWrite, 0, 3);
        assert!(matches!(
            s.decide(IoOp::WalWrite, 10),
            FaultDecision::Crash { keep: 3 }
        ));
        assert!(s.crashed());
        // Everything afterwards fails: the process is "dead".
        assert!(matches!(
            s.decide(IoOp::SnapshotRename, 0),
            FaultDecision::Fail(_)
        ));
        s.clear();
        assert!(!s.crashed());
        assert_eq!(s.decide(IoOp::SnapshotRename, 0), FaultDecision::Pass);
    }

    #[test]
    fn transient_faults_use_a_retryable_kind() {
        let mut s = FaultSchedule::new();
        s.transient_nth(IoOp::WalWrite, 0);
        let FaultDecision::Fail(kind) = s.decide(IoOp::WalWrite, 1) else {
            panic!("expected a failure decision");
        };
        assert!(StoreError::Io(io::Error::new(kind, "x")).is_transient());
    }
}
