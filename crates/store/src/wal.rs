//! The append-only write-ahead log.
//!
//! One record per applied update batch (`!flush`), framed as
//! `[u32 payload_len][u32 crc32(payload)][payload]` over the codec of
//! [`crate::codec`].  Batches referencing strings the current segment has
//! not defined yet are preceded by the owed symbol-definition records;
//! definitions and their batch are written as **one** `write` followed by
//! one `fsync`, so a batch is durable before it is acknowledged and a crash
//! can only tear the final group.
//!
//! Segments rotate at a size threshold ([`WalConfig::segment_bytes`]); each
//! segment starts with the magic `ODQWAL1\n` and a fresh local dictionary,
//! so any segment is decodable in isolation (portability across processes,
//! one re-intern per distinct string per segment).
//!
//! Recovery ([`Wal::replay`]) scans segments in id order.  A short header,
//! an over-long length, or a CRC mismatch **in the final segment** is a torn
//! tail: the file is truncated at the last valid record boundary and replay
//! stops — every fully committed batch before the tear survives.  The same
//! damage in a non-final segment cannot be a torn write (later segments were
//! created after it was sealed) and is reported as corruption instead.
//! After replay the tail segment is sealed: new appends go to a fresh
//! segment, so the writer never needs to reconstruct a partial dictionary.

use crate::codec::{crc32, put_u32, put_u64, Cursor, DictReader, DictWriter};
use crate::error::{Result, StoreError};
use crate::io::{
    guarded_fsync, guarded_sync_dir, guarded_truncate, guarded_write, passthrough_policy, IoOp,
    SharedIoPolicy,
};
use ontodq_relational::Tuple;
use std::fs::{self, File, OpenOptions};
use std::io::Read;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Magic bytes opening every segment file.
const SEGMENT_MAGIC: &[u8; 8] = b"ODQWAL1\n";

/// Record type: one local symbol definition (`u32` local id, `u32` byte
/// length, UTF-8 bytes).
pub(crate) const REC_SYMDEF: u8 = 1;

/// Record type: one applied update batch.
pub(crate) const REC_BATCH: u8 = 2;

/// Record type: one applied retraction batch.  Same payload layout as
/// [`REC_BATCH`]; the facts are the **expanded** concrete deletions (never
/// unexpanded conditional-delete rules), so replay is deterministic no
/// matter what state the database reaches in between.
///
/// (`3` is taken by the snapshot record of [`crate::snapshot`] — the two
/// files share one framing, so tags stay globally unique.)
pub(crate) const REC_RETRACT: u8 = 4;

/// Bytes of framing per record (length + CRC).
const FRAME_BYTES: u64 = 8;

/// Write-ahead-log tuning.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Rotate to a new segment once the current one exceeds this many bytes.
    pub segment_bytes: u64,
    /// How many times a *transient* append failure (`Interrupted`,
    /// `WouldBlock`, `TimedOut`) is retried — after healing the segment
    /// back to its last good boundary — before the log is poisoned.
    pub append_retries: u32,
    /// Base back-off between append retries (multiplied by the attempt
    /// number).
    pub retry_backoff: Duration,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            segment_bytes: 4 * 1024 * 1024,
            append_retries: 2,
            retry_backoff: Duration::from_millis(1),
        }
    }
}

/// Durability counters surfaced through the server's `!stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Number of segment files on disk (sealed + active).
    pub segments: u64,
    /// Total bytes across all segment files.
    pub bytes: u64,
    /// Batches appended through this handle since it was opened.
    pub batches_appended: u64,
    /// Transient append failures healed by retrying into a fresh segment.
    pub append_retries: u64,
}

/// Whether a replayed batch inserted or retracted its facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchKind {
    /// An update batch: the facts were inserted.
    Insert,
    /// A retraction batch: the facts were deleted (delete-and-rederive).
    Retract,
}

/// One batch decoded from the log during replay.
#[derive(Debug, Clone)]
pub struct ReplayedBatch {
    /// The context the batch was applied to.
    pub context: String,
    /// The snapshot version the batch produced (per-context, monotone).
    pub seq: u64,
    /// Whether the facts were inserted or retracted.
    pub kind: BatchKind,
    /// The facts of the batch, in application order.
    pub facts: Vec<(String, Tuple)>,
}

/// What [`Wal::replay`] saw.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayReport {
    /// Batches handed to the visitor.
    pub batches: usize,
    /// Whether a torn tail record was detected and truncated away.
    pub truncated_tail: bool,
}

/// The active segment being appended to.
struct OpenSegment {
    path: PathBuf,
    file: File,
    len: u64,
    dict: DictWriter,
}

/// An append-only, CRC-checked, segment-rotated write-ahead log.
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    policy: SharedIoPolicy,
    current: Option<OpenSegment>,
    next_segment_id: u64,
    sealed_segments: u64,
    sealed_bytes: u64,
    batches_appended: u64,
    append_retries: u64,
    /// Set (to the failure reason) by a failed append; while set, further
    /// appends fail fast — see [`Wal::append_batch`].  Cleared by
    /// [`Wal::compact`], whose snapshots supersede the damaged log.
    poisoned: Option<String>,
    /// Time source for the latency histograms below (monotonic unless a
    /// caller injected a virtual clock — see [`Wal::set_clock`]).
    clock: ontodq_obs::SharedClock,
    /// Latency of each append group's `write(2)`, µs.
    write_histogram: Arc<ontodq_obs::Histogram>,
    /// Latency of each append group's fsync, µs.
    fsync_histogram: Arc<ontodq_obs::Histogram>,
}

/// What [`Wal::try_append`] did.  `Err` from `try_append` always means
/// *nothing of this group is durably committed*; a failure after the
/// group's own fsync succeeded is reported here instead, so the retry
/// loop can never duplicate a committed record.
enum AppendOutcome {
    /// The group is durable and the segment is in a clean state.
    Committed,
    /// The group is durable but the rotation seal that followed failed.
    CommittedSealFailed(StoreError),
}

impl Wal {
    /// Open (creating if needed) the log directory with the production
    /// passthrough I/O policy.  Existing segments are left untouched until
    /// [`Wal::replay`]; new appends go to a fresh segment numbered after
    /// the newest existing one.
    pub fn open(dir: impl Into<PathBuf>, config: WalConfig) -> Result<Self> {
        Self::open_with_policy(dir, config, passthrough_policy())
    }

    /// [`Wal::open`] with an explicit fault-injection policy (see
    /// [`crate::io`]).
    pub fn open_with_policy(
        dir: impl Into<PathBuf>,
        config: WalConfig,
        policy: SharedIoPolicy,
    ) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let segments = Self::segment_paths(&dir)?;
        let next_segment_id = segments.last().map(|(id, _)| id + 1).unwrap_or(0);
        let mut sealed_bytes = 0;
        for (_, path) in &segments {
            sealed_bytes += fs::metadata(path)?.len();
        }
        Ok(Self {
            dir,
            config,
            policy,
            current: None,
            next_segment_id,
            sealed_segments: segments.len() as u64,
            sealed_bytes,
            batches_appended: 0,
            append_retries: 0,
            poisoned: None,
            clock: ontodq_obs::monotonic(),
            write_histogram: Arc::new(ontodq_obs::Histogram::latency()),
            fsync_histogram: Arc::new(ontodq_obs::Histogram::latency()),
        })
    }

    /// Replace the histogram time source (deterministic tests inject a
    /// virtual clock).
    pub fn set_clock(&mut self, clock: ontodq_obs::SharedClock) {
        self.clock = clock;
    }

    /// The `write(2)` latency histogram (shared handle, adoptable into an
    /// [`ontodq_obs::Registry`]).
    pub fn write_histogram(&self) -> Arc<ontodq_obs::Histogram> {
        Arc::clone(&self.write_histogram)
    }

    /// The fsync latency histogram (shared handle).
    pub fn fsync_histogram(&self) -> Arc<ontodq_obs::Histogram> {
        Arc::clone(&self.fsync_histogram)
    }

    /// The segment files of `dir`, sorted by segment id.
    fn segment_paths(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
        let mut segments = Vec::new();
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if let Some(id) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                segments.push((id, path));
            }
        }
        segments.sort();
        Ok(segments)
    }

    /// Durability counters.
    pub fn stats(&self) -> WalStats {
        let (active_segments, active_bytes) = match &self.current {
            Some(segment) => (1, segment.len),
            None => (0, 0),
        };
        WalStats {
            segments: self.sealed_segments + active_segments,
            bytes: self.sealed_bytes + active_bytes,
            batches_appended: self.batches_appended,
            append_retries: self.append_retries,
        }
    }

    /// Why the log is refusing appends, if it is (see [`Wal::append_batch`]).
    pub fn poisoned(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Append one applied batch and fsync it.  Returns only after the bytes
    /// are durable.
    ///
    /// **Any** failed append — segment creation, framing, write, fsync —
    /// poisons the log for writes: the active segment (if any) is abandoned
    /// and every further append fails fast until [`Wal::compact`] wipes the
    /// log after a fresh round of snapshots.  The caller applies batches in
    /// memory before logging them, so a batch whose append failed is
    /// missing from the log no matter *why* the append failed; appending
    /// later batches around it would either bury a torn record mid-segment
    /// — recovery truncates at the first bad frame, silently discarding
    /// everything acknowledged after it — or punch a hole in the
    /// per-context sequence that bricks recovery.  Failing fast keeps the
    /// on-disk sequence an exact committed prefix.
    pub fn append_batch(
        &mut self,
        context: &str,
        seq: u64,
        facts: &[(String, Tuple)],
    ) -> Result<()> {
        self.append_record(REC_BATCH, context, seq, facts)
    }

    /// Append one applied retraction batch and fsync it; `facts` are the
    /// expanded concrete deletions.  Same durability and poisoning contract
    /// as [`Wal::append_batch`] — insertions and retractions share one
    /// per-context sequence, so replay interleaves them exactly as applied.
    pub fn append_retraction(
        &mut self,
        context: &str,
        seq: u64,
        facts: &[(String, Tuple)],
    ) -> Result<()> {
        self.append_record(REC_RETRACT, context, seq, facts)
    }

    fn append_record(
        &mut self,
        tag: u8,
        context: &str,
        seq: u64,
        facts: &[(String, Tuple)],
    ) -> Result<()> {
        if let Some(reason) = &self.poisoned {
            return Err(StoreError::Data(format!(
                "wal disabled by an earlier append failure ({reason}); \
                 checkpoint (!save) to restore durability"
            )));
        }
        let mut attempt: u32 = 0;
        loop {
            match self.try_append(tag, context, seq, facts) {
                Ok(AppendOutcome::Committed) => return Ok(()),
                Ok(AppendOutcome::CommittedSealFailed(e)) => {
                    // The group is durable (its own fsync succeeded); only
                    // the redundant rotation seal failed.  Retrying would
                    // duplicate a committed record — a seq the recovery
                    // gap check rejects — so poison instead and surface
                    // the error: the caller treats durability of *later*
                    // writes as suspect until a checkpoint.
                    self.poisoned = Some(e.to_string());
                    return Err(e);
                }
                Err(e) if e.is_simulated_crash() => {
                    // The process is "dead": no healing (a crashed process
                    // heals nothing), no retry.  Whatever torn prefix hit
                    // the disk is exactly what recovery must truncate.
                    self.abandon_current();
                    self.poisoned = Some(e.to_string());
                    return Err(e);
                }
                Err(e) => {
                    // Nothing of the group is committed.  Heal the segment
                    // back to its last good record boundary and seal it;
                    // a transient failure is then safe to retry into a
                    // fresh segment (never around the tear — burying a
                    // torn record mid-segment would make recovery truncate
                    // away batches acknowledged after it).
                    let healed = self.heal_after_failed_append();
                    if healed && e.is_transient() && attempt < self.config.append_retries {
                        attempt += 1;
                        self.append_retries += 1;
                        std::thread::sleep(self.config.retry_backoff * attempt);
                        continue;
                    }
                    self.abandon_current();
                    self.poisoned = Some(e.to_string());
                    return Err(e);
                }
            }
        }
    }

    /// After a failed, non-crash append: truncate the active segment back
    /// to its last known-good record boundary (`OpenSegment::len` only
    /// advances after a successful write + fsync, so it *is* that
    /// boundary), fsync the truncation, and seal the segment so a retry
    /// starts a fresh one.  Returns `false` — leaving the caller to
    /// poison the log — if the heal itself fails; the torn bytes then sit
    /// in what is now the final segment, where recovery truncates them.
    fn heal_after_failed_append(&mut self) -> bool {
        let Some(segment) = self.current.take() else {
            // The failure was in segment creation: nothing on disk to heal.
            return true;
        };
        let healed = guarded_truncate(&self.policy, IoOp::WalTruncate, &segment.file, segment.len)
            .and_then(|()| guarded_fsync(&self.policy, IoOp::WalSeal, &segment.file));
        self.sealed_segments += 1;
        self.sealed_bytes += segment.len;
        healed.is_ok()
    }

    /// Close the active segment without healing (crash / give-up paths);
    /// counters fold in whatever the file actually holds.
    fn abandon_current(&mut self) {
        if let Some(abandoned) = self.current.take() {
            self.sealed_segments += 1;
            self.sealed_bytes += fs::metadata(&abandoned.path)
                .map(|m| m.len())
                .unwrap_or(abandoned.len);
        }
    }

    /// One append attempt.  `Err` always means nothing of the group is
    /// durably committed; a post-commit failure (rotation seal) comes back
    /// as [`AppendOutcome::CommittedSealFailed`] so the caller never
    /// retries a committed record.
    fn try_append(
        &mut self,
        tag: u8,
        context: &str,
        seq: u64,
        facts: &[(String, Tuple)],
    ) -> Result<AppendOutcome> {
        if self.current.is_none() {
            self.current = Some(self.create_segment()?);
        }
        let segment = self.current.as_mut().expect("segment opened above");

        // Encode the batch first so the dictionary learns which strings it
        // references; the owed definitions are framed *before* the batch in
        // the same write group.
        let mut batch = vec![tag];
        put_u32(&mut batch, segment.dict.local_str(context));
        put_u64(&mut batch, seq);
        put_u32(&mut batch, facts.len() as u32);
        for (predicate, tuple) in facts {
            put_u32(&mut batch, segment.dict.local_str(predicate));
            crate::codec::encode_tuple(&mut batch, &mut segment.dict, tuple);
        }

        let mut batch_frame = Vec::new();
        frame(&mut batch_frame, &batch)?;
        let mut group = Vec::new();
        for (local, text) in segment.dict.drain_new() {
            let mut def = vec![REC_SYMDEF];
            put_u32(&mut def, local);
            put_u32(&mut def, text.len() as u32);
            def.extend_from_slice(text.as_bytes());
            frame(&mut group, &def)?;
        }
        group.extend_from_slice(&batch_frame);

        let write_start = self.clock.now_micros();
        guarded_write(&self.policy, IoOp::WalWrite, &mut segment.file, &group)?;
        let fsync_start = self.clock.now_micros();
        self.write_histogram
            .observe(fsync_start.saturating_sub(write_start));
        guarded_fsync(&self.policy, IoOp::WalFsync, &segment.file)?;
        self.fsync_histogram
            .observe(self.clock.now_micros().saturating_sub(fsync_start));
        segment.len += group.len() as u64;
        self.batches_appended += 1;

        if segment.len >= self.config.segment_bytes {
            if let Err(e) = self.seal_current() {
                return Ok(AppendOutcome::CommittedSealFailed(e));
            }
        }
        Ok(AppendOutcome::Committed)
    }

    /// Flush and fsync the active segment, if any.  Called on clean
    /// shutdown so the final group is never left to the OS page cache.
    pub fn sync(&mut self) -> Result<()> {
        if let Some(segment) = &mut self.current {
            segment.file.sync_data()?;
        }
        Ok(())
    }

    /// Replay every committed batch in segment order, handing each to
    /// `on_batch`.  Detects and truncates a torn tail (see module docs),
    /// then seals the tail segment so subsequent appends start fresh.
    pub fn replay(&mut self, mut on_batch: impl FnMut(ReplayedBatch)) -> Result<ReplayReport> {
        let segments = Self::segment_paths(&self.dir)?;
        let mut report = ReplayReport::default();
        for (index, (_, path)) in segments.iter().enumerate() {
            let is_last = index + 1 == segments.len();
            let truncated = self.replay_segment(path, is_last, &mut on_batch, &mut report)?;
            report.truncated_tail |= truncated;
        }
        // Recompute counters from a fresh listing: truncation may have
        // shrunk the tail or removed an empty torn segment entirely.
        let remaining = Self::segment_paths(&self.dir)?;
        self.sealed_bytes = 0;
        for (_, path) in &remaining {
            self.sealed_bytes += fs::metadata(path)?.len();
        }
        self.sealed_segments = remaining.len() as u64;
        Ok(report)
    }

    /// Replay one segment; returns whether its tail was truncated.
    fn replay_segment(
        &self,
        path: &Path,
        is_last: bool,
        on_batch: &mut impl FnMut(ReplayedBatch),
        report: &mut ReplayReport,
    ) -> Result<bool> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            // A segment so torn even the magic is incomplete can only be the
            // last one (rotation writes the magic before advertising the
            // segment); anywhere else it is corruption.
            if is_last && bytes.len() < SEGMENT_MAGIC.len() {
                fs::remove_file(path)?;
                return Ok(true);
            }
            return Err(StoreError::corrupt(path, "bad segment magic"));
        }

        let mut dict = DictReader::new();
        let mut offset = SEGMENT_MAGIC.len();
        loop {
            let remaining = &bytes[offset..];
            if remaining.is_empty() {
                return Ok(false);
            }
            let framed = match parse_frame(remaining) {
                Some(framed) => framed,
                None => {
                    // Short header, over-long length, or CRC mismatch.
                    if is_last {
                        truncate_file(path, offset as u64)?;
                        return Ok(true);
                    }
                    return Err(StoreError::corrupt(
                        path,
                        format!("invalid record at byte {offset} of a sealed segment"),
                    ));
                }
            };
            // A CRC-valid record that fails to decode is not a torn write —
            // the bytes are the bytes that were written — so structural
            // decode errors are corruption even in the last segment.
            let mut cursor = Cursor::new(framed.payload, path);
            match cursor.take_u8()? {
                REC_SYMDEF => {
                    let local = cursor.take_u32()?;
                    let len = cursor.take_u32()? as usize;
                    let text = cursor.take_str(len)?;
                    dict.define(local, text, path)?;
                }
                tag @ (REC_BATCH | REC_RETRACT) => {
                    let context = dict.resolve(cursor.take_u32()?, path)?.as_str().to_string();
                    let seq = cursor.take_u64()?;
                    let count = cursor.take_u32()? as usize;
                    let mut facts = Vec::with_capacity(count);
                    for _ in 0..count {
                        let predicate =
                            dict.resolve(cursor.take_u32()?, path)?.as_str().to_string();
                        let tuple = crate::codec::decode_tuple(&mut cursor, &dict)?;
                        facts.push((predicate, tuple));
                    }
                    report.batches += 1;
                    on_batch(ReplayedBatch {
                        context,
                        seq,
                        kind: if tag == REC_BATCH {
                            BatchKind::Insert
                        } else {
                            BatchKind::Retract
                        },
                        facts,
                    });
                }
                other => {
                    return Err(StoreError::corrupt(
                        path,
                        format!("unknown record type {other} at byte {offset}"),
                    ))
                }
            }
            offset += framed.total_len;
        }
    }

    /// Delete **every** segment, sealed and active.  Only sound when every
    /// batch in the log is covered by a snapshot — the store enforces that
    /// by compacting only while it holds all writer locks, right after
    /// snapshotting every context.  Returns the number of files removed.
    pub fn compact(&mut self) -> Result<usize> {
        if let Some(segment) = self.current.take() {
            segment.file.sync_data()?;
        }
        let segments = Self::segment_paths(&self.dir)?;
        for (_, path) in &segments {
            fs::remove_file(path)?;
        }
        // Persist the unlinks.  Ordering with the snapshots that justified
        // this compaction is the caller's side: `save_snapshot` fsyncs the
        // snapshot directory after its rename, so by the time the unlinks
        // can hit the disk the covering snapshots already have.
        guarded_sync_dir(&self.policy, &self.dir)?;
        self.sealed_segments = 0;
        self.sealed_bytes = 0;
        // The snapshots that justified this compaction supersede whatever a
        // failed append left behind; the log is empty and trustworthy again.
        self.poisoned = None;
        Ok(segments.len())
    }

    /// Force the poisoned state, as a real append failure would — test
    /// hook for the failure semantics (real fsync errors are not
    /// injectable from safe code).
    #[cfg(test)]
    pub(crate) fn poison_for_test(&mut self, reason: &str) {
        if let Some(segment) = self.current.take() {
            self.sealed_segments += 1;
            self.sealed_bytes += segment.len;
        }
        self.poisoned = Some(reason.to_string());
    }

    fn create_segment(&mut self) -> Result<OpenSegment> {
        let id = self.next_segment_id;
        self.next_segment_id += 1;
        let path = self.dir.join(format!("wal-{id:08}.log"));
        let mut file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        let initialized = guarded_write(
            &self.policy,
            IoOp::WalSegmentCreate,
            &mut file,
            SEGMENT_MAGIC,
        )
        .and_then(|()| guarded_fsync(&self.policy, IoOp::WalSegmentCreate, &file))
        // Make the new directory entry itself durable: fsyncing the file
        // alone does not persist its name in the directory, and a power
        // loss could otherwise drop the whole segment — every acknowledged
        // batch in it — without any torn-tail signal at recovery.
        .and_then(|()| guarded_sync_dir(&self.policy, &self.dir));
        if let Err(e) = initialized {
            // A retried append would create the *next* segment id, turning
            // this torn-magic file into a non-final segment recovery rejects
            // as corrupt — unlink it while the process is still alive.  (A
            // simulated crash skips the cleanup, exactly like a real one:
            // the short file is then the final segment, which recovery
            // removes itself.)
            if !e.is_simulated_crash() {
                let _ = fs::remove_file(&path);
            }
            return Err(e);
        }
        Ok(OpenSegment {
            path,
            file,
            len: SEGMENT_MAGIC.len() as u64,
            dict: DictWriter::new(),
        })
    }

    fn seal_current(&mut self) -> Result<()> {
        if let Some(segment) = self.current.take() {
            // `len` tracks the file exactly (it only advances on committed
            // groups), so the counters never need a metadata round trip.
            let sealed = guarded_fsync(&self.policy, IoOp::WalSeal, &segment.file);
            self.sealed_segments += 1;
            self.sealed_bytes += segment.len;
            sealed?;
        }
        Ok(())
    }
}

/// Frame `payload` into `out`: length, CRC, bytes.  Fails (rather than
/// silently truncating the length field) on payloads beyond the `u32`
/// framing limit — a snapshot body is one record, so a colossal context
/// must be rejected at save time, not discovered as corruption at the next
/// recovery.
pub(crate) fn frame(out: &mut Vec<u8>, payload: &[u8]) -> Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        StoreError::Data(format!(
            "record payload of {} bytes exceeds the 4 GiB framing limit",
            payload.len()
        ))
    })?;
    put_u32(out, len);
    put_u32(out, crc32(payload));
    out.extend_from_slice(payload);
    Ok(())
}

pub(crate) struct Framed<'a> {
    pub(crate) payload: &'a [u8],
    pub(crate) total_len: usize,
}

/// Parse one `[len][crc][payload]` frame off the front of `bytes`; `None`
/// when the frame is incomplete or fails its checksum (a torn write).
pub(crate) fn parse_frame(bytes: &[u8]) -> Option<Framed<'_>> {
    if bytes.len() < FRAME_BYTES as usize {
        return None;
    }
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    let payload = bytes.get(8..8 + len)?;
    if crc32(payload) != crc {
        return None;
    }
    Some(Framed {
        payload,
        total_len: FRAME_BYTES as usize + len,
    })
}

fn truncate_file(path: &Path, len: u64) -> Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    file.set_len(len)?;
    file.sync_data()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::FaultSchedule;
    use ontodq_relational::Value;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ontodq-wal-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fact(predicate: &str, values: &[&str]) -> (String, Tuple) {
        (
            predicate.to_string(),
            Tuple::from_iter(values.iter().copied()),
        )
    }

    fn collect_replay(wal: &mut Wal) -> (Vec<ReplayedBatch>, ReplayReport) {
        let mut batches = Vec::new();
        let report = wal.replay(|b| batches.push(b)).unwrap();
        (batches, report)
    }

    #[test]
    fn appended_batches_replay_in_order_across_reopen() {
        let dir = temp_dir("order");
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append_batch("hospital", 1, &[fact("M", &["a", "b"])])
            .unwrap();
        wal.append_batch("hospital", 2, &[fact("M", &["c", "d"]), fact("N", &["e"])])
            .unwrap();
        wal.append_batch("scaled", 1, &[fact("M", &["f", "g"])])
            .unwrap();
        assert_eq!(wal.stats().batches_appended, 3);
        drop(wal);

        let mut reopened = Wal::open(&dir, WalConfig::default()).unwrap();
        let (batches, report) = collect_replay(&mut reopened);
        assert!(!report.truncated_tail);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].context, "hospital");
        assert_eq!(batches[0].seq, 1);
        assert_eq!(batches[1].facts.len(), 2);
        assert_eq!(batches[2].context, "scaled");
        assert_eq!(
            batches[1].facts[0].1,
            Tuple::new(vec![Value::str("c"), Value::str("d")])
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retraction_records_replay_interleaved_with_inserts() {
        let dir = temp_dir("retract");
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append_batch("hospital", 1, &[fact("M", &["a", "b"])])
            .unwrap();
        wal.append_retraction("hospital", 2, &[fact("M", &["a", "b"])])
            .unwrap();
        wal.append_batch("hospital", 3, &[fact("M", &["c", "d"])])
            .unwrap();
        drop(wal);

        let mut reopened = Wal::open(&dir, WalConfig::default()).unwrap();
        let (batches, report) = collect_replay(&mut reopened);
        assert!(!report.truncated_tail);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0].kind, BatchKind::Insert);
        assert_eq!(batches[1].kind, BatchKind::Retract);
        assert_eq!(batches[1].seq, 2);
        assert_eq!(batches[1].facts, vec![fact("M", &["a", "b"])]);
        assert_eq!(batches[2].kind, BatchKind::Insert);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tails_with_retraction_records_truncate_at_every_cut_point() {
        let dir = temp_dir("torn-retract");
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append_batch("hospital", 1, &[fact("M", &["a", "b"])])
            .unwrap();
        wal.append_retraction("hospital", 2, &[fact("M", &["a", "b"])])
            .unwrap();
        wal.append_retraction("hospital", 3, &[fact("N", &["e"])])
            .unwrap();
        drop(wal);
        let (_, path) = Wal::segment_paths(&dir).unwrap().pop().unwrap();
        let full = fs::read(&path).unwrap();

        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
            let mut batches = Vec::new();
            wal.replay(|b| batches.push(b)).unwrap();
            // Always a clean prefix of the committed sequence, kinds intact.
            assert!(batches.len() <= 3, "phantom batch at cut {cut}");
            for (i, b) in batches.iter().enumerate() {
                assert_eq!(b.seq, i as u64 + 1, "cut {cut}");
                let want = if i == 0 {
                    BatchKind::Insert
                } else {
                    BatchKind::Retract
                };
                assert_eq!(b.kind, want, "cut {cut}");
            }
            // The truncation healed the file: a second recovery is clean.
            drop(wal);
            let mut again = Wal::open(&dir, WalConfig::default()).unwrap();
            let mut second = Vec::new();
            let report = again.replay(|b| second.push(b)).unwrap();
            assert!(!report.truncated_tail, "cut {cut} not healed");
            assert_eq!(second.len(), batches.len());
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_at_the_size_threshold() {
        let dir = temp_dir("rotate");
        let mut wal = Wal::open(
            &dir,
            WalConfig {
                segment_bytes: 256,
                ..WalConfig::default()
            },
        )
        .unwrap();
        for seq in 1..=20u64 {
            wal.append_batch(
                "hospital",
                seq,
                &[fact("Measurements", &["some-ward", "some-patient"])],
            )
            .unwrap();
        }
        let stats = wal.stats();
        assert!(stats.segments > 1, "expected rotation, got {stats:?}");
        drop(wal);
        let mut reopened = Wal::open(&dir, WalConfig::default()).unwrap();
        let (batches, _) = collect_replay(&mut reopened);
        assert_eq!(batches.len(), 20);
        assert_eq!(batches.last().unwrap().seq, 20);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tails_are_truncated_at_every_cut_point() {
        let dir = temp_dir("torn");
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append_batch("hospital", 1, &[fact("M", &["a", "b"])])
            .unwrap();
        wal.append_batch("hospital", 2, &[fact("M", &["c", "d"])])
            .unwrap();
        drop(wal);
        let (_, path) = Wal::segment_paths(&dir).unwrap().pop().unwrap();
        let full = fs::read(&path).unwrap();

        // Cutting anywhere strictly inside the file must recover a clean
        // prefix of the committed batches (never an error, never a phantom
        // batch).
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
            let mut batches = Vec::new();
            let report = wal.replay(|b| batches.push(b)).unwrap();
            assert!(
                batches.len() <= 2,
                "phantom batch at cut {cut}: {batches:?}"
            );
            for (i, b) in batches.iter().enumerate() {
                assert_eq!(b.seq, i as u64 + 1);
            }
            // Cuts at a record-group boundary leave a valid shorter log (no
            // tear to report); any other cut must be flagged and healed so
            // that a second recovery is clean either way.
            drop(wal);
            let mut again = Wal::open(&dir, WalConfig::default()).unwrap();
            let mut second = Vec::new();
            let second_report = again.replay(|b| second.push(b)).unwrap();
            assert!(!second_report.truncated_tail, "cut {cut} not healed");
            assert_eq!(second.len(), batches.len());
            let _ = report;
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corruption_in_a_sealed_segment_is_an_error_not_a_truncation() {
        let dir = temp_dir("sealed");
        let mut wal = Wal::open(
            &dir,
            WalConfig {
                segment_bytes: 64,
                ..WalConfig::default()
            },
        )
        .unwrap();
        for seq in 1..=6u64 {
            wal.append_batch("hospital", seq, &[fact("M", &["x", "y"])])
                .unwrap();
        }
        drop(wal);
        let segments = Wal::segment_paths(&dir).unwrap();
        assert!(segments.len() >= 2);
        // Flip a byte in the FIRST segment's data area.
        let (_, first) = &segments[0];
        let mut bytes = fs::read(first).unwrap();
        let target = bytes.len() - 2;
        bytes[target] ^= 0xFF;
        fs::write(first, &bytes).unwrap();
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        let err = wal.replay(|_| {}).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "got {err}");
        fs::remove_dir_all(&dir).unwrap();
    }

    /// After an append failure the log refuses further appends (no gapped
    /// or buried-tear sequences) until compaction supersedes it; the
    /// surviving log replays as an exact committed prefix.
    #[test]
    fn a_poisoned_wal_fails_fast_until_compaction() {
        let dir = temp_dir("poison");
        let mut wal = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append_batch("hospital", 1, &[fact("M", &["a", "b"])])
            .unwrap();
        wal.poison_for_test("simulated fsync failure");
        let err = wal
            .append_batch("hospital", 2, &[fact("M", &["c", "d"])])
            .unwrap_err();
        assert!(err.to_string().contains("wal disabled"), "got {err}");
        // The committed prefix is still replayable.
        let (batches, _) = collect_replay(&mut Wal::open(&dir, WalConfig::default()).unwrap());
        assert_eq!(batches.iter().map(|b| b.seq).collect::<Vec<_>>(), vec![1]);
        // Compaction (after fresh snapshots) heals the log for writes.
        wal.compact().unwrap();
        wal.append_batch("hospital", 3, &[fact("M", &["e", "f"])])
            .unwrap();
        let (batches, _) = collect_replay(&mut Wal::open(&dir, WalConfig::default()).unwrap());
        assert_eq!(batches.iter().map(|b| b.seq).collect::<Vec<_>>(), vec![3]);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A transient write/fsync failure is healed (segment truncated back
    /// to its last good boundary and sealed) and the whole group retried
    /// into a fresh segment — the append succeeds, nothing is duplicated,
    /// and the retry is visible in the stats.
    #[test]
    fn transient_append_failures_heal_by_retrying_into_a_fresh_segment() {
        let dir = temp_dir("transient");
        let schedule = Arc::new(Mutex::new(FaultSchedule::new()));
        schedule.lock().unwrap().transient_nth(IoOp::WalFsync, 1);
        let mut wal = Wal::open_with_policy(&dir, WalConfig::default(), schedule.clone()).unwrap();
        for seq in 1..=3u64 {
            wal.append_batch("hospital", seq, &[fact("M", &["a", &seq.to_string()])])
                .unwrap();
        }
        assert_eq!(wal.stats().append_retries, 1);
        assert!(wal.poisoned().is_none());
        // The healed segment plus the fresh one both replay; every batch
        // appears exactly once, in order.
        drop(wal);
        let (batches, report) = collect_replay(&mut Wal::open(&dir, WalConfig::default()).unwrap());
        assert!(!report.truncated_tail);
        assert_eq!(
            batches.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A permanent failure exhausts no retries, poisons the log, and the
    /// surviving log is exactly the acked prefix.
    #[test]
    fn permanent_append_failures_poison_and_keep_the_acked_prefix() {
        let dir = temp_dir("permanent");
        let schedule = Arc::new(Mutex::new(FaultSchedule::new()));
        schedule.lock().unwrap().fail_nth(IoOp::WalWrite, 1);
        let mut wal = Wal::open_with_policy(&dir, WalConfig::default(), schedule.clone()).unwrap();
        wal.append_batch("hospital", 1, &[fact("M", &["a", "1"])])
            .unwrap();
        let err = wal
            .append_batch("hospital", 2, &[fact("M", &["a", "2"])])
            .unwrap_err();
        assert!(!err.is_transient());
        assert!(wal.poisoned().is_some());
        let fast = wal
            .append_batch("hospital", 3, &[fact("M", &["a", "3"])])
            .unwrap_err();
        assert!(fast.to_string().contains("wal disabled"), "got {fast}");
        drop(wal);
        let (batches, _) = collect_replay(&mut Wal::open(&dir, WalConfig::default()).unwrap());
        assert_eq!(batches.iter().map(|b| b.seq).collect::<Vec<_>>(), vec![1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// A crash mid-write leaves the torn prefix on disk (no healing — the
    /// process is "dead"); recovery truncates it and replays exactly the
    /// acked batches.
    #[test]
    fn a_crash_mid_write_leaves_a_torn_tail_recovery_truncates() {
        let dir = temp_dir("crash");
        let schedule = Arc::new(Mutex::new(FaultSchedule::new()));
        schedule.lock().unwrap().crash_nth(IoOp::WalWrite, 1, 5);
        let mut wal = Wal::open_with_policy(&dir, WalConfig::default(), schedule.clone()).unwrap();
        wal.append_batch("hospital", 1, &[fact("M", &["a", "1"])])
            .unwrap();
        let err = wal
            .append_batch("hospital", 2, &[fact("M", &["a", "2"])])
            .unwrap_err();
        assert!(err.is_simulated_crash(), "got {err}");
        drop(wal);
        // Recovery on a fresh instance: the 5 torn bytes are truncated
        // away and only the acked batch survives.
        let mut reopened = Wal::open(&dir, WalConfig::default()).unwrap();
        let (batches, report) = collect_replay(&mut reopened);
        assert!(report.truncated_tail);
        assert_eq!(batches.iter().map(|b| b.seq).collect::<Vec<_>>(), vec![1]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_supersedes_all_segments() {
        let dir = temp_dir("compact");
        let mut wal = Wal::open(
            &dir,
            WalConfig {
                segment_bytes: 64,
                ..WalConfig::default()
            },
        )
        .unwrap();
        for seq in 1..=6u64 {
            wal.append_batch("hospital", seq, &[fact("M", &["x", "y"])])
                .unwrap();
        }
        let removed = wal.compact().unwrap();
        assert!(removed >= 2);
        assert_eq!(wal.stats().segments, 0);
        // The log is empty, and appending afterwards starts a fresh segment.
        wal.append_batch("hospital", 7, &[fact("M", &["z", "w"])])
            .unwrap();
        drop(wal);
        let mut reopened = Wal::open(&dir, WalConfig::default()).unwrap();
        let (batches, _) = collect_replay(&mut reopened);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].seq, 7);
        fs::remove_dir_all(&dir).unwrap();
    }
}
