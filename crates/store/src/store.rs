//! The store: one data directory holding the WAL and per-context snapshots.
//!
//! Layout:
//!
//! ```text
//! <data-dir>/
//!   wal/wal-00000000.log     append-only segments (rotated, CRC-checked)
//!   snap/<context>.snap      latest snapshot per context (atomic rename)
//! ```
//!
//! The store is deliberately policy-free: *when* to snapshot, *what* a
//! batch means, and which contexts exist is the server's business.  The
//! store guarantees (1) an acknowledged [`Store::append_batch`] is durable,
//! (2) [`Store::recover`] returns every context's newest snapshot plus
//! exactly the committed WAL batches newer than it, after healing a torn
//! tail, and (3) [`Store::compact`] only ever deletes log data the caller
//! has just superseded with snapshots.

use crate::error::{Result, StoreError};
use crate::io::{passthrough_policy, SharedIoPolicy};
use crate::snapshot::{
    load_snapshot, save_snapshot, snapshot_path, ContextImage, PersistedContext,
};
use crate::wal::{ReplayedBatch, Wal, WalConfig, WalStats};
use ontodq_relational::Tuple;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Store tuning.
#[derive(Debug, Clone, Default)]
pub struct StoreConfig {
    /// Write-ahead-log tuning.
    pub wal: WalConfig,
}

/// Everything [`Store::recover`] found on disk, keyed by context name.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Latest snapshot per context, if one was ever saved.
    pub snapshots: BTreeMap<String, PersistedContext>,
    /// Committed WAL batches **newer than the snapshot** (all committed
    /// batches when the context has no snapshot), in application order.
    pub tails: BTreeMap<String, Vec<ReplayedBatch>>,
    /// Whether a torn tail record was detected and truncated during replay.
    pub truncated_tail: bool,
}

impl Recovery {
    /// `true` when the directory held no durable state at all.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty() && self.tails.is_empty()
    }
}

/// A durable store rooted at one data directory.
pub struct Store {
    data_dir: PathBuf,
    wal: Wal,
    /// Fault-injection policy shared with the WAL and the snapshot writer
    /// (the production passthrough unless a harness installed a schedule).
    policy: SharedIoPolicy,
    /// Context names whose durable state [`Store::recover`] surfaced but no
    /// caller has [`Store::claim`]ed yet.  While any remain, [`Store::compact`]
    /// refuses to run — their batches live only in the log, and deleting it
    /// would destroy the very state the recovery warning told the operator
    /// was still restorable.
    unclaimed: BTreeSet<String>,
    /// Time source for the snapshot-write histogram (and, via
    /// [`Store::set_clock`], the WAL's).
    clock: ontodq_obs::SharedClock,
    /// Latency of each whole snapshot save (encode + write + fsync +
    /// rename), µs.
    snapshot_histogram: Arc<ontodq_obs::Histogram>,
}

/// Shared handles to the store's latency histograms, for adoption into an
/// [`ontodq_obs::Registry`] (the server's `!metrics` surface).
#[derive(Debug, Clone)]
pub struct StoreMetrics {
    /// WAL append-group `write(2)` latency.
    pub wal_write: Arc<ontodq_obs::Histogram>,
    /// WAL append-group fsync latency.
    pub wal_fsync: Arc<ontodq_obs::Histogram>,
    /// Whole-snapshot save latency.
    pub snapshot_write: Arc<ontodq_obs::Histogram>,
}

impl Store {
    /// Open (creating if needed) the store at `data_dir` with the
    /// production passthrough I/O policy.
    pub fn open(data_dir: impl Into<PathBuf>, config: StoreConfig) -> Result<Self> {
        Self::open_with_policy(data_dir, config, passthrough_policy())
    }

    /// [`Store::open`] with an explicit fault-injection policy (see
    /// [`crate::io`]): every WAL append/fsync/rotation and snapshot
    /// write/fsync/rename consults it, so a test harness can reach every
    /// durability edge deterministically.
    pub fn open_with_policy(
        data_dir: impl Into<PathBuf>,
        config: StoreConfig,
        policy: SharedIoPolicy,
    ) -> Result<Self> {
        let data_dir = data_dir.into();
        fs::create_dir_all(&data_dir)?;
        fs::create_dir_all(data_dir.join("snap"))?;
        let wal = Wal::open_with_policy(data_dir.join("wal"), config.wal, policy.clone())?;
        Ok(Self {
            data_dir,
            wal,
            policy,
            unclaimed: BTreeSet::new(),
            clock: ontodq_obs::monotonic(),
            snapshot_histogram: Arc::new(ontodq_obs::Histogram::latency()),
        })
    }

    /// Replace the time source behind the store's latency histograms
    /// (deterministic tests inject a virtual clock).
    pub fn set_clock(&mut self, clock: ontodq_obs::SharedClock) {
        self.wal.set_clock(clock.clone());
        self.clock = clock;
    }

    /// Shared handles to the WAL and snapshot latency histograms.
    pub fn metrics(&self) -> StoreMetrics {
        StoreMetrics {
            wal_write: self.wal.write_histogram(),
            wal_fsync: self.wal.fsync_histogram(),
            snapshot_write: Arc::clone(&self.snapshot_histogram),
        }
    }

    /// Mark `context`'s recovered durable state as claimed (registered by
    /// the running configuration).  A no-op for contexts with no durable
    /// state.  Once every recovered context is claimed, [`Store::compact`]
    /// is allowed again.
    pub fn claim(&mut self, context: &str) {
        self.unclaimed.remove(context);
    }

    /// The directory this store lives in.
    pub fn data_dir(&self) -> &Path {
        &self.data_dir
    }

    /// Durability counters (segment count, bytes, batches appended).
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Why the WAL is refusing appends, if it is (a failed append poisons
    /// the log until [`Store::compact`] supersedes it with snapshots).
    pub fn wal_poisoned(&self) -> Option<&str> {
        self.wal.poisoned()
    }

    /// Append one applied batch for `context` and fsync it; `seq` is the
    /// snapshot version the batch produced.
    pub fn append_batch(
        &mut self,
        context: &str,
        seq: u64,
        facts: &[(String, Tuple)],
    ) -> Result<()> {
        self.wal.append_batch(context, seq, facts)
    }

    /// Append one applied retraction batch for `context` and fsync it;
    /// `facts` are the expanded concrete deletions.  Shares the per-context
    /// sequence with [`Store::append_batch`], so recovery replays inserts
    /// and retractions in exactly the order they were applied.
    pub fn append_retraction(
        &mut self,
        context: &str,
        seq: u64,
        facts: &[(String, Tuple)],
    ) -> Result<()> {
        self.wal.append_retraction(context, seq, facts)
    }

    /// Fsync the active WAL segment (clean-shutdown path; appends already
    /// fsync themselves).
    pub fn sync(&mut self) -> Result<()> {
        self.wal.sync()
    }

    /// Save a snapshot of one context (atomic replace of any previous
    /// one).  Takes a borrowed [`ContextImage`] so callers holding writer
    /// locks never deep-clone the instance and chase state just to encode
    /// them.
    pub fn save_snapshot(&mut self, snapshot: &ContextImage<'_>) -> Result<()> {
        let start = self.clock.now_micros();
        let result = save_snapshot(
            &snapshot_path(&self.data_dir.join("snap"), snapshot.name),
            snapshot,
            &self.policy,
        );
        self.snapshot_histogram
            .observe(self.clock.now_micros().saturating_sub(start));
        result
    }

    /// Delete every WAL segment.  **Only sound immediately after saving
    /// snapshots of every context while no writer can append** — the server
    /// calls this holding all writer locks, so every logged batch is covered
    /// by the snapshots just written.  Refused while recovered state for an
    /// unclaimed context remains (see [`Store::claim`]): its batches exist
    /// only in the log.  Returns the number of segment files removed.
    pub fn compact(&mut self) -> Result<usize> {
        if !self.unclaimed.is_empty() {
            let names: Vec<&str> = self.unclaimed.iter().map(String::as_str).collect();
            return Err(StoreError::Data(format!(
                "refusing to compact: unclaimed durable state for context(s) [{}] \
                 lives in the log; restart with the flags that register them",
                names.join(", ")
            )));
        }
        self.wal.compact()
    }

    /// Read all durable state back: load every snapshot, replay the WAL
    /// (healing a torn tail), and bucket committed batches newer than each
    /// context's snapshot version.  Batches at or below the snapshot version
    /// are already folded into the snapshot and are dropped.
    pub fn recover(&mut self) -> Result<Recovery> {
        let mut recovery = Recovery::default();
        let snap_dir = self.data_dir.join("snap");
        for entry in fs::read_dir(&snap_dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("snap") {
                continue;
            }
            let snapshot = load_snapshot(&path)?;
            recovery.snapshots.insert(snapshot.name.clone(), snapshot);
        }
        let snapshots = &recovery.snapshots;
        let tails = &mut recovery.tails;
        let report = self.wal.replay(|batch| {
            let covered = snapshots
                .get(&batch.context)
                .map(|s| batch.seq <= s.version)
                .unwrap_or(false);
            if !covered {
                tails.entry(batch.context.clone()).or_default().push(batch);
            }
        })?;
        recovery.truncated_tail = report.truncated_tail;
        self.unclaimed = recovery
            .snapshots
            .keys()
            .chain(recovery.tails.keys())
            .cloned()
            .collect();
        Ok(recovery)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_chase::ChaseState;
    use ontodq_relational::Database;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ontodq-store-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fact(values: &[&str]) -> (String, Tuple) {
        ("M".to_string(), Tuple::from_iter(values.iter().copied()))
    }

    fn save_empty_snapshot(store: &mut Store, name: &str, version: u64) {
        let instance = Database::new();
        let state = ChaseState::from_parts(Database::new(), vec![], vec![], 0);
        store
            .save_snapshot(&ContextImage {
                name,
                version,
                program_fingerprint: 0,
                instance: &instance,
                state: &state,
            })
            .unwrap();
    }

    #[test]
    fn recovery_buckets_tails_after_the_snapshot_version() {
        let dir = temp_dir("buckets");
        let mut store = Store::open(&dir, StoreConfig::default()).unwrap();
        for seq in 1..=4u64 {
            store
                .append_batch("hospital", seq, &[fact(&["a", &seq.to_string()])])
                .unwrap();
        }
        store
            .append_batch("scaled", 1, &[fact(&["s", "1"])])
            .unwrap();
        // Snapshot hospital at version 2: batches 3 and 4 form its tail;
        // scaled has no snapshot, so its whole history is the tail.
        save_empty_snapshot(&mut store, "hospital", 2);
        drop(store);

        let mut reopened = Store::open(&dir, StoreConfig::default()).unwrap();
        let recovery = reopened.recover().unwrap();
        assert_eq!(recovery.snapshots.len(), 1);
        assert_eq!(recovery.snapshots["hospital"].version, 2);
        let hospital_tail = &recovery.tails["hospital"];
        assert_eq!(
            hospital_tail.iter().map(|b| b.seq).collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert_eq!(recovery.tails["scaled"].len(), 1);
        assert!(!recovery.truncated_tail);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_preserves_insert_retract_interleaving() {
        use crate::wal::BatchKind;
        let dir = temp_dir("interleave");
        let mut store = Store::open(&dir, StoreConfig::default()).unwrap();
        store
            .append_batch("hospital", 1, &[fact(&["a", "1"])])
            .unwrap();
        store
            .append_retraction("hospital", 2, &[fact(&["a", "1"])])
            .unwrap();
        store
            .append_batch("hospital", 3, &[fact(&["b", "2"])])
            .unwrap();
        // Snapshot at version 1: the retraction and the later insert form
        // the tail, in order.
        save_empty_snapshot(&mut store, "hospital", 1);
        drop(store);

        let mut reopened = Store::open(&dir, StoreConfig::default()).unwrap();
        let recovery = reopened.recover().unwrap();
        let tail = &recovery.tails["hospital"];
        assert_eq!(
            tail.iter().map(|b| (b.seq, b.kind)).collect::<Vec<_>>(),
            vec![(2, BatchKind::Retract), (3, BatchKind::Insert)]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_after_snapshots_leaves_no_tail() {
        let dir = temp_dir("compact");
        let mut store = Store::open(&dir, StoreConfig::default()).unwrap();
        for seq in 1..=3u64 {
            store
                .append_batch("hospital", seq, &[fact(&["a", &seq.to_string()])])
                .unwrap();
        }
        save_empty_snapshot(&mut store, "hospital", 3);
        let removed = store.compact().unwrap();
        assert_eq!(removed, 1);
        assert_eq!(store.wal_stats().segments, 0);
        // Appends after compaction land in a fresh segment and recover as
        // the tail on top of the snapshot.
        store
            .append_batch("hospital", 4, &[fact(&["b", "4"])])
            .unwrap();
        drop(store);
        let mut reopened = Store::open(&dir, StoreConfig::default()).unwrap();
        let recovery = reopened.recover().unwrap();
        assert_eq!(recovery.snapshots["hospital"].version, 3);
        assert_eq!(recovery.tails["hospital"].len(), 1);
        assert_eq!(recovery.tails["hospital"][0].seq, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// Compaction must not destroy durable state recovery surfaced for a
    /// context the current run never claimed — its batches live only in
    /// the log.
    #[test]
    fn compaction_is_refused_while_recovered_state_is_unclaimed() {
        let dir = temp_dir("unclaimed");
        let mut store = Store::open(&dir, StoreConfig::default()).unwrap();
        store
            .append_batch("hospital", 1, &[fact(&["a", "1"])])
            .unwrap();
        store
            .append_batch("scaled", 1, &[fact(&["s", "1"])])
            .unwrap();
        drop(store);

        let mut reopened = Store::open(&dir, StoreConfig::default()).unwrap();
        let _ = reopened.recover().unwrap();
        reopened.claim("hospital"); // 'scaled' stays unclaimed
        let err = reopened.compact().unwrap_err();
        assert!(err.to_string().contains("scaled"), "got {err}");
        // The log is intact; claiming the leftover context unblocks it.
        reopened.claim("scaled");
        assert_eq!(reopened.compact().unwrap(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn an_empty_directory_recovers_to_nothing() {
        let dir = temp_dir("empty");
        let mut store = Store::open(&dir, StoreConfig::default()).unwrap();
        let recovery = store.recover().unwrap();
        assert!(recovery.is_empty());
        assert_eq!(store.wal_stats(), WalStats::default());
        fs::remove_dir_all(&dir).unwrap();
    }
}
