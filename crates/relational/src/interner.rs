//! Symbol interning: the string side of the storage layer.
//!
//! Every string constant in the system is stored exactly once in a
//! [`SymbolInterner`] and referred to by a fixed-width [`Sym`] handle.  Hot
//! paths (join probes, index keys, tuple dedup sets) compare and hash a
//! `u32` instead of walking heap-allocated strings, which is what makes the
//! chase's per-tuple cost independent of constant length and instance size.
//!
//! # The interning contract
//!
//! * **One process-wide table.**  [`Value::str`](crate::Value::str) and the
//!   parsers intern through the [`SymbolInterner::global`] table, so two
//!   `Sym`s are comparable (`==`, `Hash`) **iff** they come from that table —
//!   which they do for every `Value` in the system.  [`crate::Database`]
//!   instances therefore share symbols freely: a tuple built for one database means
//!   the same thing in another ([`Database::interner`](crate::Database::interner)
//!   hands out the shared table).
//! * **Ids are identity, not order.**  `Sym` ids are assigned in first-intern
//!   order.  Equality of ids is equality of strings, but the numeric order of
//!   ids is meaningless; the lexicographic order of the underlying strings is
//!   recovered through [`Sym::as_str`], which is how
//!   [`Value`](crate::Value)'s total order stays the pre-interning string
//!   order.
//! * **Display resolves through the table.**  `Sym: Display` (and therefore
//!   `Value::Str`) prints the original string; `parse → intern → Display →
//!   parse` is the identity.
//! * **Interned strings live forever.**  The table leaks each distinct
//!   string once (`Box::leak`), so resolution returns `&'static str` without
//!   holding any lock while the caller uses it.  The leak is bounded by the
//!   number of *distinct* strings ever **parsed** — typically the active
//!   domain of the workload, but note that parsing interns before
//!   validation, so constants from rejected or discarded input count too.
//!   Front ends accepting untrusted traffic should quota or validate input
//!   before parsing it.
//! * **Readers never touch the write path.**  Resolving a `Sym` and
//!   interning an *already-known* string take the shared read lock only; the
//!   exclusive write lock is taken exactly when a genuinely new string is
//!   added.  [`SymbolInterner::write_acquisitions`] counts write-lock
//!   acquisitions so tests (and the server) can assert that snapshot readers
//!   run entirely on the read path.
//!
//! Isolated tables can be created with [`SymbolInterner::new`] for embedding
//! scenarios that must not share the process-wide symbol space; their ids
//! are independent (see the cross-table isolation tests).  Handles minted by
//! an isolated table are **only** meaningful through that table's
//! [`SymbolInterner::resolve`] — [`Sym::as_str`], `Sym: Display` and every
//! `Value` API are defined for globally-interned handles alone, so isolated
//! symbols must not be wrapped into `Value`s.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned string symbol: a fixed-width handle into the process-wide
/// symbol table.
///
/// `Sym` is `Copy`, compares and hashes as a `u32`, and resolves back to the
/// original string with [`Sym::as_str`].  Two `Sym`s are equal iff their
/// strings are equal (they come from the same global table).  There is
/// deliberately no `Ord` on `Sym`: id order is first-seen order, not
/// lexicographic order — string comparisons go through `as_str`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Intern `text` in the global table and return its symbol.
    pub fn new(text: &str) -> Sym {
        SymbolInterner::global().intern(text)
    }

    /// The interned string.  Resolution takes the table's read lock only
    /// and the returned reference is `'static` (interned strings are never
    /// freed), so callers can hold it without blocking anyone.
    ///
    /// Defined for handles minted by the **global** table (everything
    /// [`Sym::new`], `Value::str` and the parsers produce).  A handle from
    /// an isolated [`SymbolInterner::new`] table must be resolved through
    /// that table instead; passing one here panics (or, if the id happens
    /// to be in range, names an unrelated global string).
    pub fn as_str(self) -> &'static str {
        SymbolInterner::global()
            .resolve(self)
            .expect("Sym handles are only minted by the global interner")
    }

    /// The raw id (diagnostics only; ids carry no order).
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Interior of the interner: both views of the string ↔ id bijection.
#[derive(Debug, Default)]
struct Inner {
    /// string → id.  Keys are the same leaked allocations `strings` holds.
    map: HashMap<&'static str, u32>,
    /// id → string, indexed by `Sym` id.
    strings: Vec<&'static str>,
}

/// A thread-safe string ↔ [`Sym`] table — see the module docs for the
/// interning contract.
#[derive(Debug, Default)]
pub struct SymbolInterner {
    inner: RwLock<Inner>,
    /// Number of write-lock acquisitions (i.e. genuinely new symbols); lets
    /// tests assert that read-heavy phases never touch the write path.
    write_acquisitions: AtomicU64,
}

impl SymbolInterner {
    /// An empty, isolated table (independent of the global one).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide table every [`crate::Value`] resolves through.
    pub fn global() -> &'static SymbolInterner {
        static GLOBAL: OnceLock<SymbolInterner> = OnceLock::new();
        GLOBAL.get_or_init(SymbolInterner::new)
    }

    /// Intern `text`, returning its symbol.  Already-known strings are
    /// answered under the shared read lock; only a genuinely new string
    /// takes the exclusive write lock (double-checked, so a race between
    /// two writers of the same string yields one id).
    pub fn intern(&self, text: &str) -> Sym {
        if let Some(&id) = self.read().map.get(text) {
            return Sym(id);
        }
        self.write_acquisitions.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = inner.map.get(text) {
            return Sym(id);
        }
        let id = u32::try_from(inner.strings.len()).expect("fewer than 2^32 distinct symbols");
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        inner.strings.push(leaked);
        inner.map.insert(leaked, id);
        Sym(id)
    }

    /// The string behind `sym`, if this table minted it.
    pub fn resolve(&self, sym: Sym) -> Option<&'static str> {
        self.read().strings.get(sym.0 as usize).copied()
    }

    /// The symbol of `text`, if already interned (never takes the write
    /// lock).
    pub fn lookup(&self, text: &str) -> Option<Sym> {
        self.read().map.get(text).map(|&id| Sym(id))
    }

    /// Number of distinct symbols in the table.
    pub fn len(&self) -> usize {
        self.read().strings.len()
    }

    /// `true` when no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many times the exclusive write lock has been acquired — one per
    /// *new* symbol.  A phase that only resolves or re-interns known
    /// strings leaves this counter unchanged; the server's snapshot-reader
    /// tests assert exactly that.
    pub fn write_acquisitions(&self) -> u64 {
        self.write_acquisitions.load(Ordering::Relaxed)
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        // A poisoned lock only means a peer panicked mid-operation; the
        // table itself is append-only and stays consistent.
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_round_trips() {
        let table = SymbolInterner::new();
        let a = table.intern("Tom Waits");
        let b = table.intern("Tom Waits");
        let c = table.intern("Lou Reed");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(table.resolve(a), Some("Tom Waits"));
        assert_eq!(table.resolve(c), Some("Lou Reed"));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn lookup_never_interns() {
        let table = SymbolInterner::new();
        assert_eq!(table.lookup("missing"), None);
        let sym = table.intern("present");
        assert_eq!(table.lookup("present"), Some(sym));
        assert_eq!(table.len(), 1);
    }

    #[test]
    fn tables_are_isolated_from_each_other() {
        let a = SymbolInterner::new();
        let b = SymbolInterner::new();
        let in_a = a.intern("only-in-a");
        // Interning in `a` does not leak into `b`…
        assert_eq!(b.lookup("only-in-a"), None);
        assert!(b.is_empty());
        // …and ids are assigned independently: the same string gets each
        // table's own next id.
        let in_b = b.intern("only-in-b");
        assert_eq!(in_a.id(), 0);
        assert_eq!(in_b.id(), 0);
        assert_eq!(a.resolve(in_a), Some("only-in-a"));
        assert_eq!(b.resolve(in_b), Some("only-in-b"));
        // Resolving a foreign handle is a lookup miss, not a crash.
        let foreign = Sym(7);
        assert_eq!(a.resolve(foreign), None);
    }

    #[test]
    fn global_symbols_display_their_string() {
        let sym = Sym::new("Sep/5");
        assert_eq!(sym.as_str(), "Sep/5");
        assert_eq!(sym.to_string(), "Sep/5");
        assert_eq!(Sym::new("Sep/5"), sym);
    }

    #[test]
    fn known_strings_stay_on_the_read_path() {
        let table = SymbolInterner::new();
        table.intern("warm");
        let writes = table.write_acquisitions();
        for _ in 0..100 {
            table.intern("warm");
            table.resolve(Sym(0));
            table.lookup("warm");
        }
        assert_eq!(table.write_acquisitions(), writes);
        table.intern("cold");
        assert_eq!(table.write_acquisitions(), writes + 1);
    }

    #[test]
    fn concurrent_interning_yields_consistent_ids() {
        let table = std::sync::Arc::new(SymbolInterner::new());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let table = std::sync::Arc::clone(&table);
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| table.intern(&format!("s{}", (i + t) % 50)).id())
                        .collect::<Vec<u32>>()
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(table.len(), 50);
        // Every thread sees the same id for the same string.
        for i in 0..50 {
            let sym = table.lookup(&format!("s{i}")).unwrap();
            assert_eq!(table.resolve(sym), Some(&*format!("s{i}")));
        }
    }
}
