//! Databases: named collections of relation instances.

use crate::error::{RelationalError, Result};
use crate::interner::SymbolInterner;
use crate::null::NullId;
use crate::relation::RelationInstance;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A database instance: a map from relation names to relation instances.
///
/// A `Database` plays several roles in the system:
/// * the instance `D` under quality assessment,
/// * the contextual instance `C` (including the copies/footprints of `D`),
/// * the extensional data `D_M` of the multidimensional ontology
///   (category members, parent–child relations, categorical relations),
/// * the working instance of the chase.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: BTreeMap<String, RelationInstance>,
    /// Monotone epoch counter stamped onto inserts; advanced by
    /// [`Database::advance_epoch`] (the chase advances it once per round so
    /// each relation's delta is exactly the rows produced since the previous
    /// round).
    epoch: u64,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current epoch: rows inserted now are stamped with it.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The symbol table this database's string constants live in.
    ///
    /// All databases share the process-wide [`SymbolInterner`] (see its
    /// docs for the interning contract), so symbols — and therefore tuples
    /// — are freely comparable and movable across databases.  Batch loaders
    /// (CSV, the server's fact protocol) intern through this handle once at
    /// parse time; everything downstream operates on fixed-width ids.
    pub fn interner(&self) -> &'static SymbolInterner {
        SymbolInterner::global()
    }

    /// Advance the epoch by one and propagate it to every relation, so that
    /// subsequent inserts are distinguishable from all existing rows via
    /// [`RelationInstance::delta_since`].  Returns the new epoch.
    pub fn advance_epoch(&mut self) -> u64 {
        self.epoch += 1;
        let epoch = self.epoch;
        for relation in self.relations.values_mut() {
            relation.set_epoch(epoch);
        }
        epoch
    }

    /// Raise the epoch to at least `epoch` and propagate it to every
    /// relation.  The reload path of persistence layers: a serialized
    /// database records its epoch explicitly (it may sit above every row
    /// stamp after batches that inserted nothing new), and rule watermarks
    /// reference epochs, so the exact value must survive a round trip.
    /// Unlike [`Database::advance_epoch`] this never decreases the epoch
    /// and is a no-op when `epoch` is not ahead.
    pub fn raise_epoch(&mut self, epoch: u64) {
        if epoch > self.epoch {
            self.epoch = epoch;
            for relation in self.relations.values_mut() {
                relation.set_epoch(epoch);
            }
        }
    }

    /// Register an empty relation with `schema`.
    ///
    /// Registering the same name twice is fine when the schemas agree and an
    /// error otherwise.
    pub fn create_relation(&mut self, schema: RelationSchema) -> Result<()> {
        let name = schema.name().to_string();
        match self.relations.get(&name) {
            None => {
                let mut relation = RelationInstance::new(schema);
                relation.set_epoch(self.epoch);
                self.relations.insert(name, relation);
                Ok(())
            }
            Some(existing) if existing.schema() == &schema => Ok(()),
            Some(_) => Err(RelationalError::SchemaConflict(name)),
        }
    }

    /// Register a relation instance wholesale (replacing any existing
    /// relation of the same name).  The database epoch absorbs the
    /// relation's stamps so delta queries stay meaningful.
    pub fn insert_relation(&mut self, mut relation: RelationInstance) {
        self.epoch = self.epoch.max(relation.last_stamp().unwrap_or(0));
        relation.set_epoch(self.epoch);
        self.relations.insert(relation.name().to_string(), relation);
    }

    /// Does the database know a relation called `name`?
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// The relation called `name`.
    pub fn relation(&self, name: &str) -> Result<&RelationInstance> {
        self.relations
            .get(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_string()))
    }

    /// Mutable access to the relation called `name`.
    pub fn relation_mut(&mut self, name: &str) -> Result<&mut RelationInstance> {
        self.relations
            .get_mut(name)
            .ok_or_else(|| RelationalError::UnknownRelation(name.to_string()))
    }

    /// The relation called `name`, creating an untyped one of arity
    /// `arity` when missing.  Used by the Datalog± layer, whose predicates
    /// need not be declared in advance.
    pub fn relation_or_create(&mut self, name: &str, arity: usize) -> &mut RelationInstance {
        let epoch = self.epoch;
        self.relations.entry(name.to_string()).or_insert_with(|| {
            let mut relation = RelationInstance::new(RelationSchema::untyped(name, arity));
            relation.set_epoch(epoch);
            relation
        })
    }

    /// Insert a tuple into relation `name`, creating an untyped relation of
    /// matching arity when the relation is unknown.
    pub fn insert(&mut self, name: &str, tuple: Tuple) -> Result<bool> {
        if !self.relations.contains_key(name) {
            self.create_relation(RelationSchema::untyped(name, tuple.arity()))?;
        }
        self.relation_mut(name)?.insert(tuple)
    }

    /// Insert a tuple built from anything convertible into values.
    pub fn insert_values<I, V>(&mut self, name: &str, values: I) -> Result<bool>
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        self.insert(name, Tuple::from_iter(values))
    }

    /// Does relation `name` contain `tuple`?  Unknown relations contain
    /// nothing.
    pub fn contains(&self, name: &str, tuple: &Tuple) -> bool {
        self.relations
            .get(name)
            .map(|r| r.contains(tuple))
            .unwrap_or(false)
    }

    /// Iterate over the relation instances in name order.
    pub fn relations(&self) -> impl Iterator<Item = &RelationInstance> {
        self.relations.values()
    }

    /// The names of all relations, in name order.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Total number of **live** tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(RelationInstance::len).sum()
    }

    /// Total number of physical arena slots across all relations (live rows
    /// plus tombstones).
    pub fn total_rows(&self) -> usize {
        self.relations
            .values()
            .map(RelationInstance::total_rows)
            .sum()
    }

    /// Total number of tombstoned rows across all relations.
    pub fn dead_rows(&self) -> usize {
        self.relations
            .values()
            .map(RelationInstance::dead_rows)
            .sum()
    }

    /// Tombstone the row holding exactly `tuple` in relation `name`.
    /// Returns whether a live row was deleted; unknown relations hold
    /// nothing, so deleting from one is `false`, not an error.
    pub fn delete(&mut self, name: &str, tuple: &Tuple) -> bool {
        self.relations
            .get_mut(name)
            .map(|r| r.delete(tuple))
            .unwrap_or(false)
    }

    /// Compact every relation's arena, dropping tombstoned slots.  Returns
    /// the total number of slots reclaimed.
    pub fn compact(&mut self) -> usize {
        self.relations
            .values_mut()
            .map(RelationInstance::compact)
            .sum()
    }

    /// Number of relations.
    pub fn relation_count(&self) -> usize {
        self.relations.len()
    }

    /// Approximate heap footprint of the columnar arenas across all
    /// relations (value columns + stamp columns + index postings), in
    /// bytes.  Surfaced by the server's `!stats`.
    pub fn arena_bytes(&self) -> usize {
        self.relations
            .values()
            .map(RelationInstance::arena_bytes)
            .sum()
    }

    /// Approximate bytes held by tombstoned rows across all relations — the
    /// space a [`Database::compact`] would reclaim.
    pub fn reclaimable_bytes(&self) -> usize {
        self.relations
            .values()
            .map(RelationInstance::reclaimable_bytes)
            .sum()
    }

    /// All constants appearing anywhere in the database (the *active
    /// domain*), in sorted order.  Open conjunctive query answering draws
    /// candidate substitutions from this set.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.relations
            .values()
            .flat_map(|r| r.constants())
            .collect()
    }

    /// All labeled nulls appearing anywhere in the database.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.relations.values().flat_map(|r| r.nulls()).collect()
    }

    /// The largest labeled-null id in the database, if any; used to seed
    /// fresh-null generation when resuming a chase.
    pub fn max_null_id(&self) -> Option<u64> {
        self.nulls().iter().map(|n| n.id()).max()
    }

    /// Replace every occurrence of the labeled null `from` with `to` in every
    /// relation; returns the number of tuples changed.
    pub fn substitute_null(&mut self, from: NullId, to: &Value) -> usize {
        self.relations
            .values_mut()
            .map(|r| r.substitute_null(from, to))
            .sum()
    }

    /// Merge another database into this one: relations are created as needed
    /// and tuples unioned.  Returns the number of new tuples.
    pub fn merge(&mut self, other: &Database) -> Result<usize> {
        let mut added = 0;
        for relation in other.relations() {
            if !self.has_relation(relation.name()) {
                self.create_relation(relation.schema().clone())?;
            }
            let target = self.relation_mut(relation.name())?;
            for tuple in relation.iter() {
                if target.insert(tuple)? {
                    added += 1;
                }
            }
        }
        Ok(added)
    }

    /// A database holding only the relations named in `names` (unknown names
    /// are skipped).
    pub fn restrict_to(&self, names: &[&str]) -> Database {
        let mut db = Database::new();
        db.epoch = self.epoch;
        for name in names {
            if let Some(rel) = self.relations.get(*name) {
                db.insert_relation(rel.clone());
            }
        }
        db
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for relation in self.relations.values() {
            write!(f, "{relation}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn sample() -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::new(
            "PatientWard",
            vec![
                Attribute::string("Ward"),
                Attribute::string("Day"),
                Attribute::string("Patient"),
            ],
        ))
        .unwrap();
        db.insert_values("PatientWard", ["W1", "Sep/5", "Tom Waits"])
            .unwrap();
        db.insert_values("PatientWard", ["W2", "Sep/6", "Tom Waits"])
            .unwrap();
        db.insert_values("UnitWard", ["Standard", "W1"]).unwrap();
        db.insert_values("UnitWard", ["Standard", "W2"]).unwrap();
        db
    }

    #[test]
    fn create_and_lookup() {
        let db = sample();
        assert!(db.has_relation("PatientWard"));
        assert!(db.has_relation("UnitWard"));
        assert!(!db.has_relation("Shifts"));
        assert_eq!(db.relation("PatientWard").unwrap().len(), 2);
        assert!(db.relation("Shifts").is_err());
        assert_eq!(db.relation_count(), 2);
        assert_eq!(db.total_tuples(), 4);
    }

    #[test]
    fn create_relation_is_idempotent_for_equal_schemas() {
        let mut db = sample();
        let schema = db.relation("UnitWard").unwrap().schema().clone();
        assert!(db.create_relation(schema).is_ok());
        // Conflicting schema is rejected.
        let conflicting = RelationSchema::untyped("UnitWard", 3);
        assert!(matches!(
            db.create_relation(conflicting),
            Err(RelationalError::SchemaConflict(_))
        ));
    }

    #[test]
    fn insert_auto_creates_untyped_relations() {
        let mut db = Database::new();
        assert!(db.insert_values("Fresh", ["a", "b"]).unwrap());
        assert_eq!(db.relation("Fresh").unwrap().schema().arity(), 2);
    }

    #[test]
    fn contains_handles_unknown_relations() {
        let db = sample();
        assert!(db.contains("UnitWard", &Tuple::from_iter(["Standard", "W1"])));
        assert!(!db.contains("UnitWard", &Tuple::from_iter(["Standard", "W9"])));
        assert!(!db.contains("Nope", &Tuple::from_iter(["x"])));
    }

    #[test]
    fn active_domain_collects_constants() {
        let db = sample();
        let domain = db.active_domain();
        assert!(domain.contains(&Value::str("Tom Waits")));
        assert!(domain.contains(&Value::str("Standard")));
        assert!(domain.contains(&Value::str("W1")));
    }

    #[test]
    fn nulls_and_substitution_span_relations() {
        let mut db = sample();
        db.insert(
            "Shifts",
            Tuple::new(vec![Value::str("W1"), Value::null(NullId(3))]),
        )
        .unwrap();
        db.insert("Other", Tuple::new(vec![Value::null(NullId(3))]))
            .unwrap();
        assert_eq!(db.nulls().len(), 1);
        assert_eq!(db.max_null_id(), Some(3));
        let changed = db.substitute_null(NullId(3), &Value::str("morning"));
        assert_eq!(changed, 2);
        assert!(db.nulls().is_empty());
    }

    #[test]
    fn merge_unions_tuples() {
        let mut a = sample();
        let mut b = Database::new();
        b.insert_values("UnitWard", ["Intensive", "W3"]).unwrap();
        b.insert_values("UnitWard", ["Standard", "W1"]).unwrap(); // duplicate
        let added = a.merge(&b).unwrap();
        assert_eq!(added, 1);
        assert_eq!(a.relation("UnitWard").unwrap().len(), 3);
    }

    #[test]
    fn restrict_to_keeps_only_named_relations() {
        let db = sample();
        let restricted = db.restrict_to(&["UnitWard", "DoesNotExist"]);
        assert_eq!(restricted.relation_count(), 1);
        assert!(restricted.has_relation("UnitWard"));
    }

    #[test]
    fn relation_or_create_defaults_to_untyped() {
        let mut db = Database::new();
        db.relation_or_create("P", 3)
            .insert_unchecked(Tuple::from_iter(["a", "b", "c"]));
        assert_eq!(db.relation("P").unwrap().len(), 1);
        // A second call reuses the existing relation.
        db.relation_or_create("P", 3)
            .insert_unchecked(Tuple::from_iter(["d", "e", "f"]));
        assert_eq!(db.relation("P").unwrap().len(), 2);
    }

    #[test]
    fn relation_names_are_sorted() {
        let db = sample();
        assert_eq!(db.relation_names(), vec!["PatientWard", "UnitWard"]);
    }

    #[test]
    fn advance_epoch_partitions_inserts_into_deltas() {
        let mut db = sample();
        let before = db.epoch();
        let epoch = db.advance_epoch();
        assert_eq!(epoch, before + 1);
        db.insert_values("UnitWard", ["Oncology", "W9"]).unwrap();
        // Auto-created relations also pick up the current epoch.
        db.insert_values("Fresh", ["x"]).unwrap();
        let delta = db.relation("UnitWard").unwrap().delta_since(before);
        assert_eq!(delta, &[Tuple::from_iter(["Oncology", "W9"])]);
        assert_eq!(db.relation("Fresh").unwrap().delta_since(before).len(), 1);
        assert!(db
            .relation("PatientWard")
            .unwrap()
            .delta_since(before)
            .is_empty());
    }

    #[test]
    fn raise_epoch_restores_an_epoch_above_all_stamps() {
        let mut db = sample();
        db.advance_epoch();
        db.advance_epoch(); // epoch 2, no rows stamped past 0
        let mut reloaded = Database::new();
        for relation in db.relations() {
            reloaded.insert_relation(relation.clone());
        }
        // Absorbing the relations only recovers max stamp (0), not the
        // advanced epoch.
        assert_eq!(reloaded.epoch(), 0);
        reloaded.raise_epoch(db.epoch());
        assert_eq!(reloaded.epoch(), 2);
        // Raising backwards is a no-op.
        reloaded.raise_epoch(1);
        assert_eq!(reloaded.epoch(), 2);
        // New inserts land strictly after the restored epoch boundary.
        reloaded
            .insert_values("UnitWard", ["Oncology", "W9"])
            .unwrap();
        assert_eq!(
            reloaded.relation("UnitWard").unwrap().delta_since(1).len(),
            1
        );
    }

    #[test]
    fn delete_tombstones_and_compact_reclaims() {
        let mut db = sample();
        assert!(db.delete("UnitWard", &Tuple::from_iter(["Standard", "W1"])));
        assert!(!db.delete("UnitWard", &Tuple::from_iter(["Standard", "W1"])));
        assert!(!db.delete("Nope", &Tuple::from_iter(["x"])));
        assert_eq!(db.total_tuples(), 3);
        assert_eq!(db.total_rows(), 4);
        assert_eq!(db.dead_rows(), 1);
        assert!(db.reclaimable_bytes() > 0);
        assert_eq!(db.compact(), 1);
        assert_eq!(db.total_rows(), 3);
        assert_eq!(db.dead_rows(), 0);
        assert_eq!(db.reclaimable_bytes(), 0);
        assert!(!db.contains("UnitWard", &Tuple::from_iter(["Standard", "W1"])));
    }

    /// Regression test for the stale-index hazard: substituting a null
    /// through the database must leave every per-relation hash index
    /// consistent with the rewritten tuples — an indexed select must agree
    /// with a full scan for both the old and the new key.
    #[test]
    fn substitute_null_keeps_indexes_consistent() {
        let mut db = sample();
        db.insert(
            "Shifts",
            Tuple::new(vec![Value::str("W1"), Value::null(NullId(3))]),
        )
        .unwrap();
        db.insert(
            "Shifts",
            Tuple::new(vec![Value::str("W2"), Value::str("evening")]),
        )
        .unwrap();
        db.relation_mut("Shifts").unwrap().build_index(1);
        db.relation_mut("UnitWard").unwrap().build_index(0);

        db.substitute_null(NullId(3), &Value::str("morning"));

        let shifts = db.relation("Shifts").unwrap();
        assert!(shifts.has_index(1));
        // Old key must be gone from the index…
        assert!(shifts.select(&[(1, &Value::null(NullId(3)))]).is_empty());
        // …and the new key must be reachable through it, agreeing with a
        // scan.
        let indexed = shifts.select(&[(1, &Value::str("morning"))]);
        let scanned: Vec<Tuple> = shifts
            .iter()
            .filter(|t| t.get(1) == Some(&Value::str("morning")))
            .collect();
        assert_eq!(indexed, scanned);
        assert_eq!(indexed.len(), 1);
        // Untouched relations keep working through their indexes too.
        assert_eq!(
            db.relation("UnitWard")
                .unwrap()
                .select(&[(0, &Value::str("Standard"))])
                .len(),
            2
        );
    }
}
