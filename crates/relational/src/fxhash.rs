//! A fast, non-cryptographic hasher for join and index keys.
//!
//! `std`'s default SipHash is DoS-resistant but costs tens of cycles per
//! key; the chase hashes millions of small keys (interned [`crate::Value`]s,
//! short tuples) where that overhead dominates.  This module hand-rolls the
//! well-known *FxHash* multiply-rotate scheme (the hasher rustc itself uses
//! for its interned ids) so the workspace stays free of external crates.
//!
//! The hasher is **not** HashDoS-resistant: use it for keys derived from
//! interned ids and internal row numbers, not for raw attacker-controlled
//! strings (the interner's own string → id map keeps `std`'s default
//! hasher for exactly that reason).

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant of FxHash (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; see the module docs.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while let Some((chunk, tail)) = rest.split_first_chunk::<8>() {
            self.add_to_hash(u64::from_le_bytes(*chunk));
            rest = tail;
        }
        if let Some((chunk, tail)) = rest.split_first_chunk::<4>() {
            self.add_to_hash(u64::from(u32::from_le_bytes(*chunk)));
            rest = tail;
        }
        for &byte in rest {
            self.add_to_hash(u64::from(byte));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    #[test]
    fn equal_inputs_hash_equal() {
        assert_eq!(hash_of(&42u32), hash_of(&42u32));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
        assert_eq!(hash_of(&(1u64, "x")), hash_of(&(1u64, "x")));
    }

    #[test]
    fn different_inputs_usually_hash_differently() {
        let hashes: std::collections::HashSet<u64> = (0u32..1_000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1_000);
    }

    #[test]
    fn byte_slices_of_every_tail_length_work() {
        for len in 0..32usize {
            let bytes: Vec<u8> = (0..len as u8).collect();
            let mut h = FxHasher::default();
            h.write(&bytes);
            let mut h2 = FxHasher::default();
            h2.write(&bytes);
            assert_eq!(h.finish(), h2.finish());
        }
    }

    #[test]
    fn maps_and_sets_behave() {
        let mut map: FxHashMap<&str, usize> = FxHashMap::default();
        map.insert("a", 1);
        map.insert("b", 2);
        assert_eq!(map.get("a"), Some(&1));
        let mut set: FxHashSet<u32> = FxHashSet::default();
        set.insert(7);
        assert!(set.contains(&7));
        assert!(!set.contains(&8));
    }
}
