//! Tuples.

use crate::null::NullId;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A tuple of values.
///
/// The value storage is a shared `Arc<[Value]>`: cloning a tuple — which the
/// chase does constantly when the same row enters index postings, delta
/// windows, dedup sets and trigger batches — bumps a reference count instead
/// of copying the payload.  Tuples are immutable; the "mutating" helpers
/// ([`Tuple::project`], [`Tuple::substitute_null`]) build new tuples.  The
/// schema a tuple conforms to lives in the relation instance holding it.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    values: Arc<[Value]>,
}

impl Tuple {
    /// Construct a tuple from values.
    pub fn new(values: Vec<Value>) -> Self {
        Self {
            values: values.into(),
        }
    }

    /// Construct a tuple from anything convertible into values.
    ///
    /// Deliberately an inherent method (not the `FromIterator` trait): the
    /// generic `V: Into<Value>` bound lets call sites write
    /// `Tuple::from_iter(["a", "b"])`, which trait-based collection cannot
    /// infer.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I, V>(values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Self {
            values: values.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of values.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at `position`, if in range.
    pub fn get(&self, position: usize) -> Option<&Value> {
        self.values.get(position)
    }

    /// Owned values, consuming the tuple ([`Value`]s are plain scalars, so
    /// this is a flat copy of the shared storage).
    pub fn into_values(self) -> Vec<Value> {
        self.values.to_vec()
    }

    /// `true` when no value in the tuple is a labeled null.
    pub fn is_ground(&self) -> bool {
        self.values.iter().all(Value::is_constant)
    }

    /// The labeled nulls occurring in the tuple, in positional order
    /// (duplicates preserved).
    pub fn nulls(&self) -> Vec<NullId> {
        self.values.iter().filter_map(Value::as_null).collect()
    }

    /// A copy of the tuple restricted to `positions`, in the given order.
    ///
    /// Out-of-range positions are silently skipped; callers validate
    /// positions against the schema beforehand.
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple::new(
            positions
                .iter()
                .filter_map(|&p| self.values.get(p).copied())
                .collect(),
        )
    }

    /// A copy of the tuple with every occurrence of null `from` replaced by
    /// `to`.  Used by EGD enforcement.
    pub fn substitute_null(&self, from: NullId, to: &Value) -> Tuple {
        Tuple::new(
            self.values
                .iter()
                .map(|v| match v {
                    Value::Null(id) if *id == from => *to,
                    other => *other,
                })
                .collect(),
        )
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let t = Tuple::from_iter(["W1", "Sep/5", "Tom Waits"]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::str("W1")));
        assert_eq!(t.get(3), None);
        assert_eq!(t.values().len(), 3);
    }

    #[test]
    fn groundness_and_nulls() {
        let ground = Tuple::from_iter(["a", "b"]);
        assert!(ground.is_ground());
        assert!(ground.nulls().is_empty());

        let with_null = Tuple::new(vec![Value::str("a"), Value::null(NullId(7))]);
        assert!(!with_null.is_ground());
        assert_eq!(with_null.nulls(), vec![NullId(7)]);
    }

    #[test]
    fn projection_preserves_order_and_skips_out_of_range() {
        let t = Tuple::from_iter(["a", "b", "c"]);
        assert_eq!(t.project(&[2, 0]), Tuple::from_iter(["c", "a"]));
        assert_eq!(t.project(&[5]), Tuple::new(vec![]));
        assert_eq!(t.project(&[1, 1]), Tuple::from_iter(["b", "b"]));
    }

    #[test]
    fn substitute_null_replaces_all_occurrences() {
        let t = Tuple::new(vec![
            Value::null(NullId(1)),
            Value::str("x"),
            Value::null(NullId(1)),
            Value::null(NullId(2)),
        ]);
        let replaced = t.substitute_null(NullId(1), &Value::str("W2"));
        assert_eq!(
            replaced,
            Tuple::new(vec![
                Value::str("W2"),
                Value::str("x"),
                Value::str("W2"),
                Value::null(NullId(2)),
            ])
        );
    }

    #[test]
    fn display_renders_parenthesized_list() {
        let t = Tuple::from_iter(["W1", "Helen"]);
        assert_eq!(t.to_string(), "(W1, Helen)");
    }

    #[test]
    fn tuples_are_hashable_and_ordered() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(Tuple::from_iter(["b"]));
        set.insert(Tuple::from_iter(["a"]));
        set.insert(Tuple::from_iter(["a"]));
        assert_eq!(set.len(), 2);
        assert_eq!(set.iter().next().unwrap(), &Tuple::from_iter(["a"]));
    }

    #[test]
    fn into_values_round_trips() {
        let t = Tuple::from_iter([1i64, 2, 3]);
        let vals = t.clone().into_values();
        assert_eq!(Tuple::new(vals), t);
    }
}
