//! # ontodq-relational
//!
//! In-memory relational substrate for the `ontodq` system — the Rust
//! reproduction of *"Extending Contexts with Ontologies for Multidimensional
//! Data Quality Assessment"* (Milani, Bertossi, Ariyan; ICDE 2014).
//!
//! The crate provides the data model every other layer builds on:
//!
//! * [`Value`] — domain constants (strings, integers, doubles, booleans,
//!   timestamps) and **labeled nulls** introduced by existential rules,
//! * [`Tuple`], [`RelationSchema`], [`RelationInstance`] — typed relations
//!   with set semantics and optional hash [`index`]es,
//! * [`Database`] — named collections of relations playing the roles of the
//!   instance under assessment `D`, the contextual instance `C`, and the
//!   extensional data `D_M` of the multidimensional ontology,
//! * a tiny [`csv`] loader used by examples and benches.
//!
//! The substrate is deliberately free of external dependencies and free of
//! query-processing logic: conjunctive-query evaluation lives in
//! `ontodq-chase`, and everything ontology-specific lives in `ontodq-datalog`
//! and `ontodq-mdm`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod counters;
pub mod csv;
pub mod database;
pub mod error;
pub mod fxhash;
pub mod index;
pub mod interner;
pub mod null;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod value;

pub use counters::JoinCounters;
pub use database::Database;
pub use error::{RelationalError, Result};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use index::{clamp_sorted, contains_sorted, intersect_sorted, HashIndex};
pub use interner::{Sym, SymbolInterner};
pub use null::{NullGenerator, NullId};
pub use relation::{RelationInstance, StampWindow};
pub use schema::{Attribute, AttributeType, RelationSchema};
pub use tuple::Tuple;
pub use value::Value;

// Compile-time thread-safety audit: `ontodq-server` shares immutable
// `Arc<Database>` snapshots across reader threads and moves whole databases
// between writer and worker threads, so the substrate must stay `Send +
// Sync` (no interior mutability, no `Rc`).  A regression fails right here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Value>();
    assert_send_sync::<Tuple>();
    assert_send_sync::<RelationInstance>();
    assert_send_sync::<Database>();
    assert_send_sync::<NullGenerator>();
    assert_send_sync::<HashIndex>();
    assert_send_sync::<Sym>();
    assert_send_sync::<SymbolInterner>();
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            "[a-zA-Z0-9 ]{0,12}".prop_map(Value::str),
            any::<i64>().prop_map(Value::int),
            any::<f64>()
                .prop_filter("finite", |d| d.is_finite())
                .prop_map(Value::double),
            any::<bool>().prop_map(Value::bool),
            (0i64..1_000_000).prop_map(Value::time),
            (0u64..64).prop_map(|id| Value::null(NullId(id))),
        ]
    }

    proptest! {
        /// The order on values is total and consistent with equality.
        #[test]
        fn value_order_is_total(a in arb_value(), b in arb_value()) {
            use std::cmp::Ordering;
            match a.cmp(&b) {
                Ordering::Equal => prop_assert_eq!(&a, &b),
                Ordering::Less => prop_assert_eq!(b.cmp(&a), Ordering::Greater),
                Ordering::Greater => prop_assert_eq!(b.cmp(&a), Ordering::Less),
            }
        }

        /// Equal values hash identically.
        #[test]
        fn equal_values_hash_equal(a in arb_value()) {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let b = a;
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }

        /// Time parsing and formatting round-trip.
        #[test]
        fn time_round_trips(minutes in 0i64..(365 * 24 * 60)) {
            let rendered = Value::format_time(minutes);
            let parsed = Value::parse_time(&rendered).unwrap();
            prop_assert_eq!(parsed, Value::time(minutes));
        }

        /// Inserting the same tuples twice leaves a relation unchanged
        /// (set semantics), regardless of the tuples generated.
        #[test]
        fn relation_insert_is_idempotent(
            rows in proptest::collection::vec(proptest::collection::vec(arb_value(), 3), 0..20)
        ) {
            let schema = RelationSchema::untyped("R", 3);
            let mut rel = RelationInstance::new(schema);
            for row in &rows {
                rel.insert_unchecked(Tuple::new(row.clone()));
            }
            let size = rel.len();
            for row in &rows {
                rel.insert_unchecked(Tuple::new(row.clone()));
            }
            prop_assert_eq!(rel.len(), size);
        }

        /// Selection with an index agrees with a full scan.
        #[test]
        fn indexed_select_equals_scan(
            rows in proptest::collection::vec(proptest::collection::vec(arb_value(), 2), 0..30),
            probe in arb_value()
        ) {
            let schema = RelationSchema::untyped("R", 2);
            let mut scan_rel = RelationInstance::new(schema.clone());
            let mut idx_rel = RelationInstance::new(schema);
            for row in &rows {
                scan_rel.insert_unchecked(Tuple::new(row.clone()));
                idx_rel.insert_unchecked(Tuple::new(row.clone()));
            }
            idx_rel.build_index(0);
            let bindings = vec![(0usize, &probe)];
            let scan: Vec<Tuple> = scan_rel.select(&bindings);
            let indexed: Vec<Tuple> = idx_rel.select(&bindings);
            prop_assert_eq!(scan, indexed);
        }

        /// Null substitution removes the substituted null from the database.
        #[test]
        fn substitution_eliminates_null(
            rows in proptest::collection::vec(proptest::collection::vec(arb_value(), 2), 1..20)
        ) {
            let mut db = Database::new();
            for row in &rows {
                db.insert("R", Tuple::new(row.clone())).unwrap();
            }
            db.insert("S", Tuple::new(vec![Value::null(NullId(999)), Value::str("x")])).unwrap();
            db.substitute_null(NullId(999), &Value::str("replacement"));
            prop_assert!(!db.nulls().contains(&NullId(999)));
        }
    }
}
