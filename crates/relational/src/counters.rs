//! Process-wide join-engine counters.
//!
//! The columnar join kernels sit far below the server's public surface, so
//! their operational counters are plain relaxed atomics (like the
//! [`crate::SymbolInterner`]'s write counter) rather than values threaded
//! through every call signature.  `ontodq-server` surfaces a
//! [`snapshot`] in `!stats`; benches diff snapshots around a measured
//! region to report per-trigger costs.
//!
//! The counters are monotone totals for the whole process, incremented with
//! `Ordering::Relaxed` — they are observability data, not synchronization,
//! and the increments are hoisted to once-per-probe granularity so the hot
//! loops stay atomic-free.

use std::sync::atomic::{AtomicU64, Ordering};

/// Id-returning probes answered by [`crate::RelationInstance::select_ids_into`].
static PROBES: AtomicU64 = AtomicU64::new(0);

/// Galloping (exponential-search) steps taken while intersecting sorted
/// row-id postings lists.
static GALLOP_SEEKS: AtomicU64 = AtomicU64::new(0);

/// Value seeks performed by the worst-case-optimal (leapfrog-style) join
/// path: one per candidate-set restriction to a join value.
static WCO_SEEKS: AtomicU64 = AtomicU64::new(0);

/// Tuples materialized out of the columnar arena
/// ([`crate::RelationInstance::row_tuple`] and everything built on it) —
/// each is one `Arc<[Value]>` allocation.  The workspace forbids `unsafe`,
/// so benches cannot hook the global allocator; this counter is the
/// observable proxy for the per-probe allocations the row-oriented engine
/// used to make (`Vec<&Tuple>` per probe, a `Tuple` clone per matched
/// row), which the id-returning probe path avoids entirely.
static MATERIALIZATIONS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time copy of the join counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JoinCounters {
    /// Total id-returning probes.
    pub probes: u64,
    /// Total galloping intersection steps.
    pub gallop_seeks: u64,
    /// Total worst-case-optimal value seeks.
    pub wco_seeks: u64,
    /// Total tuples materialized from the arena (one allocation each).
    pub materializations: u64,
}

impl JoinCounters {
    /// Counter deltas since `earlier` (saturating, so a stale baseline
    /// never underflows).
    pub fn since(&self, earlier: &JoinCounters) -> JoinCounters {
        JoinCounters {
            probes: self.probes.saturating_sub(earlier.probes),
            gallop_seeks: self.gallop_seeks.saturating_sub(earlier.gallop_seeks),
            wco_seeks: self.wco_seeks.saturating_sub(earlier.wco_seeks),
            materializations: self
                .materializations
                .saturating_sub(earlier.materializations),
        }
    }
}

/// Record one id-returning probe.
#[inline]
pub fn record_probe() {
    PROBES.fetch_add(1, Ordering::Relaxed);
}

/// Record `n` galloping steps taken by a postings intersection.
#[inline]
pub fn record_gallop_seeks(n: u64) {
    if n > 0 {
        GALLOP_SEEKS.fetch_add(n, Ordering::Relaxed);
    }
}

/// Record one worst-case-optimal value seek.
#[inline]
pub fn record_wco_seek() {
    WCO_SEEKS.fetch_add(1, Ordering::Relaxed);
}

/// Record `n` tuple materializations out of the arena.
#[inline]
pub fn record_materializations(n: u64) {
    if n > 0 {
        MATERIALIZATIONS.fetch_add(n, Ordering::Relaxed);
    }
}

/// The current totals.
pub fn snapshot() -> JoinCounters {
    JoinCounters {
        probes: PROBES.load(Ordering::Relaxed),
        gallop_seeks: GALLOP_SEEKS.load(Ordering::Relaxed),
        wco_seeks: WCO_SEEKS.load(Ordering::Relaxed),
        materializations: MATERIALIZATIONS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_monotone_and_diffable() {
        let before = snapshot();
        record_probe();
        record_gallop_seeks(3);
        record_wco_seek();
        record_materializations(2);
        record_gallop_seeks(0); // no-op
        record_materializations(0); // no-op
        let after = snapshot();
        let delta = after.since(&before);
        // Other tests may run concurrently, so deltas are lower bounds.
        assert!(delta.probes >= 1);
        assert!(delta.gallop_seeks >= 3);
        assert!(delta.wco_seeks >= 1);
        assert!(delta.materializations >= 2);
        // A stale (larger) baseline saturates instead of wrapping.
        assert_eq!(before.since(&after), JoinCounters::default());
    }
}
