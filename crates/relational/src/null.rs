//! Labeled nulls.
//!
//! Datalog± existential rules introduce *labeled nulls*: fresh values that
//! stand for unknown-but-existing domain elements.  The paper uses them in two
//! places: for missing non-categorical attributes when navigating downwards
//! (rule (8): the unknown shift `z`), and for unknown category members when
//! navigating downwards with existential categorical variables (rule (9)/(10):
//! the unknown unit `u`).
//!
//! Nulls compare equal only to themselves.  They can later be *unified* with
//! constants or with other nulls by equality-generating dependencies; the
//! [`crate::Database::substitute_null`] operation performs the global
//! replacement required by EGD enforcement.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a labeled null.
///
/// Identifiers are plain integers; equality of nulls is identity of ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NullId(pub u64);

impl NullId {
    /// Raw numeric id.
    pub fn id(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

/// Generator of fresh labeled nulls.
///
/// The generator is thread-safe (the chase engine may parallelize trigger
/// evaluation) and monotone: ids are never reused within a generator.
#[derive(Debug, Default)]
pub struct NullGenerator {
    next: AtomicU64,
}

impl NullGenerator {
    /// A generator that starts numbering nulls at zero.
    pub fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
        }
    }

    /// A generator that starts numbering at `start`; useful when resuming a
    /// chase over an instance that already contains nulls.
    pub fn starting_at(start: u64) -> Self {
        Self {
            next: AtomicU64::new(start),
        }
    }

    /// Produce a fresh null id.
    pub fn fresh(&self) -> NullId {
        NullId(self.next.fetch_add(1, Ordering::Relaxed))
    }

    /// The id the next call to [`NullGenerator::fresh`] would return.
    pub fn peek(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Ensure future nulls are numbered strictly above `floor`.
    ///
    /// Used when loading an instance that already contains labeled nulls so
    /// that freshly generated nulls cannot collide with existing ones.
    pub fn bump_past(&self, floor: u64) {
        let mut current = self.next.load(Ordering::Relaxed);
        while current <= floor {
            match self.next.compare_exchange(
                current,
                floor + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(observed) => current = observed,
            }
        }
    }
}

impl Clone for NullGenerator {
    fn clone(&self) -> Self {
        Self {
            next: AtomicU64::new(self.peek()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_distinct_and_increasing() {
        let gen = NullGenerator::new();
        let a = gen.fresh();
        let b = gen.fresh();
        let c = gen.fresh();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert!(a < b && b < c);
    }

    #[test]
    fn starting_at_respects_start() {
        let gen = NullGenerator::starting_at(100);
        assert_eq!(gen.fresh(), NullId(100));
        assert_eq!(gen.fresh(), NullId(101));
    }

    #[test]
    fn bump_past_prevents_collisions() {
        let gen = NullGenerator::new();
        gen.bump_past(41);
        assert_eq!(gen.fresh(), NullId(42));
        // Bumping below the current counter is a no-op.
        gen.bump_past(10);
        assert_eq!(gen.fresh(), NullId(43));
    }

    #[test]
    fn display_uses_bottom_symbol() {
        assert_eq!(NullId(7).to_string(), "⊥7");
    }

    #[test]
    fn clone_preserves_counter() {
        let gen = NullGenerator::new();
        gen.fresh();
        gen.fresh();
        let cloned = gen.clone();
        assert_eq!(cloned.peek(), 2);
        assert_eq!(cloned.fresh(), NullId(2));
    }

    #[test]
    fn generator_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NullGenerator>();
    }
}
