//! Domain values.
//!
//! A [`Value`] is either a *constant* from the underlying domain (strings,
//! integers, doubles, booleans, and timestamps) or a *labeled null*
//! introduced by existential rules during the chase.
//!
//! Values are totally ordered and hashable so they can be used as join keys
//! and index keys.  String constants are interned [`Sym`]s, so equality and
//! hashing are fixed-width id operations; the total order still compares the
//! underlying strings lexicographically (resolved through the global
//! [`crate::SymbolInterner`]), so interning is invisible to ordering-
//! sensitive consumers.  Doubles are ordered by their IEEE-754 total order
//! (via the bit representation adjusted for sign), which is sufficient for
//! the comparison built-ins used by quality predicates.

use crate::interner::Sym;
use crate::null::NullId;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Minutes in a day; used by [`Value::time`] helpers.
const MINUTES_PER_DAY: i64 = 24 * 60;

/// Month names used by the paper's running example ("Sep/5-12:10").
const MONTHS: [&str; 12] = [
    "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
];

/// Cumulative days before the start of each month (non-leap year).
const MONTH_OFFSETS: [i64; 12] = [0, 31, 59, 90, 120, 151, 181, 212, 243, 273, 304, 334];

/// A domain value or a labeled null.
///
/// All variants are small scalars (string constants are interned
/// [`Sym`] handles), so cloning a value is a copy and comparing or hashing
/// one never follows a heap pointer except to order strings.
#[derive(Debug, Clone, Copy)]
pub enum Value {
    /// A string constant, interned in the global symbol table.
    Str(Sym),
    /// A 64-bit signed integer constant.
    Int(i64),
    /// A double-precision floating-point constant.
    Double(f64),
    /// A boolean constant.
    Bool(bool),
    /// A point in time, measured in minutes since an arbitrary epoch.
    ///
    /// The paper's running example uses timestamps such as `Sep/5-12:10`;
    /// [`Value::parse_time`] parses that format.
    Time(i64),
    /// A labeled null (unknown but existing value).
    Null(NullId),
}

impl Value {
    /// String constant constructor; interns the string in the global
    /// symbol table.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Sym::new(s.as_ref()))
    }

    /// Integer constant constructor.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Double constant constructor.
    pub fn double(d: f64) -> Self {
        Value::Double(d)
    }

    /// Boolean constant constructor.
    pub fn bool(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Timestamp constructor from raw minutes.
    pub fn time(minutes: i64) -> Self {
        Value::Time(minutes)
    }

    /// Labeled-null constructor.
    pub fn null(id: NullId) -> Self {
        Value::Null(id)
    }

    /// Parse a timestamp in the paper's `Mon/D-HH:MM` or `Mon/D` format
    /// (e.g. `Sep/5-12:10`, `Aug/2005` is *not* a timestamp but a month
    /// member and stays a string).  Returns `None` when the input does not
    /// match the format.
    pub fn parse_time(text: &str) -> Option<Self> {
        let (date, clock) = match text.split_once('-') {
            Some((d, c)) => (d, Some(c)),
            None => (text, None),
        };
        let (month, day) = date.split_once('/')?;
        let month_idx = MONTHS.iter().position(|m| *m == month)?;
        let day: i64 = day.parse().ok()?;
        if !(1..=31).contains(&day) {
            return None;
        }
        let mut minutes = (MONTH_OFFSETS[month_idx] + (day - 1)) * MINUTES_PER_DAY;
        if let Some(clock) = clock {
            let (h, m) = clock.split_once(':')?;
            let h: i64 = h.parse().ok()?;
            let m: i64 = m.parse().ok()?;
            if !(0..24).contains(&h) || !(0..60).contains(&m) {
                return None;
            }
            minutes += h * 60 + m;
        }
        Some(Value::Time(minutes))
    }

    /// Render a [`Value::Time`] back in the `Mon/D-HH:MM` format.
    pub fn format_time(minutes: i64) -> String {
        let day_index = minutes.div_euclid(MINUTES_PER_DAY);
        let within = minutes.rem_euclid(MINUTES_PER_DAY);
        let (month_idx, day) = MONTH_OFFSETS
            .iter()
            .enumerate()
            .rev()
            .find(|(_, off)| day_index >= **off)
            .map(|(i, off)| (i, day_index - off + 1))
            .unwrap_or((0, day_index + 1));
        format!(
            "{}/{}-{:02}:{:02}",
            MONTHS[month_idx],
            day,
            within / 60,
            within % 60
        )
    }

    /// `true` when the value is a labeled null.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// `true` when the value is a constant (i.e. not a labeled null).
    pub fn is_constant(&self) -> bool {
        !self.is_null()
    }

    /// The null id, when the value is a labeled null.
    pub fn as_null(&self) -> Option<NullId> {
        match self {
            Value::Null(id) => Some(*id),
            _ => None,
        }
    }

    /// The string content, when the value is a string constant.
    pub fn as_str(&self) -> Option<&'static str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The interned symbol, when the value is a string constant.
    pub fn as_sym(&self) -> Option<Sym> {
        match self {
            Value::Str(s) => Some(*s),
            _ => None,
        }
    }

    /// The integer content, when the value is an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The double content, when the value is a double constant.
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// The minutes content, when the value is a timestamp.
    pub fn as_time(&self) -> Option<i64> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// A human-readable name for the value's kind; used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Str(_) => "String",
            Value::Int(_) => "Integer",
            Value::Double(_) => "Double",
            Value::Bool(_) => "Boolean",
            Value::Time(_) => "Time",
            Value::Null(_) => "Null",
        }
    }

    /// Numeric view used by comparison built-ins: integers, doubles and
    /// timestamps are comparable with one another.
    pub fn numeric(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            Value::Time(t) => Some(*t as f64),
            _ => None,
        }
    }

    /// Discriminant rank used by the total order across kinds.
    fn rank(&self) -> u8 {
        match self {
            Value::Bool(_) => 0,
            Value::Int(_) => 1,
            Value::Double(_) => 2,
            Value::Time(_) => 3,
            Value::Str(_) => 4,
            Value::Null(_) => 5,
        }
    }

    /// Total-order key for doubles (sign-adjusted IEEE bits).
    fn double_key(d: f64) -> u64 {
        let bits = d.to_bits();
        if bits & (1 << 63) != 0 {
            !bits
        } else {
            bits | (1 << 63)
        }
    }
}

impl PartialEq for Value {
    /// Equality is a pure scalar comparison: interned strings compare by
    /// symbol id (equal ids ⇔ equal strings in the shared global table), so
    /// the join hot path never touches string data.
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Str(a), Str(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Double(a), Double(b)) => Value::double_key(*a) == Value::double_key(*b),
            (Bool(a), Bool(b)) => a == b,
            (Time(a), Time(b)) => a == b,
            (Null(a), Null(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// The total order is unchanged by interning: string constants order by
    /// their *resolved* strings (lexicographically), not by symbol id.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => Value::double_key(*a).cmp(&Value::double_key(*b)),
            (Time(a), Time(b)) => a.cmp(b),
            (Str(a), Str(b)) => {
                if a == b {
                    Ordering::Equal
                } else {
                    a.as_str().cmp(b.as_str())
                }
            }
            (Null(a), Null(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Str(s) => s.id().hash(state),
            Value::Int(i) => i.hash(state),
            Value::Double(d) => Value::double_key(*d).hash(state),
            Value::Bool(b) => b.hash(state),
            Value::Time(t) => t.hash(state),
            Value::Null(id) => id.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Time(t) => write!(f, "{}", Value::format_time(*t)),
            Value::Null(id) => write!(f, "{id}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::str(&s)
    }
}

impl From<Sym> for Value {
    fn from(s: Sym) -> Self {
        Value::Str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}

impl From<f64> for Value {
    fn from(d: f64) -> Self {
        Value::Double(d)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<NullId> for Value {
    fn from(id: NullId) -> Self {
        Value::Null(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn constructors_and_kind() {
        assert_eq!(Value::str("a").kind(), "String");
        assert_eq!(Value::int(1).kind(), "Integer");
        assert_eq!(Value::double(1.5).kind(), "Double");
        assert_eq!(Value::bool(true).kind(), "Boolean");
        assert_eq!(Value::time(10).kind(), "Time");
        assert_eq!(Value::null(NullId(0)).kind(), "Null");
    }

    #[test]
    fn nulls_equal_only_themselves() {
        let n0 = Value::null(NullId(0));
        let n1 = Value::null(NullId(1));
        assert_eq!(n0, Value::null(NullId(0)));
        assert_ne!(n0, n1);
        assert_ne!(n0, Value::str("⊥0"));
    }

    #[test]
    fn parse_time_full_format() {
        let v = Value::parse_time("Sep/5-12:10").unwrap();
        let t = v.as_time().unwrap();
        assert_eq!(Value::format_time(t), "Sep/5-12:10");
    }

    #[test]
    fn parse_time_date_only() {
        let v = Value::parse_time("Sep/5").unwrap();
        assert_eq!(Value::format_time(v.as_time().unwrap()), "Sep/5-00:00");
    }

    #[test]
    fn parse_time_rejects_garbage() {
        assert!(Value::parse_time("September").is_none());
        assert!(Value::parse_time("Sep/").is_none());
        assert!(Value::parse_time("Sep/40").is_none());
        assert!(Value::parse_time("Sep/5-25:00").is_none());
        assert!(Value::parse_time("Sep/5-12:61").is_none());
    }

    #[test]
    fn time_ordering_matches_chronology() {
        let a = Value::parse_time("Sep/5-11:45").unwrap();
        let b = Value::parse_time("Sep/5-12:10").unwrap();
        let c = Value::parse_time("Sep/6-11:50").unwrap();
        assert!(a < b && b < c);
    }

    #[test]
    fn ordering_is_total_across_kinds() {
        let values = vec![
            Value::bool(false),
            Value::int(3),
            Value::double(2.5),
            Value::time(100),
            Value::str("abc"),
            Value::null(NullId(1)),
        ];
        for a in &values {
            for b in &values {
                // Antisymmetry of the order.
                if a < b {
                    assert!(b > a);
                }
                if a == b {
                    assert_eq!(b, a);
                }
            }
        }
    }

    /// Interning must be invisible to the total order: string constants
    /// order lexicographically regardless of the order their symbols were
    /// interned in (ids are first-seen order, which here is reversed).
    #[test]
    fn interned_strings_keep_the_lexicographic_order() {
        let words = ["zulu", "yankee", "alpha", "mike", "bravo"];
        let values: Vec<Value> = words.iter().map(Value::str).collect();
        let mut sorted_values = values.clone();
        sorted_values.sort();
        let mut sorted_words = words;
        sorted_words.sort_unstable();
        let resolved: Vec<&str> = sorted_values.iter().filter_map(Value::as_str).collect();
        assert_eq!(resolved, sorted_words);
    }

    /// Id equality must coincide with string equality (one global table).
    #[test]
    fn interned_equality_is_string_equality() {
        assert_eq!(Value::str("same"), Value::str(String::from("same")));
        assert_ne!(Value::str("same"), Value::str("Same"));
        assert_eq!(Value::str("same").as_sym(), Value::from("same").as_sym());
        assert_eq!(Value::int(1).as_sym(), None);
    }

    #[test]
    fn doubles_hash_consistently_with_eq() {
        let mut set = HashSet::new();
        set.insert(Value::double(1.0));
        assert!(set.contains(&Value::double(1.0)));
        assert!(!set.contains(&Value::double(2.0)));
    }

    #[test]
    fn negative_doubles_order_below_positive() {
        assert!(Value::double(-1.0) < Value::double(0.0));
        assert!(Value::double(0.0) < Value::double(1.0));
        assert!(Value::double(-2.0) < Value::double(-1.0));
    }

    #[test]
    fn numeric_view() {
        assert_eq!(Value::int(3).numeric(), Some(3.0));
        assert_eq!(Value::double(2.5).numeric(), Some(2.5));
        assert_eq!(Value::time(60).numeric(), Some(60.0));
        assert_eq!(Value::str("x").numeric(), None);
        assert_eq!(Value::null(NullId(0)).numeric(), None);
    }

    #[test]
    fn display_round_trip_for_strings_and_ints() {
        assert_eq!(Value::str("Tom Waits").to_string(), "Tom Waits");
        assert_eq!(Value::int(42).to_string(), "42");
        assert_eq!(Value::null(NullId(3)).to_string(), "⊥3");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(1i64), Value::int(1));
        assert_eq!(Value::from(1i32), Value::int(1));
        assert_eq!(Value::from(true), Value::bool(true));
        assert_eq!(Value::from(NullId(9)), Value::null(NullId(9)));
    }

    #[test]
    fn format_time_handles_month_boundaries() {
        let jan1 = Value::parse_time("Jan/1-00:00").unwrap().as_time().unwrap();
        assert_eq!(jan1, 0);
        let feb1 = Value::parse_time("Feb/1").unwrap().as_time().unwrap();
        assert_eq!(feb1, 31 * 24 * 60);
        assert_eq!(Value::format_time(feb1), "Feb/1-00:00");
        let dec31 = Value::parse_time("Dec/31-23:59")
            .unwrap()
            .as_time()
            .unwrap();
        assert_eq!(Value::format_time(dec31), "Dec/31-23:59");
    }
}
