//! Relation instances: duplicate-free sets of rows over a **columnar
//! arena**, with optional per-attribute hash indexes and per-row epoch
//! stamps.
//!
//! # Columnar layout
//!
//! A [`RelationInstance`] stores one dense `Vec<Value>` per attribute
//! (`Value`s are `Copy` scalars — interned symbols, integers, labeled
//! nulls), a parallel stamp column, and a hash table mapping row content to
//! row ids for set-semantics dedup.  **Row ids (`u32`) are the currency of
//! joins**: the allocation-free [`RelationInstance::select_ids_into`]
//! answers probes with ids, values are read straight out of the columns
//! with [`RelationInstance::value_at`], and a [`crate::Tuple`]
//! (`Arc<[Value]>`) is only materialized at API edges — parsing, the wire
//! protocol, snapshots — via [`RelationInstance::row_tuple`].
//!
//! # Epoch stamps
//!
//! Stamps are the substrate of the semi-naive (delta-driven) chase in
//! `ontodq-chase`: every insert records the relation's current epoch, and
//! [`RelationInstance::delta_since`] / [`StampWindow`]-restricted selection
//! expose exactly the rows added (or rewritten by null substitution) after a
//! given epoch.  Stamps are kept sorted — rewritten rows are re-appended
//! with the current epoch so they re-enter the delta — which makes a stamp
//! window a **contiguous row-id range**: window restriction of an id set is
//! two binary searches, never a filter pass.
//!
//! # Tombstones
//!
//! Retraction ([`RelationInstance::delete`]) does not move rows: the row is
//! marked dead in a liveness bitmap, its entry is removed from the dedup
//! table and from every hash-index postings list, and its arena slot stays
//! behind as a **tombstone**.  Indexed probes never see dead rows (their
//! postings are gone); scan paths filter through the bitmap.  Row ids of
//! live rows — and with them the sorted-stamp window structure — are
//! untouched, so the semi-naive delta machinery keeps working across
//! deletions, and a re-inserted tuple gets a *fresh* row id stamped at the
//! current epoch (it re-enters the delta like any new fact).  Dead slots
//! are reclaimed wholesale by [`RelationInstance::compact`].
//!
//! Each row also carries a **support count**: the number of times an insert
//! of exactly that row was attempted (1 on first insert, +1 per duplicate).
//! The chase layer reads these as "how many derivations produced this
//! tuple" — the per-tuple support totals of delete-and-rederive — and the
//! persistence layer snapshots them alongside the liveness bitmap.

use crate::counters;
use crate::error::Result;
use crate::fxhash::{FxHashMap, FxHasher};
use crate::index::{clamp_sorted, HashIndex};
use crate::null::NullId;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A stamp restriction on a selection: rows whose insert epoch lies in
/// `(after, up_to]` (either bound may be absent).
///
/// The semi-naive chase evaluates each rule body once per body position,
/// restricting that position's atom to the *delta* (`after = previous
/// watermark`) and the earlier positions to the *old* rows (`up_to =
/// previous watermark`), so every new trigger is discovered exactly through
/// its first delta atom.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StampWindow {
    /// Exclusive lower bound: only rows stamped strictly later match.
    pub after: Option<u64>,
    /// Inclusive upper bound: only rows stamped at or before match.
    pub up_to: Option<u64>,
}

impl StampWindow {
    /// No restriction: all rows.
    pub fn all() -> Self {
        Self::default()
    }

    /// Only rows stamped strictly after `epoch` (the delta).
    pub fn delta_after(epoch: u64) -> Self {
        Self {
            after: Some(epoch),
            up_to: None,
        }
    }

    /// Only rows stamped at or before `epoch` (the old instance).
    pub fn old_up_to(epoch: u64) -> Self {
        Self {
            after: None,
            up_to: Some(epoch),
        }
    }

    /// `true` when the window imposes no restriction.
    pub fn is_all(&self) -> bool {
        self.after.is_none() && self.up_to.is_none()
    }
}

/// Hash of one row's values, used to key the dedup table.
fn hash_row<'a>(values: impl Iterator<Item = &'a Value>) -> u64 {
    let mut hasher = FxHasher::default();
    for v in values {
        v.hash(&mut hasher);
    }
    hasher.finish()
}

/// An instance of a relation: a duplicate-free, insertion-ordered set of
/// rows over a [`RelationSchema`], stored columnarly (see the module docs).
#[derive(Debug, Clone)]
pub struct RelationInstance {
    schema: RelationSchema,
    /// One dense value vector per attribute; all the same length.
    columns: Vec<Vec<Value>>,
    /// Number of rows (kept separately so zero-arity relations work).
    rows: u32,
    /// Insert epoch of each row, parallel to the columns and non-decreasing.
    stamps: Vec<u64>,
    /// Row-content hash → candidate row ids (set-semantics dedup without
    /// storing materialized tuples).  Holds **live** rows only: deletion
    /// removes the entry, so a tombstoned tuple can be re-inserted.
    seen: FxHashMap<u64, Vec<u32>>,
    indexes: FxHashMap<usize, HashIndex>,
    /// Liveness bitmap, parallel to the columns: `false` marks a tombstoned
    /// row.  Empty is shorthand for "all rows live" until the first delete.
    live: Vec<bool>,
    /// Number of `false` entries in `live` (dead rows awaiting compaction).
    dead: u32,
    /// Per-row support counts: how many inserts (first + duplicates) have
    /// produced this row.  The chase's delete-and-rederive reads these as
    /// per-derived-tuple support totals; persisted with the rows.  Empty is
    /// shorthand for "all 1" until the first duplicate (or explicit set), so
    /// the append hot path touches neither vector.
    supports: Vec<u32>,
    /// Epoch stamped onto new inserts; advanced by the owning
    /// [`crate::Database`].  Invariant: `epoch >= stamps.last()`.
    epoch: u64,
}

impl RelationInstance {
    /// An empty instance over `schema`.
    pub fn new(schema: RelationSchema) -> Self {
        let arity = schema.arity();
        Self {
            schema,
            columns: vec![Vec::new(); arity],
            rows: 0,
            stamps: Vec::new(),
            seen: FxHashMap::default(),
            indexes: FxHashMap::default(),
            live: Vec::new(),
            dead: 0,
            supports: Vec::new(),
            epoch: 0,
        }
    }

    /// The instance's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Relation name (shortcut for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of **live** rows (tombstoned rows are excluded).
    pub fn len(&self) -> usize {
        (self.rows - self.dead) as usize
    }

    /// `true` when the instance holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of physical arena slots, live rows plus tombstones.  Row ids
    /// range over `0..total_rows()`.
    pub fn total_rows(&self) -> usize {
        self.rows as usize
    }

    /// Number of tombstoned rows awaiting [`RelationInstance::compact`].
    pub fn dead_rows(&self) -> usize {
        self.dead as usize
    }

    /// Is row `row` live (not tombstoned)?  Out-of-range rows are not live.
    #[inline]
    pub fn is_live(&self, row: u32) -> bool {
        row < self.rows && self.live.get(row as usize).copied().unwrap_or(true)
    }

    /// The support count of row `row`: how many inserts (first + duplicate)
    /// produced it.  Out-of-range and tombstoned rows have support 0.
    pub fn support_of(&self, row: u32) -> u32 {
        if !self.is_live(row) {
            return 0;
        }
        self.supports.get(row as usize).copied().unwrap_or(1)
    }

    /// Overwrite the support count of row `row` — the persistence reload
    /// path, which must reproduce the counts a snapshot recorded.
    pub fn set_support(&mut self, row: u32, support: u32) {
        if row >= self.rows {
            return;
        }
        if self.supports.is_empty() {
            if support == 1 {
                return; // already the implicit value
            }
            self.supports = vec![1; self.rows as usize];
        }
        self.supports[row as usize] = support;
    }

    /// Materialize the liveness bitmap so it can be indexed per row (the
    /// empty-means-all-live shorthand is expanded on the first tombstone).
    fn ensure_live_bitmap(&mut self) {
        if self.live.is_empty() {
            self.live = vec![true; self.rows as usize];
        }
    }

    /// Iterate over the **live** rows in insertion order, materializing each
    /// as a [`Tuple`].  An API-edge convenience — join code works on row ids
    /// and columns instead.
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        (0..self.rows)
            .filter(move |&r| self.is_live(r))
            .map(move |r| self.row_tuple(r))
    }

    /// All live rows materialized as tuples, in insertion order.
    pub fn tuples(&self) -> Vec<Tuple> {
        self.iter().collect()
    }

    /// Materialize row `row` as a [`Tuple`].
    ///
    /// # Panics
    /// When `row >= len()`.
    pub fn row_tuple(&self, row: u32) -> Tuple {
        debug_assert!(row < self.rows);
        counters::record_materializations(1);
        Tuple::new(
            self.columns
                .iter()
                .map(|c| c[row as usize])
                .collect::<Vec<_>>(),
        )
    }

    /// The value at (`row`, `position`), read straight from the column.
    /// `None` when the position is out of range.
    #[inline]
    pub fn value_at(&self, row: u32, position: usize) -> Option<&Value> {
        self.columns.get(position).map(|c| &c[row as usize])
    }

    /// The dense value vector of `position` (one entry per row), if in
    /// range.
    pub fn column(&self, position: usize) -> Option<&[Value]> {
        self.columns.get(position).map(Vec::as_slice)
    }

    /// The epoch new inserts are stamped with.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// The stamp of the most recently inserted row, if any.
    pub fn last_stamp(&self) -> Option<u64> {
        self.stamps.last().copied()
    }

    /// The insert epochs of all rows, parallel to the columns and
    /// non-decreasing.  Persistence layers serialize these alongside the
    /// rows so a reloaded instance keeps its delta structure (a chase
    /// resumed from stored watermarks sees exactly the rows it would have
    /// seen in the original process).
    pub fn stamps(&self) -> &[u64] {
        &self.stamps
    }

    /// Approximate heap footprint of the arena in bytes: the value columns,
    /// the stamp column, the liveness/support sidecars, and the index
    /// postings.
    pub fn arena_bytes(&self) -> usize {
        let values: usize = self
            .columns
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<Value>())
            .sum();
        let stamps = self.stamps.capacity() * std::mem::size_of::<u64>();
        let live = self.live.capacity() * std::mem::size_of::<bool>();
        let supports = self.supports.capacity() * std::mem::size_of::<u32>();
        let postings: usize = self.indexes.values().map(HashIndex::postings_bytes).sum();
        values + stamps + live + supports + postings
    }

    /// Approximate bytes held by tombstoned rows — the arena space a
    /// [`RelationInstance::compact`] would reclaim.  Dead rows keep their
    /// column, stamp and sidecar slots but no index postings (those are
    /// removed at delete time).
    pub fn reclaimable_bytes(&self) -> usize {
        if self.dead == 0 {
            return 0;
        }
        let per_row = self.columns.len() * std::mem::size_of::<Value>()
            + std::mem::size_of::<u64>()
            + std::mem::size_of::<bool>()
            + if self.supports.is_empty() {
                0
            } else {
                std::mem::size_of::<u32>()
            };
        self.dead as usize * per_row
    }

    /// Insert `tuple` stamped with `stamp` instead of the current epoch —
    /// the reload path of persistence layers, which must reproduce the
    /// original stamp sequence exactly.
    ///
    /// Rows must be replayed in their original (insertion) order; `stamp` is
    /// clamped up to the last stamp so the non-decreasing invariant can
    /// never break, and the instance's insert epoch absorbs the stamp.
    pub fn insert_stamped(&mut self, tuple: Tuple, stamp: u64) -> Result<bool> {
        self.schema.validate(&tuple)?;
        self.epoch = stamp.max(self.last_stamp().unwrap_or(0));
        Ok(self.insert_unchecked(tuple))
    }

    /// Set the epoch stamped onto subsequent inserts.  Clamped so that the
    /// non-decreasing stamp invariant is preserved.
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch.max(self.last_stamp().unwrap_or(0));
    }

    /// The first row id stamped strictly after `epoch` (possibly `len()`).
    pub fn first_row_after(&self, epoch: u64) -> u32 {
        self.stamps.partition_point(|s| *s <= epoch) as u32
    }

    /// The contiguous row-id range selected by `window` — stamps are
    /// non-decreasing, so a stamp window is always an id range.
    pub fn window_range(&self, window: StampWindow) -> std::ops::Range<u32> {
        let lo = window.after.map(|e| self.first_row_after(e)).unwrap_or(0);
        let hi = window
            .up_to
            .map(|e| self.first_row_after(e))
            .unwrap_or(self.rows);
        lo..hi.max(lo)
    }

    /// The live rows inserted (or rewritten by null substitution) strictly
    /// after `epoch`, materialized in insertion order.
    pub fn delta_since(&self, epoch: u64) -> Vec<Tuple> {
        (self.first_row_after(epoch)..self.rows)
            .filter(|&r| self.is_live(r))
            .map(|r| self.row_tuple(r))
            .collect()
    }

    /// Does the instance contain `tuple`?
    pub fn contains(&self, tuple: &Tuple) -> bool {
        if tuple.arity() != self.columns.len() {
            return false;
        }
        self.find_row(tuple.values()).is_some()
    }

    /// The row id holding exactly `values`, if present.  `values` must have
    /// the relation's arity.
    fn find_row(&self, values: &[Value]) -> Option<u32> {
        let hash = hash_row(values.iter());
        let candidates = self.seen.get(&hash)?;
        candidates
            .iter()
            .copied()
            .find(|&row| self.row_equals(row, values))
    }

    #[inline]
    fn row_equals(&self, row: u32, values: &[Value]) -> bool {
        self.columns
            .iter()
            .zip(values)
            .all(|(c, v)| c[row as usize] == *v)
    }

    /// Insert a tuple, validating it against the schema.
    ///
    /// Returns `Ok(true)` when the tuple was new, `Ok(false)` when it was
    /// already present (set semantics).
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.schema.validate(&tuple)?;
        Ok(self.insert_unchecked(tuple))
    }

    /// Insert without schema validation; used by the Datalog± layer whose
    /// predicates are untyped.  The row is stamped with the current epoch,
    /// scattered into the columns, and live hash indexes are extended in
    /// place.
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        self.insert_row(tuple.values())
    }

    /// [`RelationInstance::insert_unchecked`] without the `Tuple` wrapper:
    /// append `values` (which must have the relation's arity) as a new row
    /// unless an equal row already exists.  The chase's batch firing path
    /// stages grounded head rows as flat value slices and inserts them
    /// through here, materializing a `Tuple` only when a provenance record
    /// needs one.
    pub fn insert_slice_unchecked(&mut self, values: &[Value]) -> bool {
        self.insert_row(values)
    }

    /// Append `values` as a new row unless an equal row exists.  A
    /// duplicate bumps the existing row's support count instead (another
    /// derivation of the same tuple).
    fn insert_row(&mut self, values: &[Value]) -> bool {
        debug_assert_eq!(values.len(), self.columns.len());
        let hash = hash_row(values.iter());
        if let Some(candidates) = self.seen.get(&hash) {
            if let Some(existing) = candidates
                .iter()
                .copied()
                .find(|&row| self.row_equals(row, values))
            {
                self.bump_support(existing);
                return false;
            }
        }
        let row = self.rows;
        for index in self.indexes.values_mut() {
            if let Some(value) = values.get(index.position()) {
                index.insert(row, value);
            }
        }
        for (column, value) in self.columns.iter_mut().zip(values) {
            column.push(*value);
        }
        self.stamps.push(self.epoch);
        self.seen.entry(hash).or_default().push(row);
        self.rows += 1;
        // The sidecars stay in their empty (implicit) forms until first
        // needed; once materialized they must track every append.
        if !self.live.is_empty() {
            self.live.push(true);
        }
        if !self.supports.is_empty() {
            self.supports.push(1);
        }
        true
    }

    /// Record one more derivation of row `row` (saturating).
    fn bump_support(&mut self, row: u32) {
        if self.supports.is_empty() {
            self.supports = vec![1; self.rows as usize];
        }
        let slot = &mut self.supports[row as usize];
        *slot = slot.saturating_add(1);
    }

    /// Insert many tuples; returns the number actually added.
    pub fn insert_all<I>(&mut self, tuples: I) -> Result<usize>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut added = 0;
        for t in tuples {
            if self.insert(t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Tombstone the row holding exactly `tuple`, if live: the row is
    /// marked dead, removed from the dedup table and from every hash-index
    /// postings list, and its arena slot stays behind until
    /// [`RelationInstance::compact`].  Returns whether a row was deleted.
    ///
    /// Surviving row ids (and the sorted stamp structure) are untouched, so
    /// resumable-chase watermarks stay exact across deletions; re-inserting
    /// the same tuple later creates a fresh row at the current epoch.
    pub fn delete(&mut self, tuple: &Tuple) -> bool {
        if tuple.arity() != self.columns.len() {
            return false;
        }
        match self.find_row(tuple.values()) {
            Some(row) => self.delete_row(row),
            None => false,
        }
    }

    /// Tombstone row `row` (see [`RelationInstance::delete`]).  Returns
    /// `false` when the row is out of range or already dead.
    pub fn delete_row(&mut self, row: u32) -> bool {
        if !self.is_live(row) {
            return false;
        }
        self.ensure_live_bitmap();
        self.live[row as usize] = false;
        self.dead += 1;
        if !self.supports.is_empty() {
            self.supports[row as usize] = 0;
        }
        // Drop the dedup entry so the tuple can come back as a fresh row.
        let values: Vec<Value> = self.columns.iter().map(|c| c[row as usize]).collect();
        let hash = hash_row(values.iter());
        if let Some(candidates) = self.seen.get_mut(&hash) {
            candidates.retain(|&r| r != row);
            if candidates.is_empty() {
                self.seen.remove(&hash);
            }
        }
        // Remove the row from every live index's postings.
        for index in self.indexes.values_mut() {
            if let Some(value) = values.get(index.position()) {
                index.remove(row, value);
            }
        }
        true
    }

    /// Rebuild the arena without its tombstones: dead slots are dropped,
    /// surviving rows keep their stamps and support counts (ids shift down),
    /// and indexes are rebuilt.  Returns the number of slots reclaimed.
    pub fn compact(&mut self) -> usize {
        if self.dead == 0 {
            return 0;
        }
        let arity = self.columns.len();
        let old_columns = std::mem::replace(&mut self.columns, vec![Vec::new(); arity]);
        let old_stamps = std::mem::take(&mut self.stamps);
        let old_live = std::mem::take(&mut self.live);
        let old_supports = std::mem::take(&mut self.supports);
        let old_rows = self.rows;
        self.rows = 0;
        self.dead = 0;
        self.seen.clear();
        let mut row_buf: Vec<Value> = Vec::with_capacity(arity);
        let mut reclaimed = 0;
        for row in 0..old_rows as usize {
            if !old_live.get(row).copied().unwrap_or(true) {
                reclaimed += 1;
                continue;
            }
            row_buf.clear();
            row_buf.extend(old_columns.iter().map(|c| c[row]));
            let support = old_supports.get(row).copied().unwrap_or(1);
            self.insert_at_stamp(&row_buf, old_stamps[row], support);
        }
        self.rebuild_indexes();
        reclaimed
    }

    /// Build (or rebuild) a hash index on `position`.  Tombstoned rows are
    /// skipped: an index built after a deletion must answer probes exactly
    /// like one maintained through [`RelationInstance::delete_row`].
    pub fn build_index(&mut self, position: usize) {
        let Some(column) = self.columns.get(position) else {
            return;
        };
        let mut index = HashIndex::new(position);
        for (row, value) in column.iter().enumerate() {
            let row = row as u32;
            if row < self.rows && self.live.get(row as usize).copied().unwrap_or(true) {
                index.insert(row, value);
            }
        }
        self.indexes.insert(position, index);
    }

    /// `true` if an index exists on `position`.
    pub fn has_index(&self, position: usize) -> bool {
        self.indexes.contains_key(&position)
    }

    /// The index on `position`, if one was built.
    pub fn index(&self, position: usize) -> Option<&HashIndex> {
        self.indexes.get(&position)
    }

    /// Rows matching all of `bindings` (position → required value),
    /// materialized as tuples.  An API-edge convenience over
    /// [`RelationInstance::select_ids_into`].
    pub fn select(&self, bindings: &[(usize, &Value)]) -> Vec<Tuple> {
        self.select_window(bindings, StampWindow::all())
    }

    /// Like [`RelationInstance::select`], restricted to rows whose insert
    /// epoch lies inside `window`.
    pub fn select_window(&self, bindings: &[(usize, &Value)], window: StampWindow) -> Vec<Tuple> {
        let owned: Vec<(usize, Value)> = bindings.iter().map(|(p, v)| (*p, **v)).collect();
        let mut ids = Vec::new();
        self.select_ids_into(&owned, window, &mut ids);
        ids.into_iter().map(|r| self.row_tuple(r)).collect()
    }

    /// **Allocation-free probe**: append to `out` the ids (ascending) of
    /// rows inside `window` matching all of `bindings`.
    ///
    /// Among the indexed bound positions, the two shortest postings lists
    /// are combined with a galloping intersection (further indexed
    /// positions, being already id sets, are cheaper to verify per-row);
    /// remaining bound positions are checked against the columns.  A probe
    /// never materializes a tuple and only ever writes into `out`, which
    /// callers reuse across probes.  Bindings carry values by copy
    /// (`Value` is a two-word scalar) so callers can probe from their own
    /// mutable binding state without borrow gymnastics.
    pub fn select_ids_into(
        &self,
        bindings: &[(usize, Value)],
        window: StampWindow,
        out: &mut Vec<u32>,
    ) {
        counters::record_probe();
        let range = self.window_range(window);
        if range.is_empty() {
            return;
        }
        if bindings.is_empty() {
            if self.dead == 0 {
                out.extend(range);
            } else {
                out.extend(range.filter(|&r| self.is_live(r)));
            }
            return;
        }
        // A binding position beyond the arity matches nothing (rather than
        // panicking on the column access below) — `select` is a public API
        // and the row-oriented predecessor was total over bad positions.
        if bindings.iter().any(|(pos, _)| *pos >= self.columns.len()) {
            return;
        }
        // Gather the postings of every indexed bound position, shortest
        // first.
        let mut postings: Vec<&[u32]> = Vec::with_capacity(bindings.len());
        for (pos, value) in bindings {
            if let Some(index) = self.indexes.get(pos) {
                postings.push(clamp_sorted(index.lookup(value), range.start, range.end));
            }
        }
        postings.sort_by_key(|p| p.len());
        let unindexed: Vec<&(usize, Value)> = bindings
            .iter()
            .filter(|(pos, _)| !self.indexes.contains_key(pos))
            .collect();
        let matches_rest = |row: u32| -> bool {
            unindexed
                .iter()
                .all(|(pos, value)| self.columns[*pos][row as usize] == *value)
        };
        match postings.len() {
            0 => {
                // No index available: scan the window (skipping tombstones).
                let scan = |row: u32| -> bool {
                    self.is_live(row)
                        && bindings
                            .iter()
                            .all(|(pos, value)| self.columns[*pos][row as usize] == *value)
                };
                out.extend(range.filter(|&r| scan(r)));
            }
            1 => {
                out.extend(postings[0].iter().copied().filter(|&r| matches_rest(r)));
            }
            _ => {
                // Galloping intersection of the two shortest lists; any
                // further indexed positions are verified per survivor (their
                // postings are at least as long, so a column compare beats
                // another merge).
                let before = out.len();
                crate::index::intersect_sorted(postings[0], postings[1], out);
                let verify: Vec<&[u32]> = postings[2..].to_vec();
                if !verify.is_empty() || !unindexed.is_empty() {
                    let mut write = before;
                    for i in before..out.len() {
                        let row = out[i];
                        let ok = verify.iter().all(|p| crate::index::contains_sorted(p, row))
                            && matches_rest(row);
                        if ok {
                            out[write] = row;
                            write += 1;
                        }
                    }
                    out.truncate(write);
                }
            }
        }
    }

    /// Project every row onto `positions` (duplicates removed, insertion
    /// order preserved).
    pub fn project(&self, positions: &[usize]) -> Vec<Tuple> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for row in (0..self.rows).filter(|&r| self.is_live(r)) {
            let p = Tuple::new(
                positions
                    .iter()
                    .filter_map(|&pos| self.value_at(row, pos).copied())
                    .collect(),
            );
            if seen.insert(p.clone()) {
                out.push(p);
            }
        }
        out
    }

    /// Replace every occurrence of the labeled null `from` with `to`, in
    /// every row.  Duplicate rows created by the substitution collapse.
    /// Returns the number of rows that changed.
    ///
    /// Rewritten rows are re-appended with the *current* epoch, so they
    /// show up in [`RelationInstance::delta_since`] — an EGD unification
    /// re-enables exactly the rule triggers that touch the rewritten rows,
    /// and the semi-naive chase discovers them through the delta.  Hash
    /// indexes are rebuilt iff at least one row changed (row ids shift when
    /// rows are re-appended); untouched relations keep their indexes as-is.
    pub fn substitute_null(&mut self, from: NullId, to: &Value) -> usize {
        let target = Value::Null(from);
        if !self.columns.iter().any(|c| c.contains(&target)) {
            return 0;
        }
        let arity = self.columns.len();
        let old_columns = std::mem::replace(&mut self.columns, vec![Vec::new(); arity]);
        let old_stamps = std::mem::take(&mut self.stamps);
        let old_live = std::mem::take(&mut self.live);
        let old_supports = std::mem::take(&mut self.supports);
        let old_rows = self.rows;
        self.rows = 0;
        self.dead = 0;
        self.seen.clear();
        // Flat `arity` values per rewritten row, plus its support count.
        let mut rewritten: Vec<Value> = Vec::new();
        let mut rewritten_supports: Vec<u32> = Vec::new();
        let mut row_buf: Vec<Value> = Vec::with_capacity(arity);
        let mut changed = 0;
        for row in 0..old_rows as usize {
            // Tombstoned rows are dropped outright — the rebuild is a
            // natural compaction point.
            if !old_live.get(row).copied().unwrap_or(true) {
                continue;
            }
            row_buf.clear();
            row_buf.extend(old_columns.iter().map(|c| c[row]));
            let support = old_supports.get(row).copied().unwrap_or(1);
            if row_buf.contains(&target) {
                changed += 1;
                rewritten.extend(row_buf.iter().map(|v| if *v == target { *to } else { *v }));
                rewritten_supports.push(support);
            } else {
                self.insert_at_stamp(&row_buf, old_stamps[row], support);
            }
        }
        let current = self.epoch.max(old_stamps.last().copied().unwrap_or(0));
        self.epoch = current;
        for (row_values, support) in rewritten.chunks(arity).zip(rewritten_supports) {
            self.insert_at_stamp(row_values, current, support);
        }
        self.rebuild_indexes();
        changed
    }

    /// Append `values` stamped `stamp` with support `support` unless
    /// already present (dedup; a duplicate merges support counts), not
    /// touching live indexes — used only by the rebuild paths, which
    /// rebuild indexes wholesale afterwards.  Rebuilds emit live rows only,
    /// so the liveness bitmap collapses back to its implicit all-live form.
    fn insert_at_stamp(&mut self, values: &[Value], stamp: u64, support: u32) -> bool {
        let hash = hash_row(values.iter());
        if let Some(candidates) = self.seen.get(&hash) {
            if let Some(existing) = candidates
                .iter()
                .copied()
                .find(|&row| self.row_equals(row, values))
            {
                if support > 1 || !self.supports.is_empty() {
                    if self.supports.is_empty() {
                        self.supports = vec![1; self.rows as usize];
                    }
                    let slot = &mut self.supports[existing as usize];
                    *slot = slot.saturating_add(support);
                }
                return false;
            }
        }
        let row = self.rows;
        for (column, value) in self.columns.iter_mut().zip(values) {
            column.push(*value);
        }
        self.stamps.push(stamp);
        self.seen.entry(hash).or_default().push(row);
        self.rows += 1;
        if !self.supports.is_empty() || support != 1 {
            if self.supports.is_empty() {
                self.supports = vec![1; row as usize];
            }
            self.supports.push(support);
        }
        true
    }

    /// Remove rows for which `keep` returns `false`; returns how many were
    /// removed.  Indexes are rebuilt; stamps of surviving rows are
    /// preserved.
    pub fn retain(&mut self, mut keep: impl FnMut(&Tuple) -> bool) -> usize {
        let arity = self.columns.len();
        let old_columns = std::mem::replace(&mut self.columns, vec![Vec::new(); arity]);
        let old_stamps = std::mem::take(&mut self.stamps);
        let old_live = std::mem::take(&mut self.live);
        let old_supports = std::mem::take(&mut self.supports);
        let old_rows = self.rows;
        self.rows = 0;
        self.dead = 0;
        self.seen.clear();
        let mut removed = 0;
        for row in 0..old_rows as usize {
            if !old_live.get(row).copied().unwrap_or(true) {
                continue; // tombstones are dropped silently, not "removed"
            }
            let values: Vec<Value> = old_columns.iter().map(|c| c[row]).collect();
            if keep(&Tuple::new(values.clone())) {
                let support = old_supports.get(row).copied().unwrap_or(1);
                self.insert_at_stamp(&values, old_stamps[row], support);
            } else {
                removed += 1;
            }
        }
        self.rebuild_indexes();
        removed
    }

    /// All labeled nulls occurring in any **live** row.
    pub fn nulls(&self) -> HashSet<NullId> {
        let mut out = HashSet::new();
        for column in &self.columns {
            for (row, value) in column.iter().enumerate() {
                if let Some(n) = value.as_null() {
                    if self.is_live(row as u32) {
                        out.insert(n);
                    }
                }
            }
        }
        out
    }

    /// All constant values occurring in any **live** row.
    pub fn constants(&self) -> HashSet<Value> {
        let mut out = HashSet::new();
        for column in &self.columns {
            for (row, value) in column.iter().enumerate() {
                if value.is_constant() && self.is_live(row as u32) {
                    out.insert(*value);
                }
            }
        }
        out
    }

    fn rebuild_indexes(&mut self) {
        let positions: Vec<usize> = self.indexes.keys().copied().collect();
        for pos in positions {
            self.build_index(pos);
        }
    }
}

impl fmt::Display for RelationInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in self.iter() {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, AttributeType};

    fn ward_schema() -> RelationSchema {
        RelationSchema::new(
            "UnitWard",
            vec![Attribute::string("Unit"), Attribute::string("Ward")],
        )
    }

    fn sample() -> RelationInstance {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.insert(Tuple::from_iter(["Standard", "W2"])).unwrap();
        r.insert(Tuple::from_iter(["Intensive", "W3"])).unwrap();
        r.insert(Tuple::from_iter(["Terminal", "W4"])).unwrap();
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = sample();
        assert_eq!(r.len(), 4);
        let added = r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        assert!(!added);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn insert_validates_schema() {
        let mut r = RelationInstance::new(RelationSchema::new(
            "R",
            vec![Attribute::new("n", AttributeType::Integer)],
        ));
        assert!(r.insert(Tuple::from_iter(["oops"])).is_err());
        assert!(r.insert(Tuple::from_iter([3i64])).is_ok());
    }

    #[test]
    fn columns_hold_the_rows_columnarly() {
        let r = sample();
        let units = r.column(0).unwrap();
        assert_eq!(units.len(), 4);
        assert_eq!(units[0], Value::str("Standard"));
        assert_eq!(units[2], Value::str("Intensive"));
        assert_eq!(r.value_at(3, 1), Some(&Value::str("W4")));
        assert_eq!(r.value_at(3, 9), None);
        assert!(r.column(2).is_none());
        assert_eq!(r.row_tuple(1), Tuple::from_iter(["Standard", "W2"]));
        assert!(r.arena_bytes() > 0);
    }

    #[test]
    fn select_without_index_scans() {
        let r = sample();
        let hits = r.select(&[(0, &Value::str("Standard"))]);
        assert_eq!(hits.len(), 2);
        let none = r.select(&[(0, &Value::str("Oncology"))]);
        assert!(none.is_empty());
    }

    #[test]
    fn select_with_index_matches_scan() {
        let mut r = sample();
        let scan: Vec<Tuple> = r.select(&[(0, &Value::str("Standard"))]);
        r.build_index(0);
        assert!(r.has_index(0));
        let indexed: Vec<Tuple> = r.select(&[(0, &Value::str("Standard"))]);
        assert_eq!(scan, indexed);
    }

    #[test]
    fn select_with_multiple_bindings() {
        let r = sample();
        let hits = r.select(&[(0, &Value::str("Standard")), (1, &Value::str("W2"))]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], Tuple::from_iter(["Standard", "W2"]));
    }

    #[test]
    fn select_with_two_indexes_gallops() {
        // A distinct payload column keeps every row alive through dedup so
        // the intersection actually has work to do.
        let mut r = RelationInstance::new(RelationSchema::untyped("R", 3));
        for i in 0..200i64 {
            r.insert(Tuple::new(vec![
                Value::int(i % 2),
                Value::int(i % 3),
                Value::int(i),
            ]))
            .unwrap();
        }
        let scan = r.select(&[(0, &Value::int(0)), (1, &Value::int(0))]);
        r.build_index(0);
        r.build_index(1);
        let indexed = r.select(&[(0, &Value::int(0)), (1, &Value::int(0))]);
        assert_eq!(scan, indexed);
        assert_eq!(indexed.len(), 200 / 6 + 1); // i ≡ 0 (mod 6)
    }

    #[test]
    fn select_ids_are_ascending_and_reusable() {
        let mut r = sample();
        r.build_index(0);
        let mut ids = vec![99u32; 4]; // pre-polluted scratch
        ids.clear();
        r.select_ids_into(&[(0, Value::str("Standard"))], StampWindow::all(), &mut ids);
        assert_eq!(ids, vec![0, 1]);
        ids.clear();
        r.select_ids_into(&[], StampWindow::all(), &mut ids);
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn select_empty_bindings_returns_all() {
        let r = sample();
        assert_eq!(r.select(&[]).len(), 4);
    }

    #[test]
    fn select_out_of_range_position_matches_nothing() {
        // A binding position beyond the arity must return no rows (the
        // row-oriented predecessor's behavior), not panic on the column
        // access — on both the scan path and the indexed path.
        let mut r = sample();
        assert!(r.select(&[(7, &Value::str("Standard"))]).is_empty());
        assert!(r
            .select(&[(0, &Value::str("Standard")), (7, &Value::str("W1"))])
            .is_empty());
        r.build_index(0);
        let mut ids = vec![99u32];
        ids.clear();
        r.select_ids_into(
            &[(0, Value::str("Standard")), (7, Value::str("W1"))],
            StampWindow::all(),
            &mut ids,
        );
        assert!(ids.is_empty());
    }

    #[test]
    fn project_removes_duplicates() {
        let r = sample();
        let units = r.project(&[0]);
        assert_eq!(units.len(), 3);
        assert!(units.contains(&Tuple::from_iter(["Standard"])));
    }

    #[test]
    fn substitute_null_collapses_duplicates_and_updates_indexes() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::new(vec![Value::null(NullId(0)), Value::str("W1")]))
            .unwrap();
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.build_index(0);
        let changed = r.substitute_null(NullId(0), &Value::str("Standard"));
        assert_eq!(changed, 1);
        assert_eq!(r.len(), 1);
        let hits = r.select(&[(0, &Value::str("Standard"))]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn retain_removes_and_reports() {
        let mut r = sample();
        r.build_index(1);
        let removed = r.retain(|t| t.get(0) != Some(&Value::str("Intensive")));
        assert_eq!(removed, 1);
        assert_eq!(r.len(), 3);
        assert!(r.select(&[(1, &Value::str("W3"))]).is_empty());
    }

    #[test]
    fn nulls_and_constants_views() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::new(vec![Value::null(NullId(5)), Value::str("W9")]))
            .unwrap();
        assert_eq!(r.nulls().len(), 1);
        assert!(r.nulls().contains(&NullId(5)));
        assert_eq!(r.constants().len(), 1);
        assert!(r.constants().contains(&Value::str("W9")));
    }

    #[test]
    fn display_contains_schema_and_rows() {
        let r = sample();
        let rendered = r.to_string();
        assert!(rendered.contains("UnitWard"));
        assert!(rendered.contains("(Standard, W1)"));
    }

    #[test]
    fn zero_arity_relations_hold_at_most_one_row() {
        let mut r = RelationInstance::new(RelationSchema::untyped("Seed", 0));
        assert!(r.insert(Tuple::new(vec![])).unwrap());
        assert!(!r.insert(Tuple::new(vec![])).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::new(vec![])));
        let mut ids = Vec::new();
        r.select_ids_into(&[], StampWindow::all(), &mut ids);
        assert_eq!(ids, vec![0]);
        assert_eq!(r.tuples(), vec![Tuple::new(vec![])]);
    }

    // ------------------------------------------------------------------
    // Epoch stamping and delta tracking.
    // ------------------------------------------------------------------

    #[test]
    fn delta_since_sees_only_later_epochs() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.set_epoch(1);
        r.insert(Tuple::from_iter(["Standard", "W2"])).unwrap();
        r.set_epoch(2);
        r.insert(Tuple::from_iter(["Intensive", "W3"])).unwrap();

        assert_eq!(r.delta_since(0).len(), 2);
        assert_eq!(
            r.delta_since(1),
            vec![Tuple::from_iter(["Intensive", "W3"])]
        );
        assert!(r.delta_since(2).is_empty());
        // Nothing can be stamped after the maximum epoch.
        assert!(r.delta_since(u64::MAX).is_empty());
    }

    #[test]
    fn window_range_is_contiguous_ids() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.set_epoch(1);
        r.insert(Tuple::from_iter(["Standard", "W2"])).unwrap();
        r.insert(Tuple::from_iter(["Intensive", "W3"])).unwrap();
        assert_eq!(r.window_range(StampWindow::all()), 0..3);
        assert_eq!(r.window_range(StampWindow::old_up_to(0)), 0..1);
        assert_eq!(r.window_range(StampWindow::delta_after(0)), 1..3);
        assert_eq!(r.window_range(StampWindow::delta_after(5)), 3..3);
    }

    #[test]
    fn select_window_splits_old_and_delta() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.set_epoch(1);
        r.insert(Tuple::from_iter(["Standard", "W2"])).unwrap();
        r.build_index(0);

        let probe = Value::str("Standard");
        let binding = [(0usize, &probe)];
        let old = r.select_window(&binding, StampWindow::old_up_to(0));
        assert_eq!(old, vec![Tuple::from_iter(["Standard", "W1"])]);
        let delta = r.select_window(&binding, StampWindow::delta_after(0));
        assert_eq!(delta, vec![Tuple::from_iter(["Standard", "W2"])]);
        let all = r.select_window(&binding, StampWindow::all());
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn substitution_restamps_rewritten_rows_into_the_delta() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::new(vec![Value::null(NullId(9)), Value::str("W1")]))
            .unwrap();
        r.insert(Tuple::from_iter(["Intensive", "W3"])).unwrap();
        r.set_epoch(5);
        let changed = r.substitute_null(NullId(9), &Value::str("Standard"));
        assert_eq!(changed, 1);
        // The rewritten row is in the delta after epoch 0; the untouched row
        // is not.
        assert_eq!(r.delta_since(0), vec![Tuple::from_iter(["Standard", "W1"])]);
        // Stamps stay sorted, so window selection still works.
        assert_eq!(
            r.select_window(&[], StampWindow::old_up_to(0)),
            vec![Tuple::from_iter(["Intensive", "W3"])]
        );
    }

    #[test]
    fn substitution_keeps_indexed_select_consistent() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::new(vec![Value::null(NullId(1)), Value::str("W1")]))
            .unwrap();
        r.insert(Tuple::from_iter(["Intensive", "W3"])).unwrap();
        r.build_index(0);
        r.substitute_null(NullId(1), &Value::str("Standard"));
        // The old index key must be gone and the new key present.
        assert!(r.select(&[(0, &Value::null(NullId(1)))]).is_empty());
        assert_eq!(r.select(&[(0, &Value::str("Standard"))]).len(), 1);
        assert_eq!(r.select(&[(0, &Value::str("Intensive"))]).len(), 1);
    }

    /// Replaying rows through `insert_stamped` must reproduce the original
    /// stamp sequence exactly, so delta queries behave identically after a
    /// reload.
    #[test]
    fn insert_stamped_round_trips_the_stamp_sequence() {
        let mut original = RelationInstance::new(ward_schema());
        original
            .insert(Tuple::from_iter(["Standard", "W1"]))
            .unwrap();
        original.set_epoch(3);
        original
            .insert(Tuple::from_iter(["Standard", "W2"]))
            .unwrap();
        original.set_epoch(7);
        original
            .insert(Tuple::from_iter(["Intensive", "W3"]))
            .unwrap();

        let mut reloaded = RelationInstance::new(original.schema().clone());
        for (tuple, stamp) in original.iter().zip(original.stamps().iter().copied()) {
            assert!(reloaded.insert_stamped(tuple, stamp).unwrap());
        }
        assert_eq!(reloaded.tuples(), original.tuples());
        assert_eq!(reloaded.stamps(), original.stamps());
        assert_eq!(reloaded.delta_since(3).len(), original.delta_since(3).len());
        // A regressing stamp is clamped, not a panic and not a broken sort.
        let mut clamped = RelationInstance::new(ward_schema());
        clamped
            .insert_stamped(Tuple::from_iter(["A", "W1"]), 5)
            .unwrap();
        clamped
            .insert_stamped(Tuple::from_iter(["B", "W2"]), 2)
            .unwrap();
        assert_eq!(clamped.stamps(), &[5, 5]);
    }

    // ------------------------------------------------------------------
    // Tombstones and support counts.
    // ------------------------------------------------------------------

    #[test]
    fn delete_tombstones_and_reinsert_gets_fresh_row() {
        let mut r = sample();
        r.set_epoch(3);
        assert!(r.delete(&Tuple::from_iter(["Standard", "W1"])));
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_rows(), 4);
        assert_eq!(r.dead_rows(), 1);
        assert!(!r.contains(&Tuple::from_iter(["Standard", "W1"])));
        assert!(!r.is_live(0));
        // Deleting again is a no-op.
        assert!(!r.delete(&Tuple::from_iter(["Standard", "W1"])));
        // Re-insert: fresh row at the current epoch, re-entering the delta.
        assert!(r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap());
        assert_eq!(r.len(), 4);
        assert_eq!(r.total_rows(), 5);
        assert_eq!(r.delta_since(2), vec![Tuple::from_iter(["Standard", "W1"])]);
    }

    #[test]
    fn delete_removes_index_postings_and_scan_agrees() {
        let mut r = sample();
        r.build_index(0);
        r.delete(&Tuple::from_iter(["Standard", "W1"]));
        let indexed = r.select(&[(0, &Value::str("Standard"))]);
        assert_eq!(indexed, vec![Tuple::from_iter(["Standard", "W2"])]);
        // Unindexed path (scan) must agree.
        let scanned = r.select(&[(1, &Value::str("W1"))]);
        assert!(scanned.is_empty());
        // Empty-bindings select skips the tombstone too.
        assert_eq!(r.select(&[]).len(), 3);
        assert_eq!(r.iter().count(), 3);
    }

    /// Regression: an index built *after* a deletion must not resurrect
    /// the dead row — `HashIndex::build` over the raw column used to leak
    /// tombstoned rows into join probes (the chase builds join indexes
    /// lazily, so a fresh chase over a database with tombstones derived
    /// consequences of deleted facts).
    #[test]
    fn index_built_after_delete_skips_tombstoned_rows() {
        let mut r = sample();
        r.delete(&Tuple::from_iter(["Standard", "W1"]));
        r.build_index(0);
        let indexed = r.select(&[(0, &Value::str("Standard"))]);
        assert_eq!(indexed, vec![Tuple::from_iter(["Standard", "W2"])]);
        assert_eq!(r.index(0).unwrap().lookup(&Value::str("Standard")).len(), 1);
    }

    #[test]
    fn support_counts_track_duplicate_inserts_and_deletes() {
        let mut r = sample();
        assert_eq!(r.support_of(0), 1);
        // A duplicate insert bumps the existing row's support.
        assert!(!r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap());
        assert_eq!(r.support_of(0), 2);
        assert_eq!(r.support_of(1), 1);
        r.delete_row(0);
        assert_eq!(r.support_of(0), 0);
        // Out of range → 0.
        assert_eq!(r.support_of(99), 0);
        r.set_support(1, 7);
        assert_eq!(r.support_of(1), 7);
    }

    #[test]
    fn compact_reclaims_dead_slots_preserving_stamps_and_supports() {
        let mut r = sample();
        r.set_epoch(2);
        r.insert(Tuple::from_iter(["Oncology", "W5"])).unwrap();
        r.insert(Tuple::from_iter(["Standard", "W2"])).unwrap(); // support bump
        r.build_index(0);
        r.delete(&Tuple::from_iter(["Standard", "W1"]));
        r.delete(&Tuple::from_iter(["Terminal", "W4"]));
        assert!(r.reclaimable_bytes() > 0);
        let reclaimed = r.compact();
        assert_eq!(reclaimed, 2);
        assert_eq!(r.len(), 3);
        assert_eq!(r.total_rows(), 3);
        assert_eq!(r.dead_rows(), 0);
        assert_eq!(r.reclaimable_bytes(), 0);
        // Stamps of survivors preserved (still sorted).
        assert_eq!(r.stamps(), &[0, 0, 2]);
        // Support of the duplicated row survives the rebuild.
        let idx = r
            .tuples()
            .iter()
            .position(|t| *t == Tuple::from_iter(["Standard", "W2"]))
            .unwrap();
        assert_eq!(r.support_of(idx as u32), 2);
        // Index rebuilt consistently.
        assert_eq!(r.select(&[(0, &Value::str("Standard"))]).len(), 1);
        assert!(r.select(&[(0, &Value::str("Terminal"))]).is_empty());
    }

    #[test]
    fn substitute_null_drops_tombstones_during_rebuild() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::new(vec![Value::null(NullId(3)), Value::str("W1")]))
            .unwrap();
        r.insert(Tuple::from_iter(["Intensive", "W3"])).unwrap();
        r.insert(Tuple::from_iter(["Terminal", "W4"])).unwrap();
        r.delete(&Tuple::from_iter(["Terminal", "W4"]));
        let changed = r.substitute_null(NullId(3), &Value::str("Standard"));
        assert_eq!(changed, 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.total_rows(), 2); // tombstone gone
        assert_eq!(r.dead_rows(), 0);
        assert!(!r.contains(&Tuple::from_iter(["Terminal", "W4"])));
    }

    #[test]
    fn retain_skips_tombstones() {
        let mut r = sample();
        r.delete(&Tuple::from_iter(["Standard", "W1"]));
        let removed = r.retain(|t| t.get(0) != Some(&Value::str("Intensive")));
        assert_eq!(removed, 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.total_rows(), 2);
        assert!(!r.contains(&Tuple::from_iter(["Standard", "W1"])));
    }

    #[test]
    fn nulls_and_constants_skip_dead_rows() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::new(vec![Value::null(NullId(5)), Value::str("W9")]))
            .unwrap();
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.delete(&Tuple::new(vec![Value::null(NullId(5)), Value::str("W9")]));
        assert!(r.nulls().is_empty());
        assert!(!r.constants().contains(&Value::str("W9")));
        assert!(r.constants().contains(&Value::str("W1")));
    }

    #[test]
    fn delta_since_skips_dead_rows() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.set_epoch(1);
        r.insert(Tuple::from_iter(["Standard", "W2"])).unwrap();
        r.insert(Tuple::from_iter(["Intensive", "W3"])).unwrap();
        r.delete(&Tuple::from_iter(["Standard", "W2"]));
        assert_eq!(
            r.delta_since(0),
            vec![Tuple::from_iter(["Intensive", "W3"])]
        );
    }

    #[test]
    fn set_epoch_never_regresses_below_last_stamp() {
        let mut r = RelationInstance::new(ward_schema());
        r.set_epoch(7);
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.set_epoch(3); // clamped to 7
        assert_eq!(r.current_epoch(), 7);
        r.insert(Tuple::from_iter(["Standard", "W2"])).unwrap();
        assert_eq!(r.last_stamp(), Some(7));
        assert!(r.delta_since(6).len() == 2);
    }
}
