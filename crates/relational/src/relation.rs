//! Relation instances: sets of tuples conforming to a schema, with optional
//! per-attribute hash indexes and per-tuple epoch stamps.
//!
//! Epoch stamps are the substrate of the semi-naive (delta-driven) chase in
//! `ontodq-chase`: every insert records the relation's current epoch, and
//! [`RelationInstance::delta_since`] / [`StampWindow`]-restricted selection
//! expose exactly the rows added (or rewritten by null substitution) after a
//! given epoch.  Stamps are kept sorted: rewritten tuples are re-appended
//! with the current epoch so they re-enter the delta.

use crate::error::Result;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::index::HashIndex;
use crate::null::NullId;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashSet;
use std::fmt;

/// A stamp restriction on a selection: rows whose insert epoch lies in
/// `(after, up_to]` (either bound may be absent).
///
/// The semi-naive chase evaluates each rule body once per body position,
/// restricting that position's atom to the *delta* (`after = previous
/// watermark`) and the earlier positions to the *old* rows (`up_to =
/// previous watermark`), so every new trigger is discovered exactly through
/// its first delta atom.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StampWindow {
    /// Exclusive lower bound: only rows stamped strictly later match.
    pub after: Option<u64>,
    /// Inclusive upper bound: only rows stamped at or before match.
    pub up_to: Option<u64>,
}

impl StampWindow {
    /// No restriction: all rows.
    pub fn all() -> Self {
        Self::default()
    }

    /// Only rows stamped strictly after `epoch` (the delta).
    pub fn delta_after(epoch: u64) -> Self {
        Self {
            after: Some(epoch),
            up_to: None,
        }
    }

    /// Only rows stamped at or before `epoch` (the old instance).
    pub fn old_up_to(epoch: u64) -> Self {
        Self {
            after: None,
            up_to: Some(epoch),
        }
    }

    /// `true` when the window imposes no restriction.
    pub fn is_all(&self) -> bool {
        self.after.is_none() && self.up_to.is_none()
    }
}

/// An instance of a relation: a duplicate-free, insertion-ordered set of
/// tuples over a [`RelationSchema`].
#[derive(Debug, Clone)]
pub struct RelationInstance {
    schema: RelationSchema,
    tuples: Vec<Tuple>,
    /// Insert epoch of each tuple, parallel to `tuples` and non-decreasing.
    stamps: Vec<u64>,
    seen: FxHashSet<Tuple>,
    indexes: FxHashMap<usize, HashIndex>,
    /// Epoch stamped onto new inserts; advanced by the owning
    /// [`crate::Database`].  Invariant: `epoch >= stamps.last()`.
    epoch: u64,
}

impl RelationInstance {
    /// An empty instance over `schema`.
    pub fn new(schema: RelationSchema) -> Self {
        Self {
            schema,
            tuples: Vec::new(),
            stamps: Vec::new(),
            seen: FxHashSet::default(),
            indexes: FxHashMap::default(),
            epoch: 0,
        }
    }

    /// The instance's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Relation name (shortcut for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the instance holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over the tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a slice, in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The epoch new inserts are stamped with.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// The stamp of the most recently inserted row, if any.
    pub fn last_stamp(&self) -> Option<u64> {
        self.stamps.last().copied()
    }

    /// The insert epochs of all rows, parallel to [`RelationInstance::tuples`]
    /// and non-decreasing.  Persistence layers serialize these alongside the
    /// tuples so a reloaded instance keeps its delta structure (a chase
    /// resumed from stored watermarks sees exactly the rows it would have
    /// seen in the original process).
    pub fn stamps(&self) -> &[u64] {
        &self.stamps
    }

    /// Insert `tuple` stamped with `stamp` instead of the current epoch —
    /// the reload path of persistence layers, which must reproduce the
    /// original stamp sequence exactly.
    ///
    /// Rows must be replayed in their original (insertion) order; `stamp` is
    /// clamped up to the last stamp so the non-decreasing invariant can
    /// never break, and the instance's insert epoch absorbs the stamp.
    pub fn insert_stamped(&mut self, tuple: Tuple, stamp: u64) -> Result<bool> {
        self.schema.validate(&tuple)?;
        self.epoch = stamp.max(self.last_stamp().unwrap_or(0));
        Ok(self.insert_unchecked(tuple))
    }

    /// Set the epoch stamped onto subsequent inserts.  Clamped so that the
    /// non-decreasing stamp invariant is preserved.
    pub(crate) fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch.max(self.last_stamp().unwrap_or(0));
    }

    /// The rows inserted (or rewritten by null substitution) strictly after
    /// `epoch`, in insertion order.
    pub fn delta_since(&self, epoch: u64) -> &[Tuple] {
        let start = self.stamps.partition_point(|s| *s <= epoch);
        &self.tuples[start..]
    }

    /// Does the instance contain `tuple`?
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.seen.contains(tuple)
    }

    /// Insert `tuple`, validating it against the schema.
    ///
    /// Returns `Ok(true)` when the tuple was new, `Ok(false)` when it was
    /// already present (set semantics).
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.schema.validate(&tuple)?;
        Ok(self.insert_unchecked(tuple))
    }

    /// Insert without schema validation; used by the Datalog± layer whose
    /// predicates are untyped.  The tuple is stamped with the current epoch
    /// and live hash indexes are extended in place.
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        if self.seen.contains(&tuple) {
            return false;
        }
        let row = self.tuples.len();
        for index in self.indexes.values_mut() {
            index.insert(row, &tuple);
        }
        self.seen.insert(tuple.clone());
        self.tuples.push(tuple);
        self.stamps.push(self.epoch);
        true
    }

    /// Insert many tuples; returns the number actually added.
    pub fn insert_all<I>(&mut self, tuples: I) -> Result<usize>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut added = 0;
        for t in tuples {
            if self.insert(t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Build (or rebuild) a hash index on `position`.
    pub fn build_index(&mut self, position: usize) {
        self.indexes
            .insert(position, HashIndex::build(position, &self.tuples));
    }

    /// `true` if an index exists on `position`.
    pub fn has_index(&self, position: usize) -> bool {
        self.indexes.contains_key(&position)
    }

    /// Tuples matching all of `bindings` (position → required value).
    ///
    /// Uses an index when one is available for some bound position; falls
    /// back to a scan otherwise.  Probe values are borrowed — selection
    /// never clones or rebuilds a key.
    pub fn select(&self, bindings: &[(usize, &Value)]) -> Vec<&Tuple> {
        self.select_window(bindings, StampWindow::all())
    }

    /// Like [`RelationInstance::select`], restricted to rows whose insert
    /// epoch lies inside `window`.
    pub fn select_window(&self, bindings: &[(usize, &Value)], window: StampWindow) -> Vec<&Tuple> {
        let lo = window
            .after
            .map(|e| self.stamps.partition_point(|s| *s <= e))
            .unwrap_or(0);
        let hi = window
            .up_to
            .map(|e| self.stamps.partition_point(|s| *s <= e))
            .unwrap_or(self.tuples.len());
        if lo >= hi {
            return Vec::new();
        }
        if bindings.is_empty() {
            return self.tuples[lo..hi].iter().collect();
        }
        // Among the indexed bound positions, probe the one with the
        // shortest postings list — index lookups are cheap interned-id
        // hashes, so asking every candidate index for its selectivity
        // costs less than walking one long postings list.
        let best = bindings
            .iter()
            .filter_map(|(pos, value)| {
                self.indexes
                    .get(pos)
                    .map(|index| index.lookup(value))
                    .map(|rows| (rows.len(), rows))
            })
            .min_by_key(|(len, _)| *len);
        if let Some((_, rows)) = best {
            return rows
                .iter()
                .filter(|&&r| r >= lo && r < hi)
                .map(|&r| &self.tuples[r])
                .filter(|t| Self::matches(t, bindings))
                .collect();
        }
        self.tuples[lo..hi]
            .iter()
            .filter(|t| Self::matches(t, bindings))
            .collect()
    }

    /// Project every tuple onto `positions` (duplicates removed, insertion
    /// order preserved).
    pub fn project(&self, positions: &[usize]) -> Vec<Tuple> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for t in &self.tuples {
            let p = t.project(positions);
            if seen.insert(p.clone()) {
                out.push(p);
            }
        }
        out
    }

    /// Replace every occurrence of the labeled null `from` with `to`, in
    /// every tuple.  Duplicate tuples created by the substitution collapse.
    /// Returns the number of tuples that changed.
    ///
    /// Rewritten tuples are re-appended with the *current* epoch, so they
    /// show up in [`RelationInstance::delta_since`] — an EGD unification
    /// re-enables exactly the rule triggers that touch the rewritten rows,
    /// and the semi-naive chase discovers them through the delta.  Hash
    /// indexes are rebuilt iff at least one row changed (row ids shift when
    /// rows are re-appended); untouched relations keep their indexes as-is.
    pub fn substitute_null(&mut self, from: NullId, to: &Value) -> usize {
        let references_null = |t: &Tuple| t.values().iter().any(|v| v.as_null() == Some(from));
        if !self.tuples.iter().any(references_null) {
            return 0;
        }
        let old_tuples = std::mem::take(&mut self.tuples);
        let old_stamps = std::mem::take(&mut self.stamps);
        self.seen.clear();
        let mut rewritten: Vec<Tuple> = Vec::new();
        let mut changed = 0;
        for (tuple, stamp) in old_tuples.into_iter().zip(old_stamps) {
            let replaced = tuple.substitute_null(from, to);
            if replaced == tuple {
                if self.seen.insert(replaced.clone()) {
                    self.tuples.push(replaced);
                    self.stamps.push(stamp);
                }
            } else {
                changed += 1;
                rewritten.push(replaced);
            }
        }
        for replaced in rewritten {
            if self.seen.insert(replaced.clone()) {
                self.tuples.push(replaced);
                self.stamps.push(self.epoch);
            }
        }
        self.rebuild_indexes();
        changed
    }

    /// Remove tuples for which `keep` returns `false`; returns how many
    /// were removed.  Indexes are rebuilt; stamps of surviving rows are
    /// preserved.
    pub fn retain(&mut self, mut keep: impl FnMut(&Tuple) -> bool) -> usize {
        let before = self.tuples.len();
        let old_tuples = std::mem::take(&mut self.tuples);
        let old_stamps = std::mem::take(&mut self.stamps);
        for (tuple, stamp) in old_tuples.into_iter().zip(old_stamps) {
            if keep(&tuple) {
                self.tuples.push(tuple);
                self.stamps.push(stamp);
            }
        }
        self.seen = self.tuples.iter().cloned().collect();
        self.rebuild_indexes();
        before - self.tuples.len()
    }

    /// All labeled nulls occurring anywhere in the instance.
    pub fn nulls(&self) -> HashSet<NullId> {
        self.tuples.iter().flat_map(|t| t.nulls()).collect()
    }

    /// All constant values occurring anywhere in the instance.
    pub fn constants(&self) -> HashSet<Value> {
        self.tuples
            .iter()
            .flat_map(|t| t.values().iter())
            .filter(|v| v.is_constant())
            .cloned()
            .collect()
    }

    fn rebuild_indexes(&mut self) {
        let positions: Vec<usize> = self.indexes.keys().copied().collect();
        for pos in positions {
            self.build_index(pos);
        }
    }

    fn matches(tuple: &Tuple, bindings: &[(usize, &Value)]) -> bool {
        bindings
            .iter()
            .all(|(pos, value)| tuple.get(*pos) == Some(*value))
    }
}

impl fmt::Display for RelationInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, AttributeType};

    fn ward_schema() -> RelationSchema {
        RelationSchema::new(
            "UnitWard",
            vec![Attribute::string("Unit"), Attribute::string("Ward")],
        )
    }

    fn sample() -> RelationInstance {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.insert(Tuple::from_iter(["Standard", "W2"])).unwrap();
        r.insert(Tuple::from_iter(["Intensive", "W3"])).unwrap();
        r.insert(Tuple::from_iter(["Terminal", "W4"])).unwrap();
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = sample();
        assert_eq!(r.len(), 4);
        let added = r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        assert!(!added);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn insert_validates_schema() {
        let mut r = RelationInstance::new(RelationSchema::new(
            "R",
            vec![Attribute::new("n", AttributeType::Integer)],
        ));
        assert!(r.insert(Tuple::from_iter(["oops"])).is_err());
        assert!(r.insert(Tuple::from_iter([3i64])).is_ok());
    }

    #[test]
    fn select_without_index_scans() {
        let r = sample();
        let hits = r.select(&[(0, &Value::str("Standard"))]);
        assert_eq!(hits.len(), 2);
        let none = r.select(&[(0, &Value::str("Oncology"))]);
        assert!(none.is_empty());
    }

    #[test]
    fn select_with_index_matches_scan() {
        let mut r = sample();
        let scan: Vec<Tuple> = r
            .select(&[(0, &Value::str("Standard"))])
            .into_iter()
            .cloned()
            .collect();
        r.build_index(0);
        assert!(r.has_index(0));
        let indexed: Vec<Tuple> = r
            .select(&[(0, &Value::str("Standard"))])
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(scan, indexed);
    }

    #[test]
    fn select_with_multiple_bindings() {
        let r = sample();
        let hits = r.select(&[(0, &Value::str("Standard")), (1, &Value::str("W2"))]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], &Tuple::from_iter(["Standard", "W2"]));
    }

    #[test]
    fn select_empty_bindings_returns_all() {
        let r = sample();
        assert_eq!(r.select(&[]).len(), 4);
    }

    #[test]
    fn project_removes_duplicates() {
        let r = sample();
        let units = r.project(&[0]);
        assert_eq!(units.len(), 3);
        assert!(units.contains(&Tuple::from_iter(["Standard"])));
    }

    #[test]
    fn substitute_null_collapses_duplicates_and_updates_indexes() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::new(vec![Value::null(NullId(0)), Value::str("W1")]))
            .unwrap();
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.build_index(0);
        let changed = r.substitute_null(NullId(0), &Value::str("Standard"));
        assert_eq!(changed, 1);
        assert_eq!(r.len(), 1);
        let hits = r.select(&[(0, &Value::str("Standard"))]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn retain_removes_and_reports() {
        let mut r = sample();
        r.build_index(1);
        let removed = r.retain(|t| t.get(0) != Some(&Value::str("Intensive")));
        assert_eq!(removed, 1);
        assert_eq!(r.len(), 3);
        assert!(r.select(&[(1, &Value::str("W3"))]).is_empty());
    }

    #[test]
    fn nulls_and_constants_views() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::new(vec![Value::null(NullId(5)), Value::str("W9")]))
            .unwrap();
        assert_eq!(r.nulls().len(), 1);
        assert!(r.nulls().contains(&NullId(5)));
        assert_eq!(r.constants().len(), 1);
        assert!(r.constants().contains(&Value::str("W9")));
    }

    #[test]
    fn display_contains_schema_and_rows() {
        let r = sample();
        let rendered = r.to_string();
        assert!(rendered.contains("UnitWard"));
        assert!(rendered.contains("(Standard, W1)"));
    }

    // ------------------------------------------------------------------
    // Epoch stamping and delta tracking.
    // ------------------------------------------------------------------

    #[test]
    fn delta_since_sees_only_later_epochs() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.set_epoch(1);
        r.insert(Tuple::from_iter(["Standard", "W2"])).unwrap();
        r.set_epoch(2);
        r.insert(Tuple::from_iter(["Intensive", "W3"])).unwrap();

        assert_eq!(r.delta_since(0).len(), 2);
        assert_eq!(r.delta_since(1), &[Tuple::from_iter(["Intensive", "W3"])]);
        assert!(r.delta_since(2).is_empty());
        // Nothing can be stamped after the maximum epoch.
        assert_eq!(r.delta_since(u64::MAX), &[] as &[Tuple]);
    }

    #[test]
    fn select_window_splits_old_and_delta() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.set_epoch(1);
        r.insert(Tuple::from_iter(["Standard", "W2"])).unwrap();
        r.build_index(0);

        let probe = Value::str("Standard");
        let binding = [(0usize, &probe)];
        let old = r.select_window(&binding, StampWindow::old_up_to(0));
        assert_eq!(old, vec![&Tuple::from_iter(["Standard", "W1"])]);
        let delta = r.select_window(&binding, StampWindow::delta_after(0));
        assert_eq!(delta, vec![&Tuple::from_iter(["Standard", "W2"])]);
        let all = r.select_window(&binding, StampWindow::all());
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn substitution_restamps_rewritten_rows_into_the_delta() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::new(vec![Value::null(NullId(9)), Value::str("W1")]))
            .unwrap();
        r.insert(Tuple::from_iter(["Intensive", "W3"])).unwrap();
        r.set_epoch(5);
        let changed = r.substitute_null(NullId(9), &Value::str("Standard"));
        assert_eq!(changed, 1);
        // The rewritten row is in the delta after epoch 0; the untouched row
        // is not.
        assert_eq!(r.delta_since(0), &[Tuple::from_iter(["Standard", "W1"])]);
        // Stamps stay sorted, so window selection still works.
        assert_eq!(
            r.select_window(&[], StampWindow::old_up_to(0)),
            vec![&Tuple::from_iter(["Intensive", "W3"])]
        );
    }

    #[test]
    fn substitution_keeps_indexed_select_consistent() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::new(vec![Value::null(NullId(1)), Value::str("W1")]))
            .unwrap();
        r.insert(Tuple::from_iter(["Intensive", "W3"])).unwrap();
        r.build_index(0);
        r.substitute_null(NullId(1), &Value::str("Standard"));
        // The old index key must be gone and the new key present.
        assert!(r.select(&[(0, &Value::null(NullId(1)))]).is_empty());
        assert_eq!(r.select(&[(0, &Value::str("Standard"))]).len(), 1);
        assert_eq!(r.select(&[(0, &Value::str("Intensive"))]).len(), 1);
    }

    /// Replaying rows through `insert_stamped` must reproduce the original
    /// stamp sequence exactly, so delta queries behave identically after a
    /// reload.
    #[test]
    fn insert_stamped_round_trips_the_stamp_sequence() {
        let mut original = RelationInstance::new(ward_schema());
        original
            .insert(Tuple::from_iter(["Standard", "W1"]))
            .unwrap();
        original.set_epoch(3);
        original
            .insert(Tuple::from_iter(["Standard", "W2"]))
            .unwrap();
        original.set_epoch(7);
        original
            .insert(Tuple::from_iter(["Intensive", "W3"]))
            .unwrap();

        let mut reloaded = RelationInstance::new(original.schema().clone());
        for (tuple, stamp) in original
            .iter()
            .cloned()
            .zip(original.stamps().iter().copied())
        {
            assert!(reloaded.insert_stamped(tuple, stamp).unwrap());
        }
        assert_eq!(reloaded.tuples(), original.tuples());
        assert_eq!(reloaded.stamps(), original.stamps());
        assert_eq!(reloaded.delta_since(3).len(), original.delta_since(3).len());
        // A regressing stamp is clamped, not a panic and not a broken sort.
        let mut clamped = RelationInstance::new(ward_schema());
        clamped
            .insert_stamped(Tuple::from_iter(["A", "W1"]), 5)
            .unwrap();
        clamped
            .insert_stamped(Tuple::from_iter(["B", "W2"]), 2)
            .unwrap();
        assert_eq!(clamped.stamps(), &[5, 5]);
    }

    #[test]
    fn set_epoch_never_regresses_below_last_stamp() {
        let mut r = RelationInstance::new(ward_schema());
        r.set_epoch(7);
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.set_epoch(3); // clamped to 7
        assert_eq!(r.current_epoch(), 7);
        r.insert(Tuple::from_iter(["Standard", "W2"])).unwrap();
        assert_eq!(r.last_stamp(), Some(7));
        assert!(r.delta_since(6).len() == 2);
    }
}
