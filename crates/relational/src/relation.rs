//! Relation instances: sets of tuples conforming to a schema, with optional
//! per-attribute hash indexes.

use crate::error::Result;
use crate::index::HashIndex;
use crate::null::NullId;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// An instance of a relation: a duplicate-free, insertion-ordered set of
/// tuples over a [`RelationSchema`].
#[derive(Debug, Clone)]
pub struct RelationInstance {
    schema: RelationSchema,
    tuples: Vec<Tuple>,
    seen: HashSet<Tuple>,
    indexes: HashMap<usize, HashIndex>,
}

impl RelationInstance {
    /// An empty instance over `schema`.
    pub fn new(schema: RelationSchema) -> Self {
        Self {
            schema,
            tuples: Vec::new(),
            seen: HashSet::new(),
            indexes: HashMap::new(),
        }
    }

    /// The instance's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Relation name (shortcut for `schema().name()`).
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// `true` when the instance holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Iterate over the tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter()
    }

    /// The tuples as a slice, in insertion order.
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Does the instance contain `tuple`?
    pub fn contains(&self, tuple: &Tuple) -> bool {
        self.seen.contains(tuple)
    }

    /// Insert `tuple`, validating it against the schema.
    ///
    /// Returns `Ok(true)` when the tuple was new, `Ok(false)` when it was
    /// already present (set semantics).
    pub fn insert(&mut self, tuple: Tuple) -> Result<bool> {
        self.schema.validate(&tuple)?;
        Ok(self.insert_unchecked(tuple))
    }

    /// Insert without schema validation; used by the Datalog± layer whose
    /// predicates are untyped.
    pub fn insert_unchecked(&mut self, tuple: Tuple) -> bool {
        if self.seen.contains(&tuple) {
            return false;
        }
        let row = self.tuples.len();
        for index in self.indexes.values_mut() {
            index.insert(row, &tuple);
        }
        self.seen.insert(tuple.clone());
        self.tuples.push(tuple);
        true
    }

    /// Insert many tuples; returns the number actually added.
    pub fn insert_all<I>(&mut self, tuples: I) -> Result<usize>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let mut added = 0;
        for t in tuples {
            if self.insert(t)? {
                added += 1;
            }
        }
        Ok(added)
    }

    /// Build (or rebuild) a hash index on `position`.
    pub fn build_index(&mut self, position: usize) {
        self.indexes
            .insert(position, HashIndex::build(position, &self.tuples));
    }

    /// `true` if an index exists on `position`.
    pub fn has_index(&self, position: usize) -> bool {
        self.indexes.contains_key(&position)
    }

    /// Tuples matching all of `bindings` (position → required value).
    ///
    /// Uses an index when one is available for some bound position; falls
    /// back to a scan otherwise.
    pub fn select(&self, bindings: &[(usize, Value)]) -> Vec<&Tuple> {
        if bindings.is_empty() {
            return self.tuples.iter().collect();
        }
        // Prefer an indexed position.
        if let Some((pos, value)) = bindings
            .iter()
            .find(|(pos, _)| self.indexes.contains_key(pos))
        {
            let rows = self.indexes[pos].lookup(value);
            return rows
                .iter()
                .map(|&r| &self.tuples[r])
                .filter(|t| Self::matches(t, bindings))
                .collect();
        }
        self.tuples
            .iter()
            .filter(|t| Self::matches(t, bindings))
            .collect()
    }

    /// Project every tuple onto `positions` (duplicates removed, insertion
    /// order preserved).
    pub fn project(&self, positions: &[usize]) -> Vec<Tuple> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for t in &self.tuples {
            let p = t.project(positions);
            if seen.insert(p.clone()) {
                out.push(p);
            }
        }
        out
    }

    /// Replace every occurrence of the labeled null `from` with `to`, in
    /// every tuple.  Duplicate tuples created by the substitution collapse.
    /// Returns the number of tuples that changed.
    pub fn substitute_null(&mut self, from: NullId, to: &Value) -> usize {
        let mut changed = 0;
        let old = std::mem::take(&mut self.tuples);
        self.seen.clear();
        let index_positions: Vec<usize> = self.indexes.keys().copied().collect();
        self.indexes.clear();
        for tuple in old {
            let replaced = tuple.substitute_null(from, to);
            if replaced != tuple {
                changed += 1;
            }
            if !self.seen.contains(&replaced) {
                self.seen.insert(replaced.clone());
                self.tuples.push(replaced);
            }
        }
        for pos in index_positions {
            self.build_index(pos);
        }
        changed
    }

    /// Remove tuples for which `predicate` returns `true`; returns how many
    /// were removed.  Indexes are rebuilt.
    pub fn retain(&mut self, mut keep: impl FnMut(&Tuple) -> bool) -> usize {
        let before = self.tuples.len();
        let index_positions: Vec<usize> = self.indexes.keys().copied().collect();
        self.tuples.retain(|t| keep(t));
        self.seen = self.tuples.iter().cloned().collect();
        self.indexes.clear();
        for pos in index_positions {
            self.build_index(pos);
        }
        before - self.tuples.len()
    }

    /// All labeled nulls occurring anywhere in the instance.
    pub fn nulls(&self) -> HashSet<NullId> {
        self.tuples.iter().flat_map(|t| t.nulls()).collect()
    }

    /// All constant values occurring anywhere in the instance.
    pub fn constants(&self) -> HashSet<Value> {
        self.tuples
            .iter()
            .flat_map(|t| t.values().iter())
            .filter(|v| v.is_constant())
            .cloned()
            .collect()
    }

    fn matches(tuple: &Tuple, bindings: &[(usize, Value)]) -> bool {
        bindings
            .iter()
            .all(|(pos, value)| tuple.get(*pos) == Some(value))
    }
}

impl fmt::Display for RelationInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for t in &self.tuples {
            writeln!(f, "  {t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, AttributeType};

    fn ward_schema() -> RelationSchema {
        RelationSchema::new(
            "UnitWard",
            vec![Attribute::string("Unit"), Attribute::string("Ward")],
        )
    }

    fn sample() -> RelationInstance {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.insert(Tuple::from_iter(["Standard", "W2"])).unwrap();
        r.insert(Tuple::from_iter(["Intensive", "W3"])).unwrap();
        r.insert(Tuple::from_iter(["Terminal", "W4"])).unwrap();
        r
    }

    #[test]
    fn insert_deduplicates() {
        let mut r = sample();
        assert_eq!(r.len(), 4);
        let added = r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        assert!(!added);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn insert_validates_schema() {
        let mut r = RelationInstance::new(RelationSchema::new(
            "R",
            vec![Attribute::new("n", AttributeType::Integer)],
        ));
        assert!(r.insert(Tuple::from_iter(["oops"])).is_err());
        assert!(r.insert(Tuple::from_iter([3i64])).is_ok());
    }

    #[test]
    fn select_without_index_scans() {
        let r = sample();
        let hits = r.select(&[(0, Value::str("Standard"))]);
        assert_eq!(hits.len(), 2);
        let none = r.select(&[(0, Value::str("Oncology"))]);
        assert!(none.is_empty());
    }

    #[test]
    fn select_with_index_matches_scan() {
        let mut r = sample();
        let scan: Vec<Tuple> = r
            .select(&[(0, Value::str("Standard"))])
            .into_iter()
            .cloned()
            .collect();
        r.build_index(0);
        assert!(r.has_index(0));
        let indexed: Vec<Tuple> = r
            .select(&[(0, Value::str("Standard"))])
            .into_iter()
            .cloned()
            .collect();
        assert_eq!(scan, indexed);
    }

    #[test]
    fn select_with_multiple_bindings() {
        let r = sample();
        let hits = r.select(&[(0, Value::str("Standard")), (1, Value::str("W2"))]);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0], &Tuple::from_iter(["Standard", "W2"]));
    }

    #[test]
    fn select_empty_bindings_returns_all() {
        let r = sample();
        assert_eq!(r.select(&[]).len(), 4);
    }

    #[test]
    fn project_removes_duplicates() {
        let r = sample();
        let units = r.project(&[0]);
        assert_eq!(units.len(), 3);
        assert!(units.contains(&Tuple::from_iter(["Standard"])));
    }

    #[test]
    fn substitute_null_collapses_duplicates_and_updates_indexes() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::new(vec![Value::null(NullId(0)), Value::str("W1")]))
            .unwrap();
        r.insert(Tuple::from_iter(["Standard", "W1"])).unwrap();
        r.build_index(0);
        let changed = r.substitute_null(NullId(0), &Value::str("Standard"));
        assert_eq!(changed, 1);
        assert_eq!(r.len(), 1);
        let hits = r.select(&[(0, Value::str("Standard"))]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn retain_removes_and_reports() {
        let mut r = sample();
        r.build_index(1);
        let removed = r.retain(|t| t.get(0) != Some(&Value::str("Intensive")));
        assert_eq!(removed, 1);
        assert_eq!(r.len(), 3);
        assert!(r.select(&[(1, Value::str("W3"))]).is_empty());
    }

    #[test]
    fn nulls_and_constants_views() {
        let mut r = RelationInstance::new(ward_schema());
        r.insert(Tuple::new(vec![Value::null(NullId(5)), Value::str("W9")]))
            .unwrap();
        assert_eq!(r.nulls().len(), 1);
        assert!(r.nulls().contains(&NullId(5)));
        assert_eq!(r.constants().len(), 1);
        assert!(r.constants().contains(&Value::str("W9")));
    }

    #[test]
    fn display_contains_schema_and_rows() {
        let r = sample();
        let rendered = r.to_string();
        assert!(rendered.contains("UnitWard"));
        assert!(rendered.contains("(Standard, W1)"));
    }
}
