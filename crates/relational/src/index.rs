//! Hash indexes on relation instances.
//!
//! The chase and the query-answering algorithms repeatedly look up tuples by
//! the value at a fixed position (e.g. "all `UnitWard` tuples whose child is
//! `W1`").  A [`HashIndex`] maps a value at one position to the row ids of the
//! tuples carrying it.

use crate::fxhash::FxHashMap;
use crate::tuple::Tuple;
use crate::value::Value;

/// A single-attribute hash index over a relation's tuples.
///
/// Postings are keyed by [`Value`] under the crate's [FxHash
/// shim](crate::fxhash): keys are interned scalars, so both insert and probe
/// hash a handful of machine words.  Probes
/// ([`HashIndex::lookup`]) take the key by reference — callers never
/// rebuild or clone a probe `Value` to ask a question.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    /// The indexed attribute position.
    position: usize,
    /// Value at `position` → row ids of tuples carrying that value.
    entries: FxHashMap<Value, Vec<usize>>,
}

impl HashIndex {
    /// An empty index on `position`.
    pub fn new(position: usize) -> Self {
        Self {
            position,
            entries: FxHashMap::default(),
        }
    }

    /// Build an index over existing rows.
    pub fn build(position: usize, tuples: &[Tuple]) -> Self {
        let mut index = Self::new(position);
        for (row, tuple) in tuples.iter().enumerate() {
            index.insert(row, tuple);
        }
        index
    }

    /// The indexed position.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Record that `tuple` lives at `row`.
    pub fn insert(&mut self, row: usize, tuple: &Tuple) {
        if let Some(value) = tuple.get(self.position) {
            self.entries.entry(*value).or_default().push(row);
        }
    }

    /// Row ids of tuples whose indexed attribute equals `value`.
    pub fn lookup(&self, value: &Value) -> &[usize] {
        self.entries.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys in the index.
    pub fn distinct_keys(&self) -> usize {
        self.entries.len()
    }

    /// Drop all entries (used when the underlying relation is rewritten,
    /// e.g. after an EGD-driven null substitution).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples() -> Vec<Tuple> {
        vec![
            Tuple::from_iter(["W1", "Standard"]),
            Tuple::from_iter(["W2", "Standard"]),
            Tuple::from_iter(["W3", "Intensive"]),
            Tuple::from_iter(["W4", "Terminal"]),
        ]
    }

    #[test]
    fn build_and_lookup() {
        let index = HashIndex::build(1, &tuples());
        assert_eq!(index.lookup(&Value::str("Standard")), &[0, 1]);
        assert_eq!(index.lookup(&Value::str("Intensive")), &[2]);
        assert_eq!(index.lookup(&Value::str("Unknown")), &[] as &[usize]);
        assert_eq!(index.distinct_keys(), 3);
        assert_eq!(index.position(), 1);
    }

    #[test]
    fn incremental_insert_matches_bulk_build() {
        let ts = tuples();
        let bulk = HashIndex::build(0, &ts);
        let mut inc = HashIndex::new(0);
        for (row, t) in ts.iter().enumerate() {
            inc.insert(row, t);
        }
        for t in &ts {
            let v = t.get(0).unwrap();
            assert_eq!(bulk.lookup(v), inc.lookup(v));
        }
    }

    #[test]
    fn clear_empties_the_index() {
        let mut index = HashIndex::build(0, &tuples());
        index.clear();
        assert_eq!(index.distinct_keys(), 0);
        assert!(index.lookup(&Value::str("W1")).is_empty());
    }

    #[test]
    fn out_of_range_position_is_ignored() {
        let mut index = HashIndex::new(9);
        index.insert(0, &Tuple::from_iter(["only", "two"]));
        assert_eq!(index.distinct_keys(), 0);
    }
}
