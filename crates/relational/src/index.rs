//! Hash indexes on relation instances.
//!
//! The chase and the query-answering algorithms repeatedly look up rows by
//! the value at a fixed position (e.g. "all `UnitWard` rows whose child is
//! `W1`").  A [`HashIndex`] maps a value at one position to the **row ids**
//! of the rows carrying it.  Row ids are `u32` — the currency of the
//! columnar join engine — and each postings list is sorted ascending (rows
//! are appended monotonically), so candidate sets from several indexes can
//! be combined with the galloping [`intersect_sorted`] without touching the
//! rows themselves.

use crate::counters;
use crate::fxhash::FxHashMap;
use crate::value::Value;

/// A single-attribute hash index over a relation's rows.
///
/// Postings are keyed by [`Value`] under the crate's [FxHash
/// shim](crate::fxhash): keys are interned scalars, so both insert and probe
/// hash a handful of machine words.  Probes ([`HashIndex::lookup`]) take the
/// key by reference and return a borrowed sorted id slice — callers never
/// rebuild or clone a probe `Value`, and never allocate to ask a question.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    /// The indexed attribute position.
    position: usize,
    /// Value at `position` → sorted row ids of rows carrying that value.
    entries: FxHashMap<Value, Vec<u32>>,
}

impl HashIndex {
    /// An empty index on `position`.
    pub fn new(position: usize) -> Self {
        Self {
            position,
            entries: FxHashMap::default(),
        }
    }

    /// Build an index over an existing column (the dense value vector of
    /// the indexed position, one entry per row).
    pub fn build(position: usize, column: &[Value]) -> Self {
        let mut index = Self::new(position);
        for (row, value) in column.iter().enumerate() {
            index.insert(row as u32, value);
        }
        index
    }

    /// The indexed position.
    pub fn position(&self) -> usize {
        self.position
    }

    /// Record that `value` sits at the indexed position of row `row`.
    /// Rows must be appended in ascending id order (the relation's append
    /// path guarantees this), keeping every postings list sorted.
    pub fn insert(&mut self, row: u32, value: &Value) {
        self.entries.entry(*value).or_default().push(row);
    }

    /// Sorted row ids of rows whose indexed attribute equals `value`.
    pub fn lookup(&self, value: &Value) -> &[u32] {
        self.entries.get(value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Remove row `row` from the postings list of `value` — the tombstone
    /// path of the arena: a deleted row must stop answering probes without
    /// a full index rebuild.  Postings are sorted, so removal is a binary
    /// search plus one shift; emptied postings lists are dropped entirely.
    /// Returns whether the row was present.
    pub fn remove(&mut self, row: u32, value: &Value) -> bool {
        let Some(ids) = self.entries.get_mut(value) else {
            return false;
        };
        let Ok(at) = ids.binary_search(&row) else {
            return false;
        };
        ids.remove(at);
        if ids.is_empty() {
            self.entries.remove(value);
        }
        true
    }

    /// Number of distinct keys in the index.
    pub fn distinct_keys(&self) -> usize {
        self.entries.len()
    }

    /// Approximate heap footprint of the postings, in bytes.
    pub fn postings_bytes(&self) -> usize {
        self.entries
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<u32>())
            .sum()
    }

    /// Drop all entries (used when the underlying relation is rewritten,
    /// e.g. after an EGD-driven null substitution).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Clamp a sorted id slice to ids in `[lo, hi)` — a stamp window is a
/// contiguous id range, so window restriction of a postings list is two
/// binary searches.
pub fn clamp_sorted(ids: &[u32], lo: u32, hi: u32) -> &[u32] {
    let start = ids.partition_point(|&r| r < lo);
    let end = ids.partition_point(|&r| r < hi);
    &ids[start..end]
}

/// Galloping (exponential-search) intersection of two sorted id slices,
/// appended to `out`.
///
/// The search always gallops through the **longer** side for each element of
/// the shorter one, so the cost is `O(short · log(long/short))` — the regime
/// hash-join probe chains degenerate in (one huge postings list walked per
/// delta row) is exactly where this wins.  Each call records its seek count
/// in the process-wide [`counters`].
pub fn intersect_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut base = 0usize;
    let mut seeks = 0u64;
    for &id in short {
        // Gallop: double the step until we overshoot, then binary search
        // the bracketed run.
        let rest = &long[base..];
        let mut step = 1usize;
        let mut bound = 0usize;
        while bound < rest.len() && rest[bound] < id {
            bound = bound * 2 + 1;
            step += 1;
        }
        seeks += step as u64;
        let hi = bound.min(rest.len());
        let lo = bound / 2;
        let offset = lo + rest[lo..hi].partition_point(|&r| r < id);
        base += offset;
        if base < long.len() && long[base] == id {
            out.push(id);
            base += 1;
        }
        if base >= long.len() {
            break;
        }
    }
    counters::record_gallop_seeks(seeks);
}

/// Is `id` contained in the sorted slice `ids`?  Binary search, counted as
/// one galloping seek.
pub fn contains_sorted(ids: &[u32], id: u32) -> bool {
    counters::record_gallop_seeks(1);
    ids.binary_search(&id).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn column() -> Vec<Value> {
        // Second attribute of the classic UnitWard sample.
        vec![
            Value::str("Standard"),
            Value::str("Standard"),
            Value::str("Intensive"),
            Value::str("Terminal"),
        ]
    }

    #[test]
    fn build_and_lookup() {
        let index = HashIndex::build(1, &column());
        assert_eq!(index.lookup(&Value::str("Standard")), &[0, 1]);
        assert_eq!(index.lookup(&Value::str("Intensive")), &[2]);
        assert_eq!(index.lookup(&Value::str("Unknown")), &[] as &[u32]);
        assert_eq!(index.distinct_keys(), 3);
        assert_eq!(index.position(), 1);
    }

    #[test]
    fn incremental_insert_matches_bulk_build() {
        let col = column();
        let bulk = HashIndex::build(0, &col);
        let mut inc = HashIndex::new(0);
        for (row, v) in col.iter().enumerate() {
            inc.insert(row as u32, v);
        }
        for v in &col {
            assert_eq!(bulk.lookup(v), inc.lookup(v));
        }
    }

    #[test]
    fn postings_stay_sorted_under_append_order() {
        let mut index = HashIndex::new(0);
        for row in 0..100u32 {
            index.insert(row, &Value::int((row % 3) as i64));
        }
        for key in 0..3i64 {
            let ids = index.lookup(&Value::int(key));
            assert!(ids.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn remove_deletes_one_posting_and_drops_empty_lists() {
        let mut index = HashIndex::build(1, &column());
        assert!(index.remove(0, &Value::str("Standard")));
        assert_eq!(index.lookup(&Value::str("Standard")), &[1]);
        // Removing the same row again is a no-op.
        assert!(!index.remove(0, &Value::str("Standard")));
        // Unknown key: no-op.
        assert!(!index.remove(0, &Value::str("Oncology")));
        // Last posting of a key removes the key itself.
        assert!(index.remove(2, &Value::str("Intensive")));
        assert!(index.lookup(&Value::str("Intensive")).is_empty());
        assert_eq!(index.distinct_keys(), 2);
    }

    #[test]
    fn clear_empties_the_index() {
        let mut index = HashIndex::build(0, &column());
        index.clear();
        assert_eq!(index.distinct_keys(), 0);
        assert!(index.lookup(&Value::str("Standard")).is_empty());
    }

    #[test]
    fn clamp_sorted_selects_the_window() {
        let ids = [1u32, 3, 5, 7, 9];
        assert_eq!(clamp_sorted(&ids, 0, 10), &ids);
        assert_eq!(clamp_sorted(&ids, 3, 8), &[3, 5, 7]);
        assert_eq!(clamp_sorted(&ids, 4, 5), &[] as &[u32]);
        assert_eq!(clamp_sorted(&ids, 9, 9), &[] as &[u32]);
    }

    #[test]
    fn galloping_intersection_equals_naive() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], vec![1, 2, 3]),
            (vec![1, 2, 3], vec![]),
            (vec![1, 3, 5, 7], vec![2, 3, 4, 7, 8]),
            ((0..1000).collect(), vec![0, 500, 999, 1001]),
            (vec![5], (0..100).collect()),
            (
                (0..50).map(|i| i * 3).collect(),
                (0..50).map(|i| i * 5).collect(),
            ),
        ];
        for (a, b) in cases {
            let naive: Vec<u32> = a.iter().copied().filter(|x| b.contains(x)).collect();
            let mut fast = Vec::new();
            intersect_sorted(&a, &b, &mut fast);
            assert_eq!(fast, naive, "a={a:?} b={b:?}");
            // Symmetric.
            let mut rev = Vec::new();
            intersect_sorted(&b, &a, &mut rev);
            assert_eq!(rev, naive);
        }
    }

    #[test]
    fn contains_sorted_is_exact() {
        let ids = [2u32, 4, 6];
        assert!(contains_sorted(&ids, 4));
        assert!(!contains_sorted(&ids, 5));
        assert!(!contains_sorted(&[], 0));
    }
}
