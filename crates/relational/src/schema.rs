//! Relation schemas and attribute typing.
//!
//! Every relation — contextual relations, categorical relations, and the
//! unary/binary predicates that the multidimensional compiler emits — is
//! described by a [`RelationSchema`]: a name plus an ordered list of typed
//! attributes.

use crate::error::{RelationalError, Result};
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// The type of an attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttributeType {
    /// Strings (names, member identifiers, …).
    String,
    /// 64-bit integers.
    Integer,
    /// Double-precision floats (measurement values, …).
    Double,
    /// Booleans.
    Boolean,
    /// Timestamps (minutes since an epoch; see [`Value::Time`]).
    Time,
    /// Any value accepted; used for predicates whose positions are untyped
    /// (the Datalog± layer treats all positions as `Any`).
    Any,
}

impl AttributeType {
    /// Does `value` conform to this type?  Labeled nulls conform to every
    /// type (they stand for an unknown domain value).
    pub fn admits(self, value: &Value) -> bool {
        matches!(
            (self, value),
            (_, Value::Null(_))
                | (AttributeType::Any, _)
                | (AttributeType::String, Value::Str(_))
                | (AttributeType::Integer, Value::Int(_))
                | (AttributeType::Double, Value::Double(_))
                | (AttributeType::Double, Value::Int(_))
                | (AttributeType::Boolean, Value::Bool(_))
                | (AttributeType::Time, Value::Time(_))
        )
    }
}

impl fmt::Display for AttributeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AttributeType::String => "String",
            AttributeType::Integer => "Integer",
            AttributeType::Double => "Double",
            AttributeType::Boolean => "Boolean",
            AttributeType::Time => "Time",
            AttributeType::Any => "Any",
        };
        write!(f, "{name}")
    }
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name, unique within its relation.
    pub name: String,
    /// Declared type.
    pub ty: AttributeType,
}

impl Attribute {
    /// Construct an attribute.
    pub fn new(name: impl Into<String>, ty: AttributeType) -> Self {
        Self {
            name: name.into(),
            ty,
        }
    }

    /// A string-typed attribute (the most common case in the paper).
    pub fn string(name: impl Into<String>) -> Self {
        Self::new(name, AttributeType::String)
    }

    /// An untyped attribute.
    pub fn any(name: impl Into<String>) -> Self {
        Self::new(name, AttributeType::Any)
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.ty)
    }
}

/// Schema of a relation: a name and an ordered list of attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<Attribute>,
}

impl RelationSchema {
    /// Construct a schema from a name and attributes.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> Self {
        Self {
            name: name.into(),
            attributes,
        }
    }

    /// Construct a schema whose attributes are all [`AttributeType::Any`],
    /// named `a0..a{arity-1}` — the shape used for Datalog± predicates.
    pub fn untyped(name: impl Into<String>, arity: usize) -> Self {
        let attributes = (0..arity)
            .map(|i| Attribute::any(format!("a{i}")))
            .collect();
        Self {
            name: name.into(),
            attributes,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// The attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Attribute names in declaration order.
    pub fn attribute_names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// The position of the attribute called `name`, if any.
    pub fn position_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == name)
    }

    /// The position of the attribute called `name`, or an error naming the
    /// relation when missing.
    pub fn require_position(&self, name: &str) -> Result<usize> {
        self.position_of(name)
            .ok_or_else(|| RelationalError::UnknownAttribute {
                relation: self.name.clone(),
                attribute: name.to_string(),
            })
    }

    /// The attribute at `position`, if in range.
    pub fn attribute_at(&self, position: usize) -> Option<&Attribute> {
        self.attributes.get(position)
    }

    /// Validate a tuple against this schema: arity and attribute types.
    pub fn validate(&self, tuple: &Tuple) -> Result<()> {
        if tuple.arity() != self.arity() {
            return Err(RelationalError::ArityMismatch {
                relation: self.name.clone(),
                expected: self.arity(),
                actual: tuple.arity(),
            });
        }
        for (attr, value) in self.attributes.iter().zip(tuple.values()) {
            if !attr.ty.admits(value) {
                return Err(RelationalError::TypeMismatch {
                    relation: self.name.clone(),
                    attribute: attr.name.clone(),
                    expected: attr.ty.to_string(),
                    actual: format!("{value} ({})", value.kind()),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, attr) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{attr}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::null::NullId;

    fn measurements_schema() -> RelationSchema {
        RelationSchema::new(
            "Measurements",
            vec![
                Attribute::new("Time", AttributeType::Time),
                Attribute::string("Patient"),
                Attribute::new("Value", AttributeType::Double),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let schema = measurements_schema();
        assert_eq!(schema.name(), "Measurements");
        assert_eq!(schema.arity(), 3);
        assert_eq!(schema.attribute_names(), vec!["Time", "Patient", "Value"]);
        assert_eq!(schema.position_of("Patient"), Some(1));
        assert_eq!(schema.position_of("Nurse"), None);
        assert_eq!(schema.attribute_at(2).unwrap().ty, AttributeType::Double);
    }

    #[test]
    fn require_position_errors_on_missing_attribute() {
        let schema = measurements_schema();
        let err = schema.require_position("Nurse").unwrap_err();
        assert_eq!(
            err,
            RelationalError::UnknownAttribute {
                relation: "Measurements".into(),
                attribute: "Nurse".into()
            }
        );
    }

    #[test]
    fn validate_accepts_well_typed_tuples() {
        let schema = measurements_schema();
        let tuple = Tuple::new(vec![
            Value::parse_time("Sep/5-12:10").unwrap(),
            Value::str("Tom Waits"),
            Value::double(38.2),
        ]);
        assert!(schema.validate(&tuple).is_ok());
    }

    #[test]
    fn validate_accepts_nulls_at_any_position() {
        let schema = measurements_schema();
        let tuple = Tuple::new(vec![
            Value::null(NullId(0)),
            Value::null(NullId(1)),
            Value::null(NullId(2)),
        ]);
        assert!(schema.validate(&tuple).is_ok());
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let schema = measurements_schema();
        let tuple = Tuple::new(vec![Value::str("Tom Waits")]);
        assert!(matches!(
            schema.validate(&tuple),
            Err(RelationalError::ArityMismatch {
                expected: 3,
                actual: 1,
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_wrong_type() {
        let schema = measurements_schema();
        let tuple = Tuple::new(vec![
            Value::str("not a time"),
            Value::str("Tom Waits"),
            Value::double(38.2),
        ]);
        assert!(matches!(
            schema.validate(&tuple),
            Err(RelationalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn integers_are_admitted_where_doubles_are_expected() {
        assert!(AttributeType::Double.admits(&Value::int(37)));
    }

    #[test]
    fn any_admits_everything() {
        for v in [
            Value::str("x"),
            Value::int(1),
            Value::double(1.0),
            Value::bool(true),
            Value::time(0),
            Value::null(NullId(0)),
        ] {
            assert!(AttributeType::Any.admits(&v));
        }
    }

    #[test]
    fn untyped_schema_has_any_attributes() {
        let schema = RelationSchema::untyped("P", 4);
        assert_eq!(schema.arity(), 4);
        assert!(schema
            .attributes()
            .iter()
            .all(|a| a.ty == AttributeType::Any));
        assert_eq!(schema.attribute_names(), vec!["a0", "a1", "a2", "a3"]);
    }

    #[test]
    fn display_renders_schema() {
        let schema = measurements_schema();
        assert_eq!(
            schema.to_string(),
            "Measurements(Time: Time, Patient: String, Value: Double)"
        );
    }
}
