//! Minimal CSV import/export for relation instances.
//!
//! The benchmark harness and examples use this to load and dump small tables
//! (the paper's Tables I–V) without pulling in an external CSV crate.  The
//! dialect is deliberately simple: comma-separated, no quoting, values are
//! parsed according to the target schema's attribute types.

use crate::error::{RelationalError, Result};
use crate::relation::RelationInstance;
use crate::schema::{AttributeType, RelationSchema};
use crate::tuple::Tuple;
use crate::value::Value;

/// Parse one CSV cell according to an attribute type.
fn parse_cell(ty: AttributeType, raw: &str, line: usize) -> Result<Value> {
    let raw = raw.trim();
    let err = |message: String| RelationalError::CsvParse { line, message };
    match ty {
        AttributeType::String => Ok(Value::str(raw)),
        AttributeType::Integer => raw
            .parse::<i64>()
            .map(Value::int)
            .map_err(|_| err(format!("'{raw}' is not an integer"))),
        AttributeType::Double => raw
            .parse::<f64>()
            .map(Value::double)
            .map_err(|_| err(format!("'{raw}' is not a double"))),
        AttributeType::Boolean => match raw {
            "true" | "1" => Ok(Value::bool(true)),
            "false" | "0" => Ok(Value::bool(false)),
            _ => Err(err(format!("'{raw}' is not a boolean"))),
        },
        AttributeType::Time => Value::parse_time(raw)
            .ok_or_else(|| err(format!("'{raw}' is not a Mon/D-HH:MM timestamp"))),
        AttributeType::Any => {
            // Best-effort inference: integer, then double, then timestamp,
            // then plain string.
            if let Ok(i) = raw.parse::<i64>() {
                Ok(Value::int(i))
            } else if let Ok(d) = raw.parse::<f64>() {
                Ok(Value::double(d))
            } else if let Some(t) = Value::parse_time(raw) {
                Ok(t)
            } else {
                Ok(Value::str(raw))
            }
        }
    }
}

/// Load CSV text (no header) into a fresh relation instance over `schema`.
pub fn load_csv(schema: &RelationSchema, text: &str) -> Result<RelationInstance> {
    let mut relation = RelationInstance::new(schema.clone());
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != schema.arity() {
            return Err(RelationalError::CsvParse {
                line: line_no,
                message: format!("expected {} cells, found {}", schema.arity(), cells.len()),
            });
        }
        let mut values = Vec::with_capacity(cells.len());
        for (attr, cell) in schema.attributes().iter().zip(cells) {
            values.push(parse_cell(attr.ty, cell, line_no)?);
        }
        relation.insert(Tuple::new(values))?;
    }
    Ok(relation)
}

/// Render a relation instance as CSV text (no header, one tuple per line).
pub fn dump_csv(relation: &RelationInstance) -> String {
    let mut out = String::new();
    for tuple in relation.iter() {
        let line: Vec<String> = tuple.values().iter().map(|v| v.to_string()).collect();
        out.push_str(&line.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn schema() -> RelationSchema {
        RelationSchema::new(
            "Measurements",
            vec![
                Attribute::new("Time", AttributeType::Time),
                Attribute::string("Patient"),
                Attribute::new("Value", AttributeType::Double),
            ],
        )
    }

    #[test]
    fn load_simple_table() {
        let text = "Sep/5-12:10,Tom Waits,38.2\nSep/6-11:50,Tom Waits,37.1\n";
        let rel = load_csv(&schema(), text).unwrap();
        assert_eq!(rel.len(), 2);
        let first = &rel.tuples()[0];
        assert_eq!(first.get(1), Some(&Value::str("Tom Waits")));
        assert_eq!(first.get(2), Some(&Value::double(38.2)));
    }

    #[test]
    fn blank_lines_and_comments_are_skipped() {
        let text = "# comment\n\nSep/5-12:10,Tom Waits,38.2\n";
        let rel = load_csv(&schema(), text).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn arity_mismatch_is_reported_with_line_number() {
        let text = "Sep/5-12:10,Tom Waits\n";
        let err = load_csv(&schema(), text).unwrap_err();
        assert!(matches!(err, RelationalError::CsvParse { line: 1, .. }));
    }

    #[test]
    fn bad_cell_is_reported() {
        let text = "Sep/5-12:10,Tom Waits,hot\n";
        let err = load_csv(&schema(), text).unwrap_err();
        assert!(err.to_string().contains("not a double"));
    }

    #[test]
    fn any_typed_cells_infer_kinds() {
        let schema = RelationSchema::untyped("R", 3);
        let rel = load_csv(&schema, "42,3.5,hello\n").unwrap();
        let t = &rel.tuples()[0];
        assert_eq!(t.get(0), Some(&Value::int(42)));
        assert_eq!(t.get(1), Some(&Value::double(3.5)));
        assert_eq!(t.get(2), Some(&Value::str("hello")));
    }

    #[test]
    fn round_trip_dump_then_load() {
        let text = "Sep/5-12:10,Tom Waits,38.2\nSep/6-11:50,Lou Reed,37.5\n";
        let rel = load_csv(&schema(), text).unwrap();
        let dumped = dump_csv(&rel);
        let reloaded = load_csv(&schema(), &dumped).unwrap();
        assert_eq!(reloaded.len(), rel.len());
        for t in rel.iter() {
            assert!(reloaded.contains(&t));
        }
    }

    #[test]
    fn boolean_parsing() {
        let schema =
            RelationSchema::new("Flags", vec![Attribute::new("f", AttributeType::Boolean)]);
        let rel = load_csv(&schema, "true\n0\n").unwrap();
        assert_eq!(rel.tuples()[0].get(0), Some(&Value::bool(true)));
        assert_eq!(rel.tuples()[1].get(0), Some(&Value::bool(false)));
        assert!(load_csv(&schema, "maybe\n").is_err());
    }
}
