//! Error types for the relational substrate.

use std::fmt;

/// Errors raised by the relational substrate.
///
/// The substrate is deliberately strict: schema mismatches are reported as
/// errors rather than silently coerced, because downstream layers (the chase,
/// the multidimensional compiler) rely on well-typed instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelationalError {
    /// A tuple's arity does not match the relation schema's arity.
    ArityMismatch {
        /// Relation the tuple was destined for.
        relation: String,
        /// Arity declared by the schema.
        expected: usize,
        /// Arity of the offending tuple.
        actual: usize,
    },
    /// A tuple value does not match the declared attribute type.
    TypeMismatch {
        /// Relation the tuple was destined for.
        relation: String,
        /// Attribute (by name) whose type was violated.
        attribute: String,
        /// Declared type, rendered for display.
        expected: String,
        /// Offending value, rendered for display.
        actual: String,
    },
    /// A relation was looked up by a name that is not part of the database.
    UnknownRelation(String),
    /// A relation was registered twice with incompatible schemas.
    SchemaConflict(String),
    /// An attribute was looked up by a name not present in the schema.
    UnknownAttribute {
        /// Relation whose schema was consulted.
        relation: String,
        /// The missing attribute name.
        attribute: String,
    },
    /// A CSV line could not be parsed into a tuple of the target schema.
    CsvParse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the failure.
        message: String,
    },
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for relation '{relation}': schema has {expected} attributes, tuple has {actual}"
            ),
            RelationalError::TypeMismatch {
                relation,
                attribute,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch for '{relation}.{attribute}': expected {expected}, got {actual}"
            ),
            RelationalError::UnknownRelation(name) => {
                write!(f, "unknown relation '{name}'")
            }
            RelationalError::SchemaConflict(name) => {
                write!(f, "relation '{name}' already registered with a different schema")
            }
            RelationalError::UnknownAttribute { relation, attribute } => {
                write!(f, "relation '{relation}' has no attribute named '{attribute}'")
            }
            RelationalError::CsvParse { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for RelationalError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RelationalError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_arity_mismatch() {
        let e = RelationalError::ArityMismatch {
            relation: "Measurements".into(),
            expected: 3,
            actual: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains("Measurements"));
        assert!(msg.contains('3'));
        assert!(msg.contains('2'));
    }

    #[test]
    fn display_unknown_relation() {
        let e = RelationalError::UnknownRelation("Shifts".into());
        assert_eq!(e.to_string(), "unknown relation 'Shifts'");
    }

    #[test]
    fn display_type_mismatch_mentions_attribute() {
        let e = RelationalError::TypeMismatch {
            relation: "R".into(),
            attribute: "a".into(),
            expected: "Integer".into(),
            actual: "\"x\"".into(),
        };
        assert!(e.to_string().contains("R.a"));
    }

    #[test]
    fn display_unknown_attribute() {
        let e = RelationalError::UnknownAttribute {
            relation: "R".into(),
            attribute: "missing".into(),
        };
        assert!(e.to_string().contains("missing"));
    }

    #[test]
    fn display_csv_parse() {
        let e = RelationalError::CsvParse {
            line: 7,
            message: "bad integer".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            RelationalError::UnknownRelation("X".into()),
            RelationalError::UnknownRelation("X".into())
        );
        assert_ne!(
            RelationalError::UnknownRelation("X".into()),
            RelationalError::UnknownRelation("Y".into())
        );
    }
}
