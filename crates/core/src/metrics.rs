//! Quality metrics: how much an instance departs from its quality version.
//!
//! The paper frames quality as "how much `D` departs from its quality
//! version(s) `D^q`".  For each assessed relation we report the sizes of
//! `D`, `D^q`, their intersection, and derived ratios.

use ontodq_relational::Tuple;
use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// Quality comparison for a single relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationQuality {
    /// Relation name.
    pub relation: String,
    /// |D| — tuples in the original relation.
    pub original_count: usize,
    /// |D^q| — tuples in the quality version.
    pub quality_count: usize,
    /// |D ∩ D^q| — original tuples that are also quality tuples.
    pub retained: usize,
    /// |D \ D^q| — original tuples rejected by the quality conditions.
    pub rejected: usize,
    /// |D^q \ D| — quality tuples not present in the original (possible when
    /// the context *completes* data rather than only filtering it).
    pub added: usize,
    /// The rejected tuples themselves (for reporting and cleaning).
    pub rejected_tuples: Vec<Tuple>,
}

impl RelationQuality {
    /// Compare an original relation with its quality version.
    pub fn compare(relation: &str, original: &[Tuple], quality: &[Tuple]) -> Self {
        let quality_set: HashSet<&Tuple> = quality.iter().collect();
        let original_set: HashSet<&Tuple> = original.iter().collect();
        let retained = original.iter().filter(|t| quality_set.contains(t)).count();
        let rejected_tuples: Vec<Tuple> = original
            .iter()
            .filter(|t| !quality_set.contains(t))
            .cloned()
            .collect();
        let added = quality.iter().filter(|t| !original_set.contains(t)).count();
        Self {
            relation: relation.to_string(),
            original_count: original.len(),
            quality_count: quality.len(),
            retained,
            rejected: rejected_tuples.len(),
            added,
            rejected_tuples,
        }
    }

    /// The fraction of original tuples that survive quality assessment
    /// (1.0 for empty originals — nothing to reject).
    pub fn retention_ratio(&self) -> f64 {
        if self.original_count == 0 {
            1.0
        } else {
            self.retained as f64 / self.original_count as f64
        }
    }

    /// The symmetric-difference size |D △ D^q| — the paper's departure
    /// measure.
    pub fn departure(&self) -> usize {
        self.rejected + self.added
    }

    /// A normalized departure in [0, 1]: departure divided by |D ∪ D^q|
    /// (0 when both are empty).
    pub fn normalized_departure(&self) -> f64 {
        let union = self.original_count + self.added;
        if union == 0 {
            0.0
        } else {
            self.departure() as f64 / union as f64
        }
    }
}

impl fmt::Display for RelationQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: |D|={}, |Dq|={}, retained={}, rejected={}, added={}, retention={:.3}, departure={}",
            self.relation,
            self.original_count,
            self.quality_count,
            self.retained,
            self.rejected,
            self.added,
            self.retention_ratio(),
            self.departure()
        )
    }
}

/// Quality metrics for all assessed relations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QualityMetrics {
    /// Per-relation metrics, keyed by relation name.
    pub relations: BTreeMap<String, RelationQuality>,
}

impl QualityMetrics {
    /// Overall retention ratio (micro-average across relations).
    pub fn overall_retention(&self) -> f64 {
        let (retained, total): (usize, usize) = self
            .relations
            .values()
            .fold((0, 0), |(r, t), m| (r + m.retained, t + m.original_count));
        if total == 0 {
            1.0
        } else {
            retained as f64 / total as f64
        }
    }

    /// Total departure across relations.
    pub fn total_departure(&self) -> usize {
        self.relations
            .values()
            .map(RelationQuality::departure)
            .sum()
    }
}

impl fmt::Display for QualityMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in self.relations.values() {
            writeln!(f, "{m}")?;
        }
        write!(
            f,
            "overall retention: {:.3}, total departure: {}",
            self.overall_retention(),
            self.total_departure()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(values: &[&str]) -> Tuple {
        Tuple::from_iter(values.iter().copied())
    }

    #[test]
    fn compare_counts_retained_rejected_added() {
        let original = vec![t(&["a"]), t(&["b"]), t(&["c"])];
        let quality = vec![t(&["a"]), t(&["d"])];
        let m = RelationQuality::compare("R", &original, &quality);
        assert_eq!(m.original_count, 3);
        assert_eq!(m.quality_count, 2);
        assert_eq!(m.retained, 1);
        assert_eq!(m.rejected, 2);
        assert_eq!(m.added, 1);
        assert_eq!(m.departure(), 3);
        assert!((m.retention_ratio() - 1.0 / 3.0).abs() < 1e-9);
        assert!((m.normalized_departure() - 3.0 / 4.0).abs() < 1e-9);
        assert!(m.rejected_tuples.contains(&t(&["b"])));
        assert!(m.rejected_tuples.contains(&t(&["c"])));
        assert!(m.to_string().contains("retained=1"));
    }

    #[test]
    fn empty_relations_are_perfectly_clean() {
        let m = RelationQuality::compare("R", &[], &[]);
        assert_eq!(m.retention_ratio(), 1.0);
        assert_eq!(m.departure(), 0);
        assert_eq!(m.normalized_departure(), 0.0);
    }

    #[test]
    fn identical_relations_have_zero_departure() {
        let data = vec![t(&["a"]), t(&["b"])];
        let m = RelationQuality::compare("R", &data, &data);
        assert_eq!(m.retention_ratio(), 1.0);
        assert_eq!(m.departure(), 0);
        assert_eq!(m.rejected_tuples.len(), 0);
    }

    #[test]
    fn aggregate_metrics_combine_relations() {
        let mut metrics = QualityMetrics::default();
        metrics.relations.insert(
            "R".into(),
            RelationQuality::compare("R", &[t(&["a"]), t(&["b"])], &[t(&["a"])]),
        );
        metrics.relations.insert(
            "S".into(),
            RelationQuality::compare("S", &[t(&["x"])], &[t(&["x"])]),
        );
        assert!((metrics.overall_retention() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(metrics.total_departure(), 1);
        let rendered = metrics.to_string();
        assert!(rendered.contains("overall retention"));
        assert!(rendered.contains("R:"));
        assert!(rendered.contains("S:"));
    }

    #[test]
    fn empty_metrics_default_to_clean() {
        let metrics = QualityMetrics::default();
        assert_eq!(metrics.overall_retention(), 1.0);
        assert_eq!(metrics.total_departure(), 0);
    }
}
