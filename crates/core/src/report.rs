//! Human-readable quality-assessment reports.
//!
//! The assessment pipeline produces structured results
//! ([`crate::AssessmentResult`]); this module renders them as a plain-text /
//! markdown report for people: per-relation quality metrics, the rejected
//! tuples with the reason they were rejected (constraint violations vs.
//! failing quality conditions), and the dimensional data generated along the
//! way.

use crate::assessment::AssessmentResult;
use crate::context::Context;
use std::fmt::Write as _;

/// Sections of a rendered quality report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualityReport {
    /// Markdown text of the report.
    pub text: String,
    /// Number of relations covered.
    pub relations: usize,
    /// Total number of rejected tuples listed.
    pub rejected_tuples: usize,
    /// Number of constraint violations listed.
    pub violations: usize,
}

impl QualityReport {
    /// Render a report for an assessment performed with `context`.
    pub fn render(context: &Context, assessment: &AssessmentResult) -> Self {
        let mut text = String::new();
        let mut rejected_total = 0usize;

        let _ = writeln!(text, "# Quality assessment report — {}", context.name);
        let _ = writeln!(text);
        let _ = writeln!(text, "{}", context.summary());
        let _ = writeln!(text);

        // Quality requirements in force.
        let _ = writeln!(text, "## Quality requirements");
        for qp in &context.quality_predicates {
            let _ = writeln!(text, "* **{}** — {}", qp.name, qp.description);
        }
        if context.quality_predicates.is_empty() {
            let _ = writeln!(text, "* (none declared)");
        }
        let _ = writeln!(text);

        // Per-relation metrics and rejected tuples.
        let _ = writeln!(text, "## Assessed relations");
        for (relation, metrics) in &assessment.metrics.relations {
            let _ = writeln!(text, "### {relation}");
            let _ = writeln!(
                text,
                "* original tuples: {}, quality tuples: {}, retention: {:.1}%, departure |D △ D^q|: {}",
                metrics.original_count,
                metrics.quality_count,
                metrics.retention_ratio() * 100.0,
                metrics.departure()
            );
            if metrics.rejected_tuples.is_empty() {
                let _ = writeln!(text, "* no tuples rejected");
            } else {
                let _ = writeln!(text, "* rejected tuples:");
                for tuple in &metrics.rejected_tuples {
                    rejected_total += 1;
                    let _ = writeln!(text, "  * {tuple}");
                }
            }
            let _ = writeln!(text);
        }

        // Constraint violations surfaced by the contextual chase.
        let _ = writeln!(text, "## Constraint violations in the contextual instance");
        let violations =
            assessment.chase.violations.nc.len() + assessment.chase.violations.egd.len();
        if violations == 0 {
            let _ = writeln!(text, "* none");
        } else {
            for v in &assessment.chase.violations.nc {
                let _ = writeln!(text, "* {v}");
            }
            for v in &assessment.chase.violations.egd {
                let _ = writeln!(text, "* {v}");
            }
        }
        let _ = writeln!(text);

        // Chase statistics.
        let _ = writeln!(text, "## Dimensional processing");
        let _ = writeln!(text, "* {}", assessment.chase.stats);
        let _ = writeln!(
            text,
            "* overall retention: {:.1}%",
            assessment.metrics.overall_retention() * 100.0
        );

        Self {
            text,
            relations: assessment.metrics.relations.len(),
            rejected_tuples: rejected_total,
            violations,
        }
    }
}

impl std::fmt::Display for QualityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assessment::assess;
    use crate::scenarios::hospital_context;
    use ontodq_mdm::fixtures::hospital;
    use ontodq_relational::Database;

    #[test]
    fn report_covers_metrics_rejections_and_violations() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let assessment = assess(&context, &instance);
        let report = QualityReport::render(&context, &assessment);
        assert_eq!(report.relations, 1);
        assert_eq!(report.rejected_tuples, 2);
        assert_eq!(report.violations, 1);
        let text = report.to_string();
        assert!(text.contains("# Quality assessment report"));
        assert!(text.contains("### Measurements"));
        assert!(text.contains("retention: 66.7%"));
        assert!(text.contains("rejected tuples:"));
        assert!(text.contains("TakenWithTherm"));
        assert!(text.contains("Constraint violations"));
    }

    #[test]
    fn report_on_empty_instance_mentions_no_rejections() {
        let context = hospital_context();
        let assessment = assess(&context, &Database::new());
        let report = QualityReport::render(&context, &assessment);
        assert_eq!(report.rejected_tuples, 0);
        assert!(report.text.contains("no tuples rejected"));
    }

    #[test]
    fn report_handles_contexts_without_quality_predicates() {
        let context = crate::Context::builder("bare").build().unwrap();
        let assessment = assess(&context, &Database::new());
        let report = QualityReport::render(&context, &assessment);
        assert!(report.text.contains("(none declared)"));
        assert_eq!(report.relations, 0);
    }
}
