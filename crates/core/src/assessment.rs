//! The assessment pipeline: map `D` into the context, chase, and extract the
//! quality versions `S^q` (Fig. 2 of the paper, left to right).

use crate::context::Context;
use crate::metrics::{QualityMetrics, RelationQuality};
use ontodq_chase::{ChaseConfig, ChaseEngine, ChaseResult};
use ontodq_datalog::Program;
use ontodq_mdm::compile;
use ontodq_relational::{Database, RelationSchema, Tuple};

/// The result of assessing an instance against a context.
#[derive(Debug, Clone)]
pub struct AssessmentResult {
    /// The full chased contextual instance: contextual copies, ontology data,
    /// generated categorical data, quality predicates and quality versions.
    pub contextual_instance: Database,
    /// The quality versions of the original relations, under their *original*
    /// names and schemas — the instance `D^q` of the paper.
    pub quality_database: Database,
    /// Per-relation quality metrics comparing `D` with `D^q`.
    pub metrics: QualityMetrics,
    /// The chase result (statistics, violations, provenance).
    pub chase: ChaseResult,
    /// The combined Datalog± program that was chased (ontology + context).
    pub program: Program,
}

impl AssessmentResult {
    /// The quality version of `relation` (tuples of `{relation}_q`, renamed
    /// back to the original schema).  Unknown relations yield an empty list.
    pub fn quality_tuples(&self, relation: &str) -> Vec<Tuple> {
        self.quality_database
            .relation(relation)
            .map(|r| r.tuples().to_vec())
            .unwrap_or_default()
    }

    /// `true` when the context's constraints were not violated by the
    /// contextual instance.
    pub fn is_consistent(&self) -> bool {
        self.chase.violations.is_empty()
    }
}

/// Options of the assessment pipeline.
#[derive(Debug, Clone, Default)]
pub struct AssessmentOptions {
    /// Chase configuration (budget, provenance recording, …).
    pub chase: ChaseConfig,
}

/// Assess `instance` against `context` with default options.
pub fn assess(context: &Context, instance: &Database) -> AssessmentResult {
    assess_with(context, instance, &AssessmentOptions::default())
}

/// Assess with explicit options.
pub fn assess_with(
    context: &Context,
    instance: &Database,
    options: &AssessmentOptions,
) -> AssessmentResult {
    // 1. Compile the multidimensional ontology.
    let compiled = compile(&context.ontology);
    let mut database = compiled.database.clone();
    let mut program = compiled.program.clone();

    // 2. Map the instance under assessment into the context: contextual
    //    copies keep the original tuples under the contextual names.
    for mapping in &context.mappings {
        if let Ok(relation) = instance.relation(mapping.original()) {
            let contextual =
                database.relation_or_create(mapping.contextual(), relation.schema().arity());
            for tuple in relation.iter() {
                contextual.insert_unchecked(tuple.clone());
            }
        }
    }

    // 3. External sources become part of the contextual instance.
    database
        .merge(&context.external_sources)
        .expect("external sources merge into the contextual instance");

    // 4. The context's own rules (contextual predicates, quality predicates,
    //    quality versions) join the program.
    program.tgds.extend(context.context_rules());

    // 5. Chase.
    let chase = ChaseEngine::new(options.chase.clone()).run(&program, &database);

    // 6. Extract the quality versions under the original names/schemas.
    let mut quality_database = Database::new();
    for (original, spec) in &context.quality_versions {
        let schema = instance
            .relation(original)
            .map(|r| r.schema().clone())
            .unwrap_or_else(|_| RelationSchema::untyped(original, 0));
        // Create even when empty, so callers can distinguish "empty quality
        // version" from "not assessed".
        let mut target = ontodq_relational::RelationInstance::new(schema);
        if let Ok(source) = chase.database.relation(&spec.quality_name) {
            for tuple in source.iter() {
                // Quality versions are certain data: drop tuples with nulls.
                if tuple.is_ground() {
                    let _ = target.insert(tuple.clone());
                }
            }
        }
        quality_database.insert_relation(target);
    }

    // 7. Metrics: how far does D depart from D^q?
    let mut metrics = QualityMetrics::default();
    for original in context.quality_versions.keys() {
        let original_tuples: Vec<Tuple> = instance
            .relation(original)
            .map(|r| r.tuples().to_vec())
            .unwrap_or_default();
        let quality_tuples: Vec<Tuple> = quality_database
            .relation(original)
            .map(|r| r.tuples().to_vec())
            .unwrap_or_default();
        metrics.relations.insert(
            original.clone(),
            RelationQuality::compare(original, &original_tuples, &quality_tuples),
        );
    }

    AssessmentResult {
        contextual_instance: chase.database.clone(),
        quality_database,
        metrics,
        chase,
        program,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::hospital_context;
    use ontodq_mdm::fixtures::hospital;
    use ontodq_relational::Value;

    #[test]
    fn assessment_reproduces_table_ii_for_tom_waits() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let result = assess(&context, &instance);

        // The quality version exists under the original name and schema.
        let quality = result.quality_tuples("Measurements");
        // Tom Waits' quality measurements are exactly the two rows of
        // Table II.
        let toms: Vec<_> = quality
            .iter()
            .filter(|t| t.get(1) == Some(&Value::str(hospital::TOM_WAITS)))
            .cloned()
            .collect();
        let expected = hospital::expected_quality_measurements();
        assert_eq!(toms.len(), 2);
        for t in &expected {
            assert!(toms.contains(t), "missing expected quality tuple {t}");
        }
    }

    #[test]
    fn quality_version_is_a_subset_of_the_original() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let result = assess(&context, &instance);
        let original = instance.relation("Measurements").unwrap();
        for t in result.quality_tuples("Measurements") {
            assert!(
                original.contains(&t),
                "quality tuple {t} not in the original"
            );
        }
    }

    #[test]
    fn metrics_quantify_departure_from_quality_version() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let result = assess(&context, &instance);
        let m = result.metrics.relations.get("Measurements").unwrap();
        assert_eq!(m.original_count, 6);
        // Tom's two standard-unit rows plus Lou Reed's two standard-unit rows
        // satisfy the quality conditions.
        assert_eq!(m.quality_count, 4);
        assert_eq!(m.retained, 4);
        assert_eq!(m.rejected, 2);
        assert!((m.retention_ratio() - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn contextual_instance_contains_generated_dimensional_data() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let result = assess(&context, &instance);
        assert!(result.contextual_instance.has_relation("PatientUnit"));
        assert!(result.contextual_instance.has_relation("Measurements_c"));
        assert!(result.contextual_instance.has_relation("TakenWithTherm"));
        assert!(result.chase.stats.tuples_added > 0);
        // The closed-intensive-unit constraint flags the Sep/7 tuple, so the
        // contextual instance is not violation-free.
        assert!(!result.is_consistent());
        assert_eq!(result.chase.violations.nc.len(), 1);
    }

    #[test]
    fn assessing_an_empty_instance_yields_empty_quality_versions() {
        let context = hospital_context();
        let result = assess(&context, &Database::new());
        assert!(result.quality_tuples("Measurements").is_empty());
        let m = result.metrics.relations.get("Measurements").unwrap();
        assert_eq!(m.original_count, 0);
        assert_eq!(m.quality_count, 0);
        assert_eq!(m.retention_ratio(), 1.0);
    }

    #[test]
    fn unknown_relations_have_no_quality_tuples() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let result = assess(&context, &instance);
        assert!(result.quality_tuples("DoesNotExist").is_empty());
    }
}
