//! The assessment pipeline: map `D` into the context, chase, and extract the
//! quality versions `S^q` (Fig. 2 of the paper, left to right).
//!
//! Two entry points are provided: [`assess`] / [`assess_with`] run the whole
//! pipeline once (batch mode), while [`ResumableAssessment`] keeps the chase
//! state alive so update batches can be folded in with an **incremental
//! re-chase** ([`ontodq_chase::ChaseEngine::resume`]) instead of starting
//! from scratch — the write path of `ontodq-server`.

use crate::context::Context;
use crate::metrics::{QualityMetrics, RelationQuality};
use ontodq_chase::{
    egds_read_relations, ChaseConfig, ChaseEngine, ChaseResult, ChaseState, RetractResult,
    RetractStats,
};
use ontodq_datalog::{lint_with, Diagnostic, LintReport, Program};
use ontodq_mdm::compile;
use ontodq_relational::{Database, RelationSchema, Tuple};
use std::collections::BTreeSet;

/// The result of assessing an instance against a context.
#[derive(Debug, Clone)]
pub struct AssessmentResult {
    /// The full chased contextual instance: contextual copies, ontology data,
    /// generated categorical data, quality predicates and quality versions.
    pub contextual_instance: Database,
    /// The quality versions of the original relations, under their *original*
    /// names and schemas — the instance `D^q` of the paper.
    pub quality_database: Database,
    /// Per-relation quality metrics comparing `D` with `D^q`.
    pub metrics: QualityMetrics,
    /// The chase result (statistics, violations, provenance).
    pub chase: ChaseResult,
    /// The combined Datalog± program that was chased (ontology + context).
    pub program: Program,
}

impl AssessmentResult {
    /// The quality version of `relation` (tuples of `{relation}_q`, renamed
    /// back to the original schema).  Unknown relations yield an empty list.
    pub fn quality_tuples(&self, relation: &str) -> Vec<Tuple> {
        self.quality_database
            .relation(relation)
            .map(|r| r.tuples().to_vec())
            .unwrap_or_default()
    }

    /// `true` when the context's constraints were not violated by the
    /// contextual instance.
    pub fn is_consistent(&self) -> bool {
        self.chase.violations.is_empty()
    }
}

/// Options of the assessment pipeline.
#[derive(Debug, Clone, Default)]
pub struct AssessmentOptions {
    /// Chase configuration (budget, provenance recording, …).
    pub chase: ChaseConfig,
}

/// Assess `instance` against `context` with default options.
pub fn assess(context: &Context, instance: &Database) -> AssessmentResult {
    assess_with(context, instance, &AssessmentOptions::default())
}

/// Assess with explicit options.
pub fn assess_with(
    context: &Context,
    instance: &Database,
    options: &AssessmentOptions,
) -> AssessmentResult {
    let (program, database) = compile_context(context, instance);

    // Chase, under the program's termination certificate (unless the caller
    // supplied one): a certified-terminating program hitting the tuple
    // budget becomes an error diagnostic instead of silent truncation.
    let mut chase_config = options.chase.clone();
    if chase_config.certificate.is_none() {
        chase_config.certificate =
            Some(ontodq_datalog::TerminationCertificate::of_program(&program));
    }
    let chase = ChaseEngine::new(chase_config).run(&program, &database);

    // Extract quality versions and metrics.
    let (quality_database, metrics) = extract_quality(context, instance, &chase.database);

    AssessmentResult {
        contextual_instance: chase.database.clone(),
        quality_database,
        metrics,
        chase,
        program,
    }
}

/// Steps 1–4 of the pipeline: compile the ontology, map `instance` into the
/// context under the contextual names, merge external sources, and append
/// the context's own rules — yielding the Datalog± program and the
/// pre-chase contextual instance.
///
/// Exposed so demand-driven callers (and benchmarks) can obtain the
/// program/instance pair once and then answer many queries without paying
/// the full chase — see [`crate::clean_query::quality_answers_on_demand`].
pub fn compile_context(context: &Context, instance: &Database) -> (Program, Database) {
    // 1. Compile the multidimensional ontology.
    let compiled = compile(&context.ontology);
    let mut database = compiled.database.clone();
    let mut program = compiled.program.clone();

    // 2. Map the instance under assessment into the context: contextual
    //    copies keep the original tuples under the contextual names.
    for mapping in &context.mappings {
        if let Ok(relation) = instance.relation(mapping.original()) {
            let contextual =
                database.relation_or_create(mapping.contextual(), relation.schema().arity());
            for tuple in relation.iter() {
                contextual.insert_unchecked(tuple.clone());
            }
        }
    }

    // 3. External sources become part of the contextual instance.  Schema
    //    conflicts were already rejected by `ContextBuilder::build`.
    database
        .merge(&context.external_sources)
        .expect("external sources merge into the contextual instance");

    // 4. The context's own rules (contextual predicates, quality predicates,
    //    quality versions) join the program.
    program.tgds.extend(context.context_rules());

    (program, database)
}

/// Statically analyse the compiled program of `context` over `instance`:
/// run `ontodq-lint` with the deployment knowledge only the pipeline has —
/// the extensional relations the pre-chase contextual instance actually
/// provides, and the context's [`Context::goal_predicates`] as the
/// reachability goals.
///
/// The report's [`ontodq_datalog::TerminationCertificate`] is what
/// [`ResumableAssessment`] hands to the chase engine; its error-severity
/// diagnostics are what `ontodq-server` rejects registrations over
/// ([`crate::context::ContextError::Rejected`]).
pub fn lint_context(context: &Context, instance: &Database) -> LintReport {
    let (program, database) = compile_context(context, instance);
    lint_compiled(context, &program, &database)
}

/// [`lint_context`] for an already-compiled program/instance pair.
fn lint_compiled(context: &Context, program: &Program, database: &Database) -> LintReport {
    let edb: BTreeSet<String> = database
        .relation_names()
        .into_iter()
        .map(str::to_string)
        .collect();
    lint_with(program, Some(&edb), &context.goal_predicates())
}

/// Steps 6–7 of the pipeline: extract the quality versions under the
/// original names/schemas from a chased contextual instance, and compute the
/// per-relation departure metrics against `instance`.
///
/// Exposed so long-lived services (`ontodq-server`) can re-extract after an
/// incremental re-chase without re-running the whole pipeline.
pub fn extract_quality(
    context: &Context,
    instance: &Database,
    chased: &Database,
) -> (Database, QualityMetrics) {
    let mut quality_database = Database::new();
    for (original, spec) in &context.quality_versions {
        let schema = instance
            .relation(original)
            .map(|r| r.schema().clone())
            .unwrap_or_else(|_| RelationSchema::untyped(original, 0));
        // Create even when empty, so callers can distinguish "empty quality
        // version" from "not assessed".
        let mut target = ontodq_relational::RelationInstance::new(schema);
        if let Ok(source) = chased.relation(&spec.quality_name) {
            for tuple in source.iter() {
                // Quality versions are certain data: drop tuples with nulls.
                if tuple.is_ground() {
                    let _ = target.insert(tuple.clone());
                }
            }
        }
        quality_database.insert_relation(target);
    }

    let mut metrics = QualityMetrics::default();
    for original in context.quality_versions.keys() {
        let original_tuples: Vec<Tuple> = instance
            .relation(original)
            .map(|r| r.tuples().to_vec())
            .unwrap_or_default();
        let quality_tuples: Vec<Tuple> = quality_database
            .relation(original)
            .map(|r| r.tuples().to_vec())
            .unwrap_or_default();
        metrics.relations.insert(
            original.clone(),
            RelationQuality::compare(original, &original_tuples, &quality_tuples),
        );
    }

    (quality_database, metrics)
}

/// The outcome of folding one update batch into a [`ResumableAssessment`].
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Number of genuinely new extensional tuples the batch contributed.
    pub new_facts: usize,
    /// The incremental re-chase step: a snapshot of the chased contextual
    /// instance plus the statistics and violations of this step only.
    pub chase: ChaseResult,
}

/// A long-lived assessment that folds update batches in with an incremental
/// re-chase instead of re-running the pipeline from scratch.
///
/// The batch pipeline ([`assess`]) recompiles, re-maps and re-chases the
/// whole contextual instance on every call.  `ResumableAssessment` compiles
/// once, chases once, and then keeps the [`ChaseState`] (per-rule epoch
/// watermarks, null counter, working instance) alive; each
/// [`ResumableAssessment::insert_batch`] stamps the new facts into the delta
/// and resumes the chase, so the work done is proportional to the update and
/// its consequences.  This is the write path behind the snapshot-swapping
/// `QualityService` of the `ontodq-server` crate.
///
/// Facts whose predicate is a mapped original relation (e.g. `Measurements`
/// when the context maps `Measurements ↦ Measurements_c`) are inserted into
/// the instance under assessment *and* into its contextual copy; all other
/// predicates (categorical relations, parent–child predicates, external
/// data) go directly into the contextual instance.
#[derive(Debug, Clone)]
pub struct ResumableAssessment {
    context: Context,
    program: Program,
    instance: Database,
    /// The pre-chase contextual instance (compiled ontology data, contextual
    /// copies, external sources, plus every applied batch fact): the
    /// extensional base the demand-driven query path chases from.
    base: Database,
    engine: ChaseEngine,
    state: ChaseState,
    last: ChaseSummary,
    batches_applied: u64,
    /// Cumulative per-rule chase profile, merged across the initial chase
    /// and every batch folded in since (see
    /// [`ontodq_chase::ChaseProfile`]).
    profile: ontodq_chase::ChaseProfile,
    /// The static-analysis report of the compiled program (computed once at
    /// construction; the program never changes afterwards).
    lint: LintReport,
}

/// The statistics/violations of the most recent chase step, kept **without**
/// the instance snapshot a full [`ChaseResult`] carries — so a long-lived
/// assessment does not pay an extra whole-database clone per batch.
#[derive(Debug, Clone)]
struct ChaseSummary {
    stats: ontodq_chase::ChaseStats,
    violations: ontodq_chase::Violations,
    termination: ontodq_chase::TerminationReason,
    diagnostics: Vec<Diagnostic>,
}

impl ChaseSummary {
    fn of(result: &ChaseResult) -> Self {
        Self {
            stats: result.stats.clone(),
            violations: result.violations.clone(),
            termination: result.termination,
            diagnostics: result.diagnostics.clone(),
        }
    }
}

impl ResumableAssessment {
    /// Compile `context` over `instance` and run the initial full chase.
    pub fn new(context: Context, instance: Database) -> Self {
        Self::with_options(context, instance, &AssessmentOptions::default())
    }

    /// Like [`ResumableAssessment::new`] with explicit chase options.
    pub fn with_options(context: Context, instance: Database, options: &AssessmentOptions) -> Self {
        Self::with_options_and_clock(context, instance, options, ontodq_obs::monotonic())
    }

    /// Like [`ResumableAssessment::with_options`] with an injected clock
    /// for the chase profiler (see [`ontodq_obs::Clock`]) — the server
    /// passes its own clock down so deterministic-replay tests freeze every
    /// timing at once.
    pub fn with_options_and_clock(
        context: Context,
        instance: Database,
        options: &AssessmentOptions,
        clock: ontodq_obs::SharedClock,
    ) -> Self {
        let (program, database) = compile_context(&context, &instance);
        let lint = lint_compiled(&context, &program, &database);
        let mut chase_config = options.chase.clone();
        if chase_config.certificate.is_none() {
            chase_config.certificate = Some(lint.certificate.clone());
        }
        let engine = ChaseEngine::new(chase_config).with_clock(clock);
        let mut state = ChaseState::new(&program, &database);
        let initial = engine.resume(&program, &mut state);
        let last = ChaseSummary::of(&initial);
        Self {
            context,
            program,
            instance,
            base: database,
            engine,
            state,
            last,
            batches_applied: 0,
            profile: initial.profile,
            lint,
        }
    }

    /// Rebuild an assessment from persisted state **without re-chasing**:
    /// the recovery path of `ontodq-store`.
    ///
    /// `instance` is the persisted instance under assessment `D` and `state`
    /// the persisted [`ChaseState`] (chased contextual instance, per-rule
    /// epoch watermarks, null counter).  The Datalog± program is recompiled
    /// from `context` — compilation is deterministic, so the persisted
    /// watermark vectors line up with the recompiled rule positions.  The
    /// caller then folds any write-ahead-log tail in through the regular
    /// [`ResumableAssessment::insert_batch`] path, each batch paying only an
    /// incremental re-chase.
    ///
    /// The last-step statistics start out empty (the step that produced the
    /// persisted state ran in another process).
    pub fn restore(
        context: Context,
        instance: Database,
        state: ChaseState,
        batches_applied: u64,
    ) -> Self {
        Self::restore_with_clock(
            context,
            instance,
            state,
            batches_applied,
            ontodq_obs::monotonic(),
        )
    }

    /// Like [`ResumableAssessment::restore`] with an injected profiler
    /// clock.
    pub fn restore_with_clock(
        context: Context,
        instance: Database,
        state: ChaseState,
        batches_applied: u64,
        clock: ontodq_obs::SharedClock,
    ) -> Self {
        let (program, mut base) = compile_context(&context, &instance);
        // Recover the extensional base for the demand-driven path: the
        // persisted instance carries the mapped relations, and the chased
        // state's *extensional* relations (never rule heads, so the chase
        // added nothing to them) carry any categorical/external facts that
        // were streamed in before the snapshot.
        for predicate in program.edb_predicates() {
            if let Ok(relation) = state.database().relation(&predicate) {
                for tuple in relation.iter() {
                    let _ = base.insert(&predicate, tuple.clone());
                }
            }
        }
        let lint = lint_compiled(&context, &program, &base);
        let mut chase_config = AssessmentOptions::default().chase;
        chase_config.certificate = Some(lint.certificate.clone());
        Self {
            context,
            program,
            instance,
            base,
            engine: ChaseEngine::new(chase_config).with_clock(clock),
            state,
            last: ChaseSummary {
                stats: ontodq_chase::ChaseStats::default(),
                violations: ontodq_chase::Violations::default(),
                termination: ontodq_chase::TerminationReason::Fixpoint,
                diagnostics: Vec::new(),
            },
            batches_applied,
            profile: ontodq_chase::ChaseProfile::disabled(),
            lint,
        }
    }

    /// The context being assessed against.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// The resumable chase state (chased contextual instance, per-rule epoch
    /// watermarks, null counter) — what persistence layers serialize, and
    /// what [`ResumableAssessment::restore`] takes back.
    pub fn state(&self) -> &ChaseState {
        &self.state
    }

    /// The combined Datalog± program (ontology + context rules).
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// A stable fingerprint of the compiled rule set — TGDs, EGDs and
    /// negative constraints, hashed **in positional order** through the
    /// process-independent [`ontodq_relational::FxHasher`] over their
    /// rendered text.  Persistence layers store it next to a serialized
    /// [`ChaseState`]: the state's watermark vectors are positional, so
    /// they are only meaningful for a program whose rules render
    /// identically at the same positions.  A mismatch at restore time means
    /// the context definition changed since the snapshot and the state
    /// must not be trusted.
    pub fn program_fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut hasher = ontodq_relational::FxHasher::default();
        self.program.tgds.len().hash(&mut hasher);
        for tgd in &self.program.tgds {
            tgd.to_string().hash(&mut hasher);
        }
        self.program.egds.len().hash(&mut hasher);
        for egd in &self.program.egds {
            egd.to_string().hash(&mut hasher);
        }
        self.program.constraints.len().hash(&mut hasher);
        for nc in &self.program.constraints {
            nc.to_string().hash(&mut hasher);
        }
        hasher.finish()
    }

    /// The instance under assessment `D`, including every batch applied so
    /// far.
    pub fn instance(&self) -> &Database {
        &self.instance
    }

    /// The chased contextual instance (live working copy).
    pub fn contextual(&self) -> &Database {
        self.state.database()
    }

    /// The pre-chase extensional base (compiled ontology data, contextual
    /// copies, external sources, applied batches) — what the demand-driven
    /// query path chases from.
    pub fn base_database(&self) -> &Database {
        &self.base
    }

    /// **Demand-driven quality answers** to `query`: the query is rewritten
    /// so assessed relations read their quality versions, the combined
    /// program is specialized to the query's bound constants (magic-set
    /// transformation), and only the relevant fragment of the extensional
    /// base is chased — routing entirely around the materialized instance.
    ///
    /// The answers equal [`crate::clean_query::quality_answers`] over the
    /// full assessment (certain answers, modulo nothing: both are ground).
    pub fn answer_on_demand(&self, query: &ontodq_qa::ConjunctiveQuery) -> ontodq_qa::AnswerSet {
        let rewritten = crate::clean_query::rewrite_to_quality(&self.context, query);
        ontodq_qa::certain_answers_on_demand(&self.program, &self.base, &rewritten)
    }

    /// Chase statistics of the most recent step (initial chase or last
    /// incremental re-chase).
    pub fn last_stats(&self) -> &ontodq_chase::ChaseStats {
        &self.last.stats
    }

    /// Violations observed by the most recent chase step.
    pub fn last_violations(&self) -> &ontodq_chase::Violations {
        &self.last.violations
    }

    /// Why the most recent chase step stopped.
    pub fn last_termination(&self) -> ontodq_chase::TerminationReason {
        self.last.termination
    }

    /// Number of update batches folded in since construction.
    pub fn batches_applied(&self) -> u64 {
        self.batches_applied
    }

    /// The cumulative per-rule chase profile across the initial chase and
    /// every batch since — what the server's `!profile` command reports.
    pub fn profile(&self) -> &ontodq_chase::ChaseProfile {
        &self.profile
    }

    /// The static-analysis report of the compiled program (see
    /// [`lint_context`]): every diagnostic, the termination certificate the
    /// chase engine runs under, and the stratification outcome.
    pub fn lint_report(&self) -> &LintReport {
        &self.lint
    }

    /// Fold a batch of new facts in and incrementally re-chase.
    ///
    /// # Errors
    /// Fails when a fact conflicts with its relation's schema.  Both the
    /// instance-under-assessment side and the contextual side of the batch
    /// are validated before anything is applied, so on error the assessment
    /// is unchanged and no re-chase runs (the batch is atomic).
    pub fn insert_batch<I>(&mut self, facts: I) -> ontodq_relational::Result<BatchOutcome>
    where
        I: IntoIterator<Item = (String, Tuple)>,
    {
        let mut staged = Vec::new();
        let mut originals = Vec::new();
        let mut fresh_arities: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        for (predicate, tuple) in facts {
            if let Some(contextual) = self.context.contextual_name_of(&predicate) {
                // A mapped original relation: lands in D and in its
                // contextual copy.  Validate the D side now (the contextual
                // side is validated by `ChaseState::insert_batch`); apply
                // only after the whole batch has been validated.
                match self.instance.relation(&predicate) {
                    Ok(relation) => relation.schema().validate(&tuple)?,
                    Err(_) => {
                        let arity = *fresh_arities
                            .entry(predicate.clone())
                            .or_insert(tuple.arity());
                        if arity != tuple.arity() {
                            return Err(ontodq_relational::RelationalError::ArityMismatch {
                                relation: predicate.clone(),
                                expected: arity,
                                actual: tuple.arity(),
                            });
                        }
                    }
                }
                originals.push((predicate, tuple.clone()));
                staged.push((contextual.to_string(), tuple));
            } else {
                staged.push((predicate, tuple));
            }
        }
        // Contextual side first: it validates the full staged batch and
        // applies atomically; only then is the D side (already validated
        // above) applied.
        let new_facts = self.state.insert_batch(staged.iter().cloned())?;
        // The batch also joins the extensional base of the demand-driven
        // query path (the staged side already carries contextual names).
        for (predicate, tuple) in &staged {
            let _ = self.base.insert(predicate, tuple.clone());
        }
        for (predicate, tuple) in originals {
            self.instance
                .insert(&predicate, tuple)
                .expect("the instance side of the batch was validated before application");
        }
        let chase = self.engine.resume(&self.program, &mut self.state);
        self.last = ChaseSummary::of(&chase);
        self.profile.merge(&chase.profile);
        self.batches_applied += 1;
        Ok(BatchOutcome { new_facts, chase })
    }

    /// Retract a batch of extensional facts and incrementally withdraw their
    /// consequences (delete-and-rederive).
    ///
    /// Facts are named as update batches are: a mapped original relation is
    /// deleted from the instance under assessment *and* from its contextual
    /// copy; other predicates are deleted from the contextual instance
    /// directly.  Facts that are not present are counted in
    /// [`RetractStats::requested`] but otherwise ignored.
    ///
    /// When some EGD reads a touched relation the incremental path is
    /// unsound (null unifications cannot be unwound), so the chase state is
    /// rebuilt from the surviving extensional base instead; the result's
    /// `cascaded` count is 0 in that case because nothing was individually
    /// condemned.
    pub fn retract_batch<I>(&mut self, facts: I) -> RetractResult
    where
        I: IntoIterator<Item = (String, Tuple)>,
    {
        let mut seeds = Vec::new();
        let mut removed = 0usize;
        let mut touched: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for (predicate, tuple) in facts {
            if let Some(contextual) = self.context.contextual_name_of(&predicate) {
                let contextual = contextual.to_string();
                if let Ok(relation) = self.instance.relation_mut(&predicate) {
                    relation.delete(&tuple);
                }
                if self.base.delete(&contextual, &tuple) {
                    removed += 1;
                }
                touched.insert(contextual.clone());
                seeds.push((contextual, tuple));
            } else {
                if self.base.delete(&predicate, &tuple) {
                    removed += 1;
                }
                touched.insert(predicate.clone());
                seeds.push((predicate, tuple));
            }
        }
        let result = if egds_read_relations(&self.program, touched.iter().map(|s| s.as_str())) {
            // EGD fallback: rebuild from the surviving extensional base.
            let requested = seeds.len();
            let mut state = ChaseState::new(&self.program, &self.base);
            let chase = self.engine.resume(&self.program, &mut state);
            self.state = state;
            RetractResult {
                stats: RetractStats {
                    requested,
                    retracted: removed,
                    cascaded: 0,
                    rederived: chase.stats.tuples_added,
                },
                chase,
            }
        } else {
            self.engine
                .retract(&self.program, &mut self.state, &self.base, &seeds, None)
        };
        self.last = ChaseSummary::of(&result.chase);
        self.profile.merge(&result.chase.profile);
        self.batches_applied += 1;
        result
    }

    /// Expand the retraction rules of a parsed `program` — ground `-P(ā).`
    /// retractions and conditional `-P(x̄) :- body.` deletes — into the
    /// concrete facts they condemn **right now**, named under the original
    /// (user-facing) predicates so the list can be fed to
    /// [`ResumableAssessment::retract_batch`].
    ///
    /// Conditional-delete bodies are evaluated against the chased contextual
    /// instance (mapped predicates are rewritten to their contextual names);
    /// head variables not bound by the body act as wildcards over the
    /// extensional rows of the head relation.
    pub fn expand_retractions(&self, program: &Program) -> Vec<(String, Tuple)> {
        use ontodq_chase::eval::{extend_over_atoms, has_extension};
        use ontodq_datalog::{Assignment, Atom, Term};
        let mut out = Vec::new();
        let mut seen: std::collections::HashSet<(String, Tuple)> = std::collections::HashSet::new();
        for retraction in &program.retractions {
            let atom = retraction.atom();
            let values: Vec<_> = atom
                .terms
                .iter()
                .map(|t| match t {
                    Term::Const(v) => *v,
                    Term::Var(_) => unreachable!("retractions are ground"),
                })
                .collect();
            let fact = (atom.predicate.clone(), Tuple::new(values));
            if seen.insert(fact.clone()) {
                out.push(fact);
            }
        }
        for delete in &program.deletions {
            let rewrite = |atom: &Atom| -> Atom {
                match self.context.contextual_name_of(&atom.predicate) {
                    Some(contextual) => Atom::new(contextual, atom.terms.clone()),
                    None => atom.clone(),
                }
            };
            let body_atoms: Vec<Atom> = delete.body.atoms.iter().map(rewrite).collect();
            let negated: Vec<Atom> = delete.body.negated.iter().map(rewrite).collect();
            let refs: Vec<&Atom> = body_atoms.iter().collect();
            let db = self.state.database();
            // Wildcard candidates come from the user-visible extensional
            // rows of the head relation.
            let head = &delete.head;
            let candidates: Vec<Tuple> =
                if self.context.contextual_name_of(&head.predicate).is_some() {
                    self.instance
                        .relation(&head.predicate)
                        .map(|r| r.iter().collect())
                        .unwrap_or_default()
                } else {
                    self.base
                        .relation(&head.predicate)
                        .map(|r| r.iter().collect())
                        .unwrap_or_default()
                };
            extend_over_atoms(db, &refs, Assignment::new(), &mut |assignment| {
                if !delete
                    .body
                    .comparisons
                    .iter()
                    .all(|c| assignment.satisfies_comparison(c))
                {
                    return;
                }
                if negated
                    .iter()
                    .any(|atom| has_extension(db, &[atom], assignment))
                {
                    return;
                }
                for tuple in &candidates {
                    let matches = head.terms.len() == tuple.arity()
                        && head.terms.iter().zip(tuple.values()).all(|(term, value)| {
                            match assignment.apply_term(term) {
                                Term::Const(v) => v == *value,
                                Term::Var(_) => true,
                            }
                        });
                    if matches {
                        let fact = (head.predicate.clone(), tuple.clone());
                        if seen.insert(fact.clone()) {
                            out.push(fact);
                        }
                    }
                }
            });
        }
        out
    }

    /// Extract the current quality versions and metrics (steps 6–7 of the
    /// pipeline) from the live chased instance.
    pub fn extract(&self) -> (Database, QualityMetrics) {
        extract_quality(&self.context, &self.instance, self.state.database())
    }

    /// Package the current state as a full [`AssessmentResult`], equivalent
    /// (up to labeled-null renaming and chase statistics) to re-running
    /// [`assess`] over the accumulated instance.
    pub fn assessment(&self) -> AssessmentResult {
        let (quality_database, metrics) = self.extract();
        AssessmentResult {
            contextual_instance: self.state.database().clone(),
            quality_database,
            metrics,
            chase: ChaseResult {
                database: self.state.database().clone(),
                stats: self.last.stats.clone(),
                violations: self.last.violations.clone(),
                provenance: ontodq_chase::Provenance::disabled(),
                termination: self.last.termination,
                profile: self.profile.clone(),
                diagnostics: self.last.diagnostics.clone(),
            },
            program: self.program.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::hospital_context;
    use ontodq_mdm::fixtures::hospital;
    use ontodq_relational::Value;

    #[test]
    fn assessment_reproduces_table_ii_for_tom_waits() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let result = assess(&context, &instance);

        // The quality version exists under the original name and schema.
        let quality = result.quality_tuples("Measurements");
        // Tom Waits' quality measurements are exactly the two rows of
        // Table II.
        let toms: Vec<_> = quality
            .iter()
            .filter(|t| t.get(1) == Some(&Value::str(hospital::TOM_WAITS)))
            .cloned()
            .collect();
        let expected = hospital::expected_quality_measurements();
        assert_eq!(toms.len(), 2);
        for t in &expected {
            assert!(toms.contains(t), "missing expected quality tuple {t}");
        }
    }

    #[test]
    fn quality_version_is_a_subset_of_the_original() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let result = assess(&context, &instance);
        let original = instance.relation("Measurements").unwrap();
        for t in result.quality_tuples("Measurements") {
            assert!(
                original.contains(&t),
                "quality tuple {t} not in the original"
            );
        }
    }

    #[test]
    fn metrics_quantify_departure_from_quality_version() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let result = assess(&context, &instance);
        let m = result.metrics.relations.get("Measurements").unwrap();
        assert_eq!(m.original_count, 6);
        // Tom's two standard-unit rows plus Lou Reed's two standard-unit rows
        // satisfy the quality conditions.
        assert_eq!(m.quality_count, 4);
        assert_eq!(m.retained, 4);
        assert_eq!(m.rejected, 2);
        assert!((m.retention_ratio() - 4.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn contextual_instance_contains_generated_dimensional_data() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let result = assess(&context, &instance);
        assert!(result.contextual_instance.has_relation("PatientUnit"));
        assert!(result.contextual_instance.has_relation("Measurements_c"));
        assert!(result.contextual_instance.has_relation("TakenWithTherm"));
        assert!(result.chase.stats.tuples_added > 0);
        // The closed-intensive-unit constraint flags the Sep/7 tuple, so the
        // contextual instance is not violation-free.
        assert!(!result.is_consistent());
        assert_eq!(result.chase.violations.nc.len(), 1);
    }

    #[test]
    fn assessing_an_empty_instance_yields_empty_quality_versions() {
        let context = hospital_context();
        let result = assess(&context, &Database::new());
        assert!(result.quality_tuples("Measurements").is_empty());
        let m = result.metrics.relations.get("Measurements").unwrap();
        assert_eq!(m.original_count, 0);
        assert_eq!(m.quality_count, 0);
        assert_eq!(m.retention_ratio(), 1.0);
    }

    #[test]
    fn unknown_relations_have_no_quality_tuples() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let result = assess(&context, &instance);
        assert!(result.quality_tuples("DoesNotExist").is_empty());
    }

    #[test]
    fn resumable_assessment_matches_batch_assessment_initially() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let batch = assess(&context, &instance);
        let resumable = ResumableAssessment::new(context, instance);
        let snap = resumable.assessment();
        assert_eq!(
            snap.quality_tuples("Measurements"),
            batch.quality_tuples("Measurements")
        );
        assert_eq!(snap.metrics.relations, batch.metrics.relations);
    }

    #[test]
    fn incremental_batches_match_from_scratch_assessment() {
        // Start from an EMPTY instance, stream the measurements in across
        // two batches, and require the final quality version to equal the
        // one-shot assessment of the full instance.
        let context = hospital_context();
        let full = hospital::measurements_database();
        let all: Vec<Tuple> = full.relation("Measurements").unwrap().tuples().to_vec();

        let mut resumable = ResumableAssessment::new(context.clone(), Database::new());
        assert!(resumable
            .assessment()
            .quality_tuples("Measurements")
            .is_empty());

        let (first, second) = all.split_at(all.len() / 2);
        for batch in [first, second] {
            let outcome = resumable
                .insert_batch(
                    batch
                        .iter()
                        .map(|t| ("Measurements".to_string(), t.clone())),
                )
                .unwrap();
            assert_eq!(outcome.new_facts, batch.len());
        }
        assert_eq!(resumable.batches_applied(), 2);

        let scratch = assess(&context, &full);
        let snap = resumable.assessment();
        let mut incremental = snap.quality_tuples("Measurements");
        let mut from_scratch = scratch.quality_tuples("Measurements");
        incremental.sort();
        from_scratch.sort();
        assert_eq!(incremental, from_scratch);
        assert_eq!(
            snap.metrics.relations.get("Measurements"),
            scratch.metrics.relations.get("Measurements")
        );
    }

    #[test]
    fn retract_batch_matches_from_scratch_assessment() {
        let context = hospital_context();
        let full = hospital::measurements_database();
        let all: Vec<Tuple> = full.relation("Measurements").unwrap().tuples().to_vec();
        let victim = all[0].clone();

        let mut resumable = ResumableAssessment::new(context.clone(), full.clone());
        let result = resumable.retract_batch([("Measurements".to_string(), victim.clone())]);
        assert_eq!(result.stats.requested, 1);
        assert_eq!(result.stats.retracted, 1);
        assert!(!resumable.instance().contains("Measurements", &victim));

        let mut survivors = full.clone();
        survivors.delete("Measurements", &victim);
        let scratch = assess(&context, &survivors);
        let mut incremental = resumable.assessment().quality_tuples("Measurements");
        let mut from_scratch = scratch.quality_tuples("Measurements");
        incremental.sort();
        from_scratch.sort();
        assert_eq!(incremental, from_scratch);
    }

    #[test]
    fn retract_batch_of_missing_fact_changes_nothing() {
        let context = hospital_context();
        let mut resumable = ResumableAssessment::new(context, hospital::measurements_database());
        let before = resumable.contextual().total_tuples();
        let result = resumable.retract_batch([(
            "Measurements".to_string(),
            Tuple::new(vec![
                Value::parse_time("Sep/9-09:00").unwrap(),
                Value::str("Nobody"),
                Value::double(36.6),
            ]),
        )]);
        assert_eq!(result.stats.requested, 1);
        assert_eq!(result.stats.retracted, 0);
        assert_eq!(result.stats.cascaded, 0);
        assert_eq!(resumable.contextual().total_tuples(), before);
    }

    #[test]
    fn expand_retractions_grounds_conditional_deletes() {
        let context = hospital_context();
        let full = hospital::measurements_database();
        let tom_waits: Vec<Tuple> = full
            .relation("Measurements")
            .unwrap()
            .iter()
            .filter(|t| t.get(1) == Some(&Value::str("Tom Waits")))
            .collect();
        assert!(!tom_waits.is_empty());

        let mut resumable = ResumableAssessment::new(context.clone(), full.clone());
        let deletion = ontodq_datalog::parse_program(
            "-Measurements(t, p, v) :- Measurements(t, p, v), p = \"Tom Waits\".\n",
        )
        .unwrap();
        let expanded = resumable.expand_retractions(&deletion);
        assert_eq!(expanded.len(), tom_waits.len());
        assert!(expanded.iter().all(|(name, t)| {
            name == "Measurements" && t.get(1) == Some(&Value::str("Tom Waits"))
        }));

        let result = resumable.retract_batch(expanded);
        assert_eq!(result.stats.retracted, tom_waits.len());
        let mut survivors = full.clone();
        for t in &tom_waits {
            survivors.delete("Measurements", t);
        }
        let scratch = assess(&context, &survivors);
        let mut incremental = resumable.assessment().quality_tuples("Measurements");
        let mut from_scratch = scratch.quality_tuples("Measurements");
        incremental.sort();
        from_scratch.sort();
        assert_eq!(incremental, from_scratch);
    }

    #[test]
    fn rejected_batches_leave_the_assessment_unchanged() {
        let context = hospital_context();
        let mut resumable = ResumableAssessment::new(context, hospital::measurements_database());
        let instance_before = resumable.instance().total_tuples();
        let contextual_before = resumable.contextual().total_tuples();
        let batches_before = resumable.batches_applied();
        // A batch with a valid fact followed by a wrong-arity fact must be
        // rejected wholesale: neither side applied, no re-chase run.
        let good = hospital::expected_quality_measurements()[0].clone();
        let err = resumable.insert_batch([
            ("Measurements".to_string(), good),
            ("Measurements".to_string(), Tuple::from_iter(["only-one"])),
        ]);
        assert!(err.is_err());
        assert_eq!(resumable.instance().total_tuples(), instance_before);
        assert_eq!(resumable.contextual().total_tuples(), contextual_before);
        assert_eq!(resumable.batches_applied(), batches_before);
    }

    /// `restore` must be invisible to the incremental pipeline: an
    /// assessment rebuilt from another assessment's persisted parts folds
    /// the next batch in exactly like the original would have.
    #[test]
    fn restored_assessment_continues_like_the_original() {
        let context = hospital_context();
        let mut live = ResumableAssessment::new(context.clone(), hospital::measurements_database());
        live.insert_batch([(
            "Measurements".to_string(),
            Tuple::new(vec![
                Value::parse_time("Sep/6-11:05").unwrap(),
                Value::str("Lou Reed"),
                Value::double(39.9),
            ]),
        )])
        .unwrap();

        let mut restored = ResumableAssessment::restore(
            context,
            live.instance().clone(),
            live.state().clone(),
            live.batches_applied(),
        );
        assert_eq!(restored.batches_applied(), 1);
        assert_eq!(
            restored.contextual().total_tuples(),
            live.contextual().total_tuples()
        );

        let next = [(
            "Measurements".to_string(),
            Tuple::new(vec![
                Value::parse_time("Sep/6-12:00").unwrap(),
                Value::str("Lou Reed"),
                Value::double(37.2),
            ]),
        )];
        let live_outcome = live.insert_batch(next.clone()).unwrap();
        let restored_outcome = restored.insert_batch(next).unwrap();
        assert_eq!(restored_outcome.new_facts, live_outcome.new_facts);
        assert_eq!(
            restored_outcome.chase.stats.tuples_added,
            live_outcome.chase.stats.tuples_added
        );
        let (live_quality, live_metrics) = live.extract();
        let (restored_quality, restored_metrics) = restored.extract();
        assert_eq!(
            restored_quality.relation("Measurements").unwrap().tuples(),
            live_quality.relation("Measurements").unwrap().tuples()
        );
        assert_eq!(restored_metrics.relations, live_metrics.relations);
    }

    #[test]
    fn answer_on_demand_tracks_applied_batches() {
        use ontodq_qa::ConjunctiveQuery;
        let context = hospital_context();
        let mut resumable =
            ResumableAssessment::new(context.clone(), hospital::measurements_database());
        let q = ConjunctiveQuery::parse("Q(t, p, v) :- Measurements(t, p, v), p = \"Lou Reed\".")
            .unwrap();
        let before = resumable.answer_on_demand(&q);
        assert_eq!(
            before,
            crate::clean_query::quality_answers(
                &context,
                &assess(&context, resumable.instance()),
                &q
            )
        );

        // A new quality reading for Lou Reed joins the demand-driven answers
        // without any full re-materialization.
        resumable
            .insert_batch([(
                "Measurements".to_string(),
                Tuple::new(vec![
                    Value::parse_time("Sep/6-11:05").unwrap(),
                    Value::str("Lou Reed"),
                    Value::double(39.9),
                ]),
            )])
            .unwrap();
        let after = resumable.answer_on_demand(&q);
        assert_eq!(after.len(), before.len() + 1);
        assert_eq!(
            after,
            crate::clean_query::quality_answers(
                &context,
                &assess(&context, resumable.instance()),
                &q
            )
        );
        // The extensional base carries the batch under the contextual name.
        assert!(resumable.base_database().has_relation("Measurements_c"));
    }

    #[test]
    fn restored_assessment_answers_on_demand_identically() {
        use ontodq_qa::ConjunctiveQuery;
        let context = hospital_context();
        let mut live = ResumableAssessment::new(context.clone(), hospital::measurements_database());
        live.insert_batch([(
            "Measurements".to_string(),
            Tuple::new(vec![
                Value::parse_time("Sep/6-11:05").unwrap(),
                Value::str("Lou Reed"),
                Value::double(39.9),
            ]),
        )])
        .unwrap();
        let restored = ResumableAssessment::restore(
            context,
            live.instance().clone(),
            live.state().clone(),
            live.batches_applied(),
        );
        let q = ConjunctiveQuery::parse("Q(t, p, v) :- Measurements(t, p, v).").unwrap();
        assert_eq!(restored.answer_on_demand(&q), live.answer_on_demand(&q));
    }

    #[test]
    fn mapped_facts_land_in_instance_and_contextual_copy() {
        let context = hospital_context();
        let mut resumable = ResumableAssessment::new(context, Database::new());
        let tuple = hospital::expected_quality_measurements()[0].clone();
        resumable
            .insert_batch([("Measurements".to_string(), tuple.clone())])
            .unwrap();
        assert!(resumable.instance().contains("Measurements", &tuple));
        assert!(resumable.contextual().contains("Measurements_c", &tuple));
        // The re-chase re-derived the quality version for the new tuple.
        let (quality, _) = resumable.extract();
        assert!(quality.contains("Measurements", &tuple));
    }
}
