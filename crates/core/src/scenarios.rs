//! Ready-made contexts for the paper's running example.
//!
//! [`hospital_context`] wires the hospital ontology
//! (`ontodq_mdm::fixtures::hospital`) into a full quality-assessment context,
//! exactly as Example 7 describes:
//!
//! * `Measurements` is mapped into the context as the copy `Measurements_c`;
//! * the quality predicates `TakenByNurse` and `TakenWithTherm` are defined
//!   over the contextual copy, the categorical relations and the `DayTime`
//!   parent–child predicate, encoding the doctor's expectations (certified
//!   nurse, brand-B1 thermometer — the institutional guideline ties B1 to
//!   the standard care unit);
//! * the expanded contextual relation `MeasurementsExt` (the paper's
//!   `Measurements'`) joins the copy with the quality predicates;
//! * the quality version `Measurements_q` selects the tuples that satisfy
//!   the quality conditions.

use crate::context::Context;
use ontodq_mdm::fixtures::hospital;
use ontodq_qa::ConjunctiveQuery;

/// The context of Example 7, built over the hospital ontology.
pub fn hospital_context() -> Context {
    Context::builder("hospital-quality-context")
        .ontology(hospital::ontology())
        .copy_relation("Measurements")
        .quality_predicate(
            "TakenByNurse",
            "each measurement is associated with the nurse on duty in the patient's unit and her certification status",
            &[
                "TakenByNurse(t, p, n, y) :- WorkingSchedules(u, d, n, y), DayTime(d, t), PatientUnit(u, d, p).",
            ],
        )
        .quality_predicate(
            "TakenWithTherm",
            "temperature measurements of patients in the standard care unit are taken with thermometers of brand B1 (institutional guideline)",
            &[
                "TakenWithTherm(t, p, B1) :- PatientUnit(Standard, d, p), DayTime(d, t).",
            ],
        )
        .contextual_rule(
            "MeasurementsExt(t, p, v, y, b) :- Measurements_c(t, p, v), TakenByNurse(t, p, n, y), TakenWithTherm(t, p, b).",
        )
        .quality_version(
            "Measurements",
            &[
                "Measurements_q(t, p, v) :- MeasurementsExt(t, p, v, y, b), y = \"cert.\", b = B1.",
            ],
        )
        .build()
        .expect("the Example 7 context is well-formed")
}

/// The doctor's query of Examples 1 and 7: "the body temperatures of Tom
/// Waits on September 5 taken around noon" (the quality conditions —
/// certified nurse, brand-B1 thermometer — live in the context, not in the
/// query).
pub fn doctors_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse(
        "Q(t, p, v) :- Measurements(t, p, v), p = \"Tom Waits\", t >= @Sep/5-11:45, t <= @Sep/5-12:15.",
    )
    .expect("the doctor's query parses")
}

/// The downward-navigation query of Examples 2 and 5: "on which dates does
/// Mark have a shift in ward W2?".
pub fn marks_shift_query() -> ConjunctiveQuery {
    ConjunctiveQuery::parse("Q(d) :- Shifts(W2, d, \"Mark\", s).").expect("the shift query parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hospital_context_is_well_formed() {
        let ctx = hospital_context();
        assert_eq!(ctx.mappings.len(), 1);
        assert_eq!(ctx.quality_predicates.len(), 2);
        assert_eq!(ctx.quality_versions.len(), 1);
        assert!(ctx.ontology.validate().is_ok());
        // The quality predicates carry their documentation.
        assert!(ctx.quality_predicates[0].description.contains("nurse"));
        assert!(ctx.quality_predicates[1].description.contains("B1"));
    }

    #[test]
    fn canned_queries_parse_with_expected_shapes() {
        let dq = doctors_query();
        assert_eq!(dq.arity(), 3);
        assert_eq!(dq.body.comparisons.len(), 3);
        let mq = marks_shift_query();
        assert_eq!(mq.arity(), 1);
        assert_eq!(mq.predicates(), ["Shifts".to_string()].into());
    }
}
