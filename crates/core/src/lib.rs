//! # ontodq-core
//!
//! Ontological multidimensional contexts for data quality assessment — the
//! primary contribution of *"Extending Contexts with Ontologies for
//! Multidimensional Data Quality Assessment"* (Milani, Bertossi, Ariyan;
//! ICDE 2014), Section V and Fig. 2.
//!
//! An instance `D` under quality assessment is mapped into a [`Context`]
//! that bundles contextual copies of `D`'s relations, a multidimensional
//! ontology (`ontodq-mdm`), quality predicates, quality-version definitions
//! and external sources.  [`assess`] compiles everything into a single
//! Datalog± program, chases it (`ontodq-chase`), and extracts the quality
//! versions `D^q`; [`clean_query::quality_answers`] rewrites queries over the
//! original relations into queries over the quality versions — the paper's
//! *quality query answering*.
//!
//! ```
//! use ontodq_core::{assess, scenarios};
//! use ontodq_core::clean_query::{plain_answers, quality_answers};
//! use ontodq_mdm::fixtures::hospital;
//!
//! // The paper's running example end to end: Table I in, Table II out.
//! let context = scenarios::hospital_context();
//! let instance = hospital::measurements_database();
//! let assessment = assess(&context, &instance);
//!
//! let query = scenarios::doctors_query();
//! let quality = quality_answers(&context, &assessment, &query);
//! assert_eq!(quality.len(), 1); // the Sep/5-12:10 measurement is of quality
//! assert!(plain_answers(&instance, &query).len() >= quality.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assessment;
pub mod clean_query;
pub mod context;
pub mod metrics;
pub mod report;
pub mod scenarios;

pub use assessment::{
    assess, assess_with, compile_context, lint_context, AssessmentOptions, AssessmentResult,
    BatchOutcome, ResumableAssessment,
};
pub use clean_query::{
    assess_and_answer, plain_answers, quality_answers, quality_answers_on_demand,
    rewrite_to_quality,
};
pub use context::{
    Context, ContextBuilder, ContextError, QualityPredicate, QualityVersionSpec, SchemaMapping,
};
pub use metrics::{QualityMetrics, RelationQuality};
pub use report::QualityReport;
