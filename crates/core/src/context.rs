//! Contexts for data quality assessment — the paper's Section V (and Fig. 2).
//!
//! A [`Context`] packages everything needed to assess an instance `D`:
//!
//! * **schema mappings** that send each relation of `D` to a *contextual
//!   copy* (the paper's `Measurements^c`) or footprint inside the context,
//! * the **multidimensional ontology** `M` (dimensions, categorical
//!   relations, dimensional rules and constraints),
//! * **contextual rules** defining additional contextual predicates (the
//!   paper's `Measurements'`) and **quality predicates** `P_i` (the paper's
//!   `TakenByNurse`, `TakenWithTherm`),
//! * **quality-version definitions**: rules whose heads are the quality
//!   versions `S_i^q` of the original relations,
//! * optional **external sources** `E_i` (extra extensional data).
//!
//! A context is *assessed* against an instance by
//! [`crate::assessment::assess`], which compiles everything into one Datalog±
//! program, chases it, and extracts the quality versions.

use ontodq_datalog::{parse_rule, Diagnostic, Rule, Severity, Tgd};
use ontodq_mdm::MdOntology;
use ontodq_relational::Database;
use std::collections::BTreeMap;
use std::fmt;

/// Why a [`Context`] could not be built.
///
/// Contexts used to panic on malformed rule texts; a long-running service
/// registers contexts on behalf of callers, so construction failures must be
/// reportable instead of fatal — [`ContextBuilder::build`] returns the first
/// error it accumulated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextError {
    /// A rule text did not parse at all.
    BadRuleText {
        /// The offending rule text.
        text: String,
        /// The parser's diagnostic.
        message: String,
    },
    /// A rule text parsed, but not to a TGD (contexts only contribute TGDs;
    /// constraints belong to the ontology).
    NotATgd {
        /// The offending rule text.
        text: String,
        /// What it parsed to instead.
        parsed: String,
    },
    /// Two external sources disagreed on a relation schema.
    ExternalSourceConflict(String),
    /// The compiled program failed static analysis: `ontodq-lint` reported
    /// error-severity diagnostics (unsafe rules, arity clashes, …).  Carries
    /// **every** diagnostic of the report — errors first — so callers can
    /// show the full picture, not just the first failure.
    Rejected(Vec<Diagnostic>),
}

impl fmt::Display for ContextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContextError::BadRuleText { text, message } => {
                write!(f, "bad rule text '{text}': {message}")
            }
            ContextError::NotATgd { text, parsed } => {
                write!(f, "expected a TGD rule, got '{parsed}' (from '{text}')")
            }
            ContextError::ExternalSourceConflict(message) => {
                write!(f, "external sources conflict: {message}")
            }
            ContextError::Rejected(diagnostics) => {
                let errors = diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Error)
                    .count();
                write!(f, "program rejected by static analysis ({errors} errors)")?;
                for diagnostic in diagnostics {
                    write!(f, "; {diagnostic}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ContextError {}

/// How a relation of the instance under assessment enters the context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaMapping {
    /// The relation is copied verbatim into a contextual relation (a
    /// "nickname"); the paper's `Measurements ↦ Measurements^c`.
    Copy {
        /// Relation name in the instance under assessment.
        original: String,
        /// Name of the contextual copy.
        contextual: String,
    },
}

impl SchemaMapping {
    /// The default contextual copy mapping for `relation`, using the paper's
    /// `R ↦ R_c` naming.
    pub fn copy_of(relation: &str) -> Self {
        SchemaMapping::Copy {
            original: relation.to_string(),
            contextual: format!("{relation}_c"),
        }
    }

    /// The original relation name.
    pub fn original(&self) -> &str {
        match self {
            SchemaMapping::Copy { original, .. } => original,
        }
    }

    /// The contextual relation name.
    pub fn contextual(&self) -> &str {
        match self {
            SchemaMapping::Copy { contextual, .. } => contextual,
        }
    }
}

impl fmt::Display for SchemaMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaMapping::Copy {
                original,
                contextual,
            } => {
                write!(f, "{original} ↦ {contextual} (copy)")
            }
        }
    }
}

/// A named quality predicate `P_i` and its defining rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualityPredicate {
    /// Predicate name (e.g. `TakenWithTherm`).
    pub name: String,
    /// Defining rules (their heads use `name`).
    pub rules: Vec<Tgd>,
    /// Human-readable statement of the quality requirement it captures.
    pub description: String,
}

/// The definition of the quality version `S^q` of one original relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QualityVersionSpec {
    /// The original relation name `S`.
    pub original: String,
    /// The name of the quality-version predicate (default `S_q`).
    pub quality_name: String,
    /// The rules defining the quality version.
    pub rules: Vec<Tgd>,
}

/// A context for data quality assessment.
#[derive(Debug, Clone, Default)]
pub struct Context {
    /// Context name, for diagnostics.
    pub name: String,
    /// Mappings from the instance under assessment into the context.
    pub mappings: Vec<SchemaMapping>,
    /// The multidimensional ontology `M`.
    pub ontology: MdOntology,
    /// Rules defining additional contextual predicates (e.g. the expanded
    /// `Measurements'` relation).
    pub contextual_rules: Vec<Tgd>,
    /// Quality predicates `P_i`.
    pub quality_predicates: Vec<QualityPredicate>,
    /// Quality-version definitions, keyed by original relation name.
    pub quality_versions: BTreeMap<String, QualityVersionSpec>,
    /// External sources `E_i` (extra extensional data available to the
    /// context).
    pub external_sources: Database,
}

impl Context {
    /// Start building a context.
    pub fn builder(name: impl Into<String>) -> ContextBuilder {
        ContextBuilder {
            context: Context {
                name: name.into(),
                ..Default::default()
            },
            errors: Vec::new(),
        }
    }

    /// The quality-version predicate name for `relation` (`{relation}_q` by
    /// default, or whatever the spec declares).
    pub fn quality_name_of(&self, relation: &str) -> String {
        self.quality_versions
            .get(relation)
            .map(|spec| spec.quality_name.clone())
            .unwrap_or_else(|| format!("{relation}_q"))
    }

    /// The contextual-copy name for `relation`, if a mapping exists.
    pub fn contextual_name_of(&self, relation: &str) -> Option<&str> {
        self.mappings
            .iter()
            .find(|m| m.original() == relation)
            .map(|m| m.contextual())
    }

    /// The context's goal predicates: every quality predicate `P_i` plus
    /// every quality-version predicate `S_i^q` — the outputs an assessment
    /// extracts.  The linter's reachability analysis treats rules outside
    /// the cone of these goals as unreachable.
    pub fn goal_predicates(&self) -> Vec<String> {
        let mut goals: Vec<String> = self
            .quality_predicates
            .iter()
            .map(|qp| qp.name.clone())
            .collect();
        goals.extend(
            self.quality_versions
                .values()
                .map(|spec| spec.quality_name.clone()),
        );
        goals.sort();
        goals.dedup();
        goals
    }

    /// All rules contributed by the context itself (contextual rules, quality
    /// predicates, quality versions) — the ontology's rules are added
    /// separately during assessment.
    pub fn context_rules(&self) -> Vec<Tgd> {
        let mut rules = self.contextual_rules.clone();
        for qp in &self.quality_predicates {
            rules.extend(qp.rules.iter().cloned());
        }
        for spec in self.quality_versions.values() {
            rules.extend(spec.rules.iter().cloned());
        }
        rules
    }

    /// Summary line for diagnostics.
    pub fn summary(&self) -> String {
        format!(
            "context '{}': {} mappings, {} contextual rules, {} quality predicates, {} quality versions, ontology: {}",
            self.name,
            self.mappings.len(),
            self.contextual_rules.len(),
            self.quality_predicates.len(),
            self.quality_versions.len(),
            self.ontology.summary()
        )
    }
}

/// Fluent builder for [`Context`].
///
/// The builder stays chainable even when a rule text is malformed: errors
/// are accumulated and surfaced by [`ContextBuilder::build`], so a service
/// registering caller-supplied contexts can reject them gracefully instead
/// of panicking.
#[derive(Debug, Clone, Default)]
pub struct ContextBuilder {
    context: Context,
    errors: Vec<ContextError>,
}

impl ContextBuilder {
    /// Attach the multidimensional ontology.
    pub fn ontology(mut self, ontology: MdOntology) -> Self {
        self.context.ontology = ontology;
        self
    }

    /// Map `relation` into the context as a verbatim copy named
    /// `{relation}_c`.
    pub fn copy_relation(mut self, relation: &str) -> Self {
        self.context.mappings.push(SchemaMapping::copy_of(relation));
        self
    }

    /// Map `relation` into the context as a copy with an explicit contextual
    /// name.
    pub fn copy_relation_as(mut self, relation: &str, contextual: &str) -> Self {
        self.context.mappings.push(SchemaMapping::Copy {
            original: relation.to_string(),
            contextual: contextual.to_string(),
        });
        self
    }

    /// Add a contextual rule from text.  A text that does not parse to a TGD
    /// is recorded as an error and reported by [`ContextBuilder::build`].
    pub fn contextual_rule(mut self, text: &str) -> Self {
        match parse_tgd(text) {
            Ok(tgd) => self.context.contextual_rules.push(tgd),
            Err(e) => self.errors.push(e),
        }
        self
    }

    /// Add a quality predicate defined by the given rule texts.
    pub fn quality_predicate(mut self, name: &str, description: &str, rule_texts: &[&str]) -> Self {
        let mut rules = Vec::new();
        for text in rule_texts {
            match parse_tgd(text) {
                Ok(tgd) => rules.push(tgd),
                Err(e) => self.errors.push(e),
            }
        }
        self.context.quality_predicates.push(QualityPredicate {
            name: name.to_string(),
            rules,
            description: description.to_string(),
        });
        self
    }

    /// Define the quality version of `relation` by the given rule texts
    /// (their heads must use the `{relation}_q` predicate).
    pub fn quality_version(mut self, relation: &str, rule_texts: &[&str]) -> Self {
        let mut rules = Vec::new();
        for text in rule_texts {
            match parse_tgd(text) {
                Ok(tgd) => rules.push(tgd),
                Err(e) => self.errors.push(e),
            }
        }
        let spec = QualityVersionSpec {
            original: relation.to_string(),
            quality_name: format!("{relation}_q"),
            rules,
        };
        self.context
            .quality_versions
            .insert(relation.to_string(), spec);
        self
    }

    /// Add an external source relation (extra extensional data).
    pub fn external_source(mut self, database: Database) -> Self {
        // Merge rather than replace, so several sources can be added.
        let mut merged = self.context.external_sources.clone();
        match merged.merge(&database) {
            Ok(_) => self.context.external_sources = merged,
            Err(e) => self
                .errors
                .push(ContextError::ExternalSourceConflict(e.to_string())),
        }
        self
    }

    /// Finish building.
    ///
    /// # Errors
    /// Returns the first error accumulated while building — a malformed rule
    /// text, a non-TGD rule, or an external-source schema conflict.
    pub fn build(mut self) -> Result<Context, ContextError> {
        if self.errors.is_empty() {
            Ok(self.context)
        } else {
            Err(self.errors.remove(0))
        }
    }
}

fn parse_tgd(text: &str) -> Result<Tgd, ContextError> {
    match parse_rule(text) {
        Ok(Rule::Tgd(t)) => Ok(t),
        Ok(other) => Err(ContextError::NotATgd {
            text: text.to_string(),
            parsed: other.to_string(),
        }),
        Err(e) => Err(ContextError::BadRuleText {
            text: text.to_string(),
            message: e.to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_mdm::fixtures::hospital;

    fn sample_context() -> Context {
        Context::builder("hospital-context")
            .ontology(hospital::ontology())
            .copy_relation("Measurements")
            .contextual_rule(
                "MeasurementsExt(t, p, v, y, b) :- Measurements_c(t, p, v), TakenByNurse(t, p, n, y), TakenWithTherm(t, p, b).",
            )
            .quality_predicate(
                "TakenWithTherm",
                "temperatures in the standard care unit are taken with brand B1 thermometers",
                &["TakenWithTherm(t, p, B1) :- PatientUnit(Standard, d, p), DayTime(d, t)."],
            )
            .quality_version(
                "Measurements",
                &["Measurements_q(t, p, v) :- MeasurementsExt(t, p, v, y, b), y = \"cert.\", b = B1."],
            )
            .build()
            .expect("the sample context is well-formed")
    }

    #[test]
    fn builder_assembles_all_parts() {
        let ctx = sample_context();
        assert_eq!(ctx.name, "hospital-context");
        assert_eq!(ctx.mappings.len(), 1);
        assert_eq!(ctx.contextual_rules.len(), 1);
        assert_eq!(ctx.quality_predicates.len(), 1);
        assert_eq!(ctx.quality_versions.len(), 1);
        assert_eq!(
            ctx.contextual_name_of("Measurements"),
            Some("Measurements_c")
        );
        assert_eq!(ctx.contextual_name_of("Other"), None);
        assert_eq!(ctx.quality_name_of("Measurements"), "Measurements_q");
        assert_eq!(ctx.quality_name_of("Other"), "Other_q");
        assert!(ctx.summary().contains("hospital-context"));
    }

    #[test]
    fn context_rules_concatenate_all_rule_groups() {
        let ctx = sample_context();
        let rules = ctx.context_rules();
        assert_eq!(rules.len(), 3);
        let heads: Vec<&str> = rules
            .iter()
            .flat_map(|r| r.head.iter().map(|a| a.predicate.as_str()))
            .collect();
        assert!(heads.contains(&"MeasurementsExt"));
        assert!(heads.contains(&"TakenWithTherm"));
        assert!(heads.contains(&"Measurements_q"));
    }

    #[test]
    fn schema_mapping_helpers() {
        let m = SchemaMapping::copy_of("Measurements");
        assert_eq!(m.original(), "Measurements");
        assert_eq!(m.contextual(), "Measurements_c");
        assert!(m.to_string().contains("copy"));
    }

    #[test]
    fn explicit_copy_names_and_external_sources() {
        let mut external = Database::new();
        external
            .insert_values("NurseRegistry", ["Helen", "cert."])
            .unwrap();
        let ctx = Context::builder("ctx")
            .copy_relation_as("Measurements", "MeasurementsContextCopy")
            .external_source(external)
            .build()
            .unwrap();
        assert_eq!(
            ctx.contextual_name_of("Measurements"),
            Some("MeasurementsContextCopy")
        );
        assert_eq!(
            ctx.external_sources
                .relation("NurseRegistry")
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn bad_rule_text_is_an_error_not_a_panic() {
        let err = Context::builder("ctx")
            .contextual_rule("this is not a rule")
            .build()
            .unwrap_err();
        assert!(matches!(err, ContextError::BadRuleText { .. }));
        assert!(err.to_string().contains("bad rule text"));
    }

    #[test]
    fn non_tgd_rule_text_is_an_error() {
        let err = Context::builder("ctx")
            .contextual_rule("! :- R(x).")
            .build()
            .unwrap_err();
        assert!(matches!(err, ContextError::NotATgd { .. }));
        assert!(err.to_string().contains("expected a TGD"));
    }

    #[test]
    fn first_of_several_errors_is_reported() {
        let err = Context::builder("ctx")
            .contextual_rule("garbage")
            .quality_version("R", &["! :- R(x)."])
            .build()
            .unwrap_err();
        assert!(matches!(err, ContextError::BadRuleText { .. }));
    }

    #[test]
    fn external_source_conflicts_are_errors() {
        let mut a = Database::new();
        a.insert_values("E", ["x"]).unwrap();
        let mut b = Database::new();
        b.insert_values("E", ["x", "y"]).unwrap();
        let err = Context::builder("ctx")
            .external_source(a)
            .external_source(b)
            .build()
            .unwrap_err();
        assert!(matches!(err, ContextError::ExternalSourceConflict(_)));
    }
}
