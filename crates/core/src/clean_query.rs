//! Clean (quality) query answering — the paper's Section V, Example 7.
//!
//! A query `Q` posed over the original relations `S_i` is rewritten into
//! `Q^q` by replacing every occurrence of an assessed relation with its
//! quality version `S_i^q`; the rewritten query is answered over the
//! assessed contextual instance.  The answers are the *quality answers* to
//! `Q`: the answers supported by data that meets the context's quality
//! requirements.

use crate::assessment::AssessmentResult;
use crate::context::Context;
use ontodq_datalog::{Atom, Conjunction};
use ontodq_qa::{AnswerSet, ConjunctiveQuery};
use ontodq_relational::Database;

/// Rewrite a query over original relations into one over quality versions.
///
/// Only relations with a quality-version definition in the context are
/// renamed; other predicates (contextual predicates, categorical relations,
/// parent–child predicates) are left untouched, so mixed queries are allowed.
pub fn rewrite_to_quality(context: &Context, query: &ConjunctiveQuery) -> ConjunctiveQuery {
    let rename = |atom: &Atom| -> Atom {
        if context.quality_versions.contains_key(&atom.predicate) {
            Atom::new(context.quality_name_of(&atom.predicate), atom.terms.clone())
        } else {
            atom.clone()
        }
    };
    let body = Conjunction {
        atoms: query.body.atoms.iter().map(rename).collect(),
        negated: query.body.negated.iter().map(rename).collect(),
        comparisons: query.body.comparisons.clone(),
    };
    ConjunctiveQuery::new(
        format!("{}_q", query.name),
        query.answer_variables.clone(),
        body,
    )
}

/// Answer `query` (over original relations) with quality answers, using an
/// already-computed assessment.
pub fn quality_answers(
    context: &Context,
    assessment: &AssessmentResult,
    query: &ConjunctiveQuery,
) -> AnswerSet {
    let rewritten = rewrite_to_quality(context, query);
    let tuples = ontodq_chase::evaluate_project(
        &assessment.contextual_instance,
        &rewritten.body,
        &rewritten.answer_variables,
    );
    AnswerSet::from_tuples(tuples).certain()
}

/// Answer `query` over the *original* instance without any quality filtering
/// (the baseline the paper contrasts quality answers with).
pub fn plain_answers(instance: &Database, query: &ConjunctiveQuery) -> AnswerSet {
    let tuples = ontodq_chase::evaluate_project(instance, &query.body, &query.answer_variables);
    AnswerSet::from_tuples(tuples).certain()
}

/// **Demand-driven** quality answers, without a precomputed assessment: the
/// context is compiled over `instance`, the query is rewritten to the
/// quality versions, and only the fragment of the contextual ontology the
/// query can observe is chased (the magic-set transformation of
/// [`ontodq_datalog::analysis::magic_transform`], driven through
/// [`ontodq_chase::ChaseEngine::chase_for_query`]).
///
/// The answers equal [`quality_answers`] over a full [`crate::assess`] run;
/// the work done is proportional to the demanded portion — for a selective
/// query (the doctor asking about one patient), a small fraction of the
/// full materialization.
pub fn quality_answers_on_demand(
    context: &Context,
    instance: &Database,
    query: &ConjunctiveQuery,
) -> AnswerSet {
    let (program, database) = crate::assessment::compile_context(context, instance);
    let rewritten = rewrite_to_quality(context, query);
    ontodq_qa::certain_answers_on_demand(&program, &database, &rewritten)
}

/// One-shot helper: assess and answer in a single call.
pub fn assess_and_answer(
    context: &Context,
    instance: &Database,
    query: &ConjunctiveQuery,
) -> AnswerSet {
    let assessment = crate::assessment::assess(context, instance);
    quality_answers(context, &assessment, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assessment::assess;
    use crate::scenarios::{doctors_query, hospital_context};
    use ontodq_mdm::fixtures::hospital;
    use ontodq_relational::{Tuple, Value};

    #[test]
    fn rewriting_renames_only_assessed_relations() {
        let context = hospital_context();
        let q = ConjunctiveQuery::parse(
            "Q(t, v) :- Measurements(t, p, v), PatientUnit(Standard, d, p).",
        )
        .unwrap();
        let rewritten = rewrite_to_quality(&context, &q);
        assert_eq!(rewritten.name, "Q_q");
        assert_eq!(rewritten.body.atoms[0].predicate, "Measurements_q");
        assert_eq!(rewritten.body.atoms[1].predicate, "PatientUnit");
        assert_eq!(rewritten.answer_variables, q.answer_variables);
    }

    #[test]
    fn example_7_quality_answers_to_the_doctors_query() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let assessment = assess(&context, &instance);

        let query = doctors_query();
        // Plain answers: the raw table has one measurement for Tom Waits in
        // the Sep/5 11:45–12:15 window...
        let plain = plain_answers(&instance, &query);
        assert_eq!(plain.len(), 1);
        // ...and it happens to be of quality (standard unit, certified nurse,
        // B1 thermometer), so the quality answer keeps it.
        let quality = quality_answers(&context, &assessment, &query);
        assert_eq!(quality.len(), 1);
        let answer = quality.to_vec().pop().unwrap();
        assert_eq!(answer.get(1), Some(&Value::str(hospital::TOM_WAITS)));
        assert_eq!(answer.get(2), Some(&Value::double(38.2)));
    }

    #[test]
    fn quality_answers_drop_measurements_outside_the_standard_unit() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let assessment = assess(&context, &instance);
        // Tom Waits' Sep/7 measurement exists in the raw data…
        let q = ConjunctiveQuery::parse(
            "Q(t, p, v) :- Measurements(t, p, v), p = \"Tom Waits\", t >= @Sep/7-00:00, t <= @Sep/7-23:59.",
        )
        .unwrap();
        assert_eq!(plain_answers(&instance, &q).len(), 1);
        // …but it was taken in the intensive-care ward with a B2 thermometer,
        // so it has no quality counterpart.
        assert!(quality_answers(&context, &assessment, &q).is_empty());
    }

    #[test]
    fn all_tom_waits_quality_measurements_reproduce_table_ii() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let q = ConjunctiveQuery::parse("Q(t, p, v) :- Measurements(t, p, v), p = \"Tom Waits\".")
            .unwrap();
        let answers = assess_and_answer(&context, &instance, &q);
        let expected: Vec<Tuple> = hospital::expected_quality_measurements();
        assert_eq!(answers.len(), expected.len());
        for t in expected {
            assert!(answers.contains(&t));
        }
    }

    #[test]
    fn demand_driven_answers_equal_full_assessment_answers() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let assessment = assess(&context, &instance);
        for text in [
            "Q(t, p, v) :- Measurements(t, p, v), p = \"Tom Waits\".",
            "Q(t, p, v) :- Measurements(t, p, v), p = \"Lou Reed\".",
            "Q(t, p, v) :- Measurements(t, p, v).",
            "Q(t, v) :- Measurements(t, p, v), PatientUnit(Standard, d, p).",
        ] {
            let q = ConjunctiveQuery::parse(text).unwrap();
            assert_eq!(
                quality_answers_on_demand(&context, &instance, &q),
                quality_answers(&context, &assessment, &q),
                "demand vs full diverge on {text}"
            );
        }
        // The doctor's query of Example 7, demand-driven.
        let q = doctors_query();
        assert_eq!(
            quality_answers_on_demand(&context, &instance, &q),
            quality_answers(&context, &assessment, &q)
        );
    }

    #[test]
    fn plain_and_quality_answers_agree_on_clean_data() {
        let context = hospital_context();
        let instance = hospital::measurements_database();
        let assessment = assess(&context, &instance);
        // Lou Reed's measurements were all taken in standard-care wards by a
        // certified nurse, so quality answering changes nothing.
        let q =
            ConjunctiveQuery::parse("Q(t, v) :- Measurements(t, p, v), p = \"Lou Reed\".").unwrap();
        let plain = plain_answers(&instance, &q);
        let quality = quality_answers(&context, &assessment, &q);
        assert_eq!(plain, quality);
        assert_eq!(plain.len(), 2);
    }
}
