//! Immutable point-in-time views of an assessed context.

use ontodq_chase::evaluate_project;
use ontodq_core::QualityMetrics;
use ontodq_qa::{AnswerSet, ConjunctiveQuery};
use ontodq_relational::Database;

/// An immutable, fully-chased view of one registered context.
///
/// Snapshots are shared as `Arc<Snapshot>`: readers clone the `Arc` (one
/// brief read-lock on the slot holding it) and then evaluate queries with no
/// locking at all, while the writer path chases the *next* version and swaps
/// the slot atomically — writers never block readers and a reader always
/// sees a consistent instance (snapshot isolation).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Name of the context this snapshot belongs to.
    pub context: String,
    /// Monotone snapshot version: 0 after registration, +1 per applied
    /// update batch.  Doubles as the prepared-query cache invalidation key.
    pub version: u64,
    /// The queryable instance: the chased contextual instance (contextual
    /// copies, generated dimensional data, quality predicates, quality
    /// versions under `…_q` names) **plus** the original relations of the
    /// instance under assessment, so queries may mix original, contextual
    /// and quality predicates.
    pub database: Database,
    /// The quality versions under the original relation names/schemas
    /// (the paper's `D^q`).
    pub quality: Database,
    /// Per-relation departure metrics of `D` vs `D^q`.
    pub metrics: QualityMetrics,
    /// Number of EGD/negative-constraint violations observed by the chase
    /// step that produced this snapshot.
    pub violations: usize,
    /// Chase epoch of the underlying instance when the snapshot was taken.
    pub epoch: u64,
}

impl Snapshot {
    /// The certain answers to `query` over this snapshot (labeled-null
    /// answers are dropped).  Entirely lock-free: the snapshot is immutable.
    pub fn answers(&self, query: &ConjunctiveQuery) -> AnswerSet {
        let tuples = evaluate_project(&self.database, &query.body, &query.answer_variables);
        AnswerSet::from_tuples(tuples).certain()
    }

    /// Total number of tuples visible to queries.
    pub fn total_tuples(&self) -> usize {
        self.database.total_tuples()
    }
}
