//! Immutable point-in-time views of an assessed context.

use ontodq_chase::{evaluate_project, ChaseEngine};
use ontodq_core::QualityMetrics;
use ontodq_datalog::Program;
use ontodq_qa::{AnswerSet, ConjunctiveQuery};
use ontodq_relational::Database;
use std::sync::Arc;

/// An immutable, fully-chased view of one registered context.
///
/// Snapshots are shared as `Arc<Snapshot>`: readers clone the `Arc` (one
/// brief read-lock on the slot holding it) and then evaluate queries with no
/// locking at all, while the writer path chases the *next* version and swaps
/// the slot atomically — writers never block readers and a reader always
/// sees a consistent instance (snapshot isolation).
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Name of the context this snapshot belongs to.
    pub context: String,
    /// Monotone snapshot version: 0 after registration, +1 per applied
    /// update batch.  Doubles as the prepared-query cache invalidation key.
    pub version: u64,
    /// The queryable instance: the chased contextual instance (contextual
    /// copies, generated dimensional data, quality predicates, quality
    /// versions under `…_q` names) **plus** the original relations of the
    /// instance under assessment, so queries may mix original, contextual
    /// and quality predicates.
    pub database: Database,
    /// The **pre-chase** extensional base (compiled ontology data,
    /// contextual copies, external sources, applied batches): what the
    /// demand-driven `?d-` path chases from, routing around the
    /// materialized instance entirely.
    pub base: Database,
    /// The combined Datalog± program (ontology + context rules) the
    /// demand-driven path specializes per query.
    pub program: Arc<Program>,
    /// The quality versions under the original relation names/schemas
    /// (the paper's `D^q`).
    pub quality: Database,
    /// Per-relation departure metrics of `D` vs `D^q`.
    pub metrics: QualityMetrics,
    /// Number of EGD/negative-constraint violations observed by the chase
    /// step that produced this snapshot.
    pub violations: usize,
    /// Chase epoch of the underlying instance when the snapshot was taken.
    pub epoch: u64,
}

impl Snapshot {
    /// The certain answers to `query` over this snapshot (labeled-null
    /// answers are dropped).  Entirely lock-free: the snapshot is immutable.
    pub fn answers(&self, query: &ConjunctiveQuery) -> AnswerSet {
        let tuples = evaluate_project(&self.database, &query.body, &query.answer_variables);
        AnswerSet::from_tuples(tuples).certain()
    }

    /// The certain answers to `query` computed **demand-driven**: the
    /// program is specialized to the query's bound constants (magic-set
    /// transformation) and only the relevant fragment of the pre-chase
    /// [`Snapshot::base`] is chased — the materialized instance is never
    /// read.  Answers equal [`Snapshot::answers`] for the same (already
    /// quality-rewritten) query; the point is the work profile, which is
    /// proportional to the demanded portion.  Lock-free like every other
    /// snapshot read.
    pub fn demand_answers(&self, query: &ConjunctiveQuery) -> AnswerSet {
        let chased =
            ChaseEngine::with_defaults().chase_for_query(&self.program, &self.base, &query.body);
        let tuples = evaluate_project(&chased.database, &query.body, &query.answer_variables);
        AnswerSet::from_tuples(tuples).certain()
    }

    /// Total number of tuples visible to queries.
    pub fn total_tuples(&self) -> usize {
        self.database.total_tuples()
    }
}
