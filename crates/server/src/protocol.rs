//! The line protocol front end.
//!
//! One session per connection (TCP) or per process (`--stdin`); each line is
//! a request, each request produces one or more response lines ending in an
//! `ok …` or `err: …` status line.  See `docs/protocol.md` for the full
//! specification.  Summary:
//!
//! ```text
//! +Measurements(@Sep/5-12:10, "Tom Waits", 38.2).   stage a fact
//! -Measurements(@Sep/5-12:10, "Tom Waits", 38.2).   stage a retraction
//! -Measurements(t, p, v) :- Measurements(t, p, v), p = "Tom Waits".
//!                                                   stage a conditional delete
//! !flush                                            apply staged facts (re-chase)
//! ?- Measurements(t, p, v), p = "Tom Waits".        plain certain answers
//! ?q- Measurements(t, p, v).                        quality answers
//! ?d- Measurements(t, p, v), p = "Tom Waits".       quality answers, demand-driven
//! !use CONTEXT                                      switch context
//! !contexts    !stats    !save    !health    !help    !quit
//! !metrics     !profile [CONTEXT]    !slow           observability
//! ```
//!
//! Staged facts are applied as **one batch** before any query (or on
//! `!flush`), so a client streaming many `+fact.` lines pays one incremental
//! re-chase, not one per fact.  Staged retractions are applied as one
//! delete-and-rederive batch *after* the staged inserts of the same flush.
//! Query evaluation is dispatched to the shared [`WorkerPool`]; the session
//! thread only parses, stages and prints.

use crate::cache::QueryKind;
use crate::error::ServiceError;
use crate::pool::WorkerPool;
use crate::service::QualityService;
use ontodq_datalog::{parse_program, Term};
use ontodq_relational::Tuple;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// One parsed protocol line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `+Pred(c1, …, cn).` — stage a ground fact.
    InsertFact(String),
    /// `-Pred(c1, …, cn).` or `-Pred(x̄) :- body.` — stage a ground
    /// retraction or a conditional delete.
    RetractFact(String),
    /// `?- body.` — plain certain answers.
    PlainQuery(String),
    /// `?q- body.` — quality answers.
    QualityQuery(String),
    /// `?d- body.` — quality answers computed demand-driven (magic-set
    /// restricted chase over the pre-chase base, routing around the
    /// materialized snapshot).
    DemandQuery(String),
    /// `!flush` — apply the staged batch now.
    Flush,
    /// `!discard` — drop the staged batch without applying it.
    Discard,
    /// `!use NAME` — switch the session to another context.
    UseContext(String),
    /// `!contexts` — list registered contexts.
    Contexts,
    /// `!stats` — snapshot version, instance sizes, cache, interner and
    /// durability counters.
    Stats,
    /// `!save` — snapshot every context to the durable store and compact
    /// the write-ahead log.
    Save,
    /// `!health` — the service's health state (healthy / degraded /
    /// recovering), admission-control counters and durability status.
    Health,
    /// `!metrics` — every metric series in Prometheus text exposition
    /// format: request/apply/WAL latency histograms, cache and retraction
    /// counters, queue and health gauges, per-rule chase profiles.
    Metrics,
    /// `!profile [CONTEXT]` — the top chase rules by cumulative join time
    /// for the named context (default: the session's current one).
    Profile(String),
    /// `!check [CONTEXT]` — the static-analysis report of the named
    /// context's compiled program (default: the session's current one):
    /// every `ontodq-lint` diagnostic in machine-readable `diag …` line
    /// format, then a summary with the termination certificate.
    Check(String),
    /// `!slow` — dump the slow-query ring (armed with
    /// `--slow-query-micros`).
    Slow,
    /// `!help` — print the command summary.
    Help,
    /// `!quit` — end the session.
    Quit,
    /// Blank line or `# comment`.
    Empty,
}

/// Parse one protocol line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(Request::Empty);
    }
    if let Some(rest) = line.strip_prefix("?q-") {
        return Ok(Request::QualityQuery(rest.trim().to_string()));
    }
    if let Some(rest) = line.strip_prefix("?d-") {
        return Ok(Request::DemandQuery(rest.trim().to_string()));
    }
    if let Some(rest) = line.strip_prefix("?-") {
        return Ok(Request::PlainQuery(rest.trim().to_string()));
    }
    if let Some(rest) = line.strip_prefix('+') {
        return Ok(Request::InsertFact(rest.trim().to_string()));
    }
    if let Some(rest) = line.strip_prefix('-') {
        return Ok(Request::RetractFact(rest.trim().to_string()));
    }
    if let Some(rest) = line.strip_prefix('!') {
        let mut parts = rest.trim().splitn(2, char::is_whitespace);
        let command = parts.next().unwrap_or_default();
        let argument = parts.next().unwrap_or("").trim();
        return match (command, argument) {
            ("flush", "") => Ok(Request::Flush),
            ("discard", "") => Ok(Request::Discard),
            ("use", name) if !name.is_empty() => Ok(Request::UseContext(name.to_string())),
            ("contexts", "") => Ok(Request::Contexts),
            ("stats", "") => Ok(Request::Stats),
            ("save", "") => Ok(Request::Save),
            ("health", "") => Ok(Request::Health),
            ("metrics", "") => Ok(Request::Metrics),
            ("profile", arg) => Ok(Request::Profile(arg.to_string())),
            ("check", arg) => Ok(Request::Check(arg.to_string())),
            ("slow", "") => Ok(Request::Slow),
            ("help", "") => Ok(Request::Help),
            ("quit", "") | ("exit", "") => Ok(Request::Quit),
            _ => Err(format!("unknown command '!{rest}' (try !help)")),
        };
    }
    Err(format!(
        "unrecognized line '{line}' (facts start with '+', retractions with '-', \
         queries with '?-' or '?q-', commands with '!')"
    ))
}

/// Parse the text after `+` into `(predicate, tuple)` facts.
///
/// The text must be one or more ground facts in rule syntax (e.g.
/// `Measurements(@Sep/5-12:10, "Tom Waits", 38.2).`); rules are rejected —
/// the program is fixed by the registered context.
///
/// String constants are routed through the global
/// [`ontodq_relational::SymbolInterner`] **here, once per staged batch**:
/// the tuples handed to the service carry fixed-width interned symbols, so
/// the whole downstream write path (batch validation, incremental re-chase,
/// snapshot swap) performs no further interning — and repeated constants
/// (the common case for protocol traffic) resolve on the interner's shared
/// read path without ever taking its write lock.
///
/// Interning happens at parse time, i.e. *before* schema validation, and
/// interned strings are never freed — distinct constants from rejected or
/// discarded batches still occupy the table.  Deployments exposed to
/// untrusted clients should cap line/batch sizes upstream (the same place
/// connection quotas live).
pub fn parse_facts(text: &str) -> Result<Vec<(String, Tuple)>, ServiceError> {
    let normalized = if text.trim_end().ends_with('.') {
        text.to_string()
    } else {
        format!("{text}.")
    };
    let program = parse_program(&normalized).map_err(|e| ServiceError::Parse(e.to_string()))?;
    if program.rule_count() != program.facts.len() {
        return Err(ServiceError::Parse(
            "only ground facts may be inserted; rules are fixed by the context".to_string(),
        ));
    }
    if program.facts.is_empty() {
        return Err(ServiceError::Parse("no fact found".to_string()));
    }
    let mut facts = Vec::with_capacity(program.facts.len());
    for fact in &program.facts {
        let atom = fact.atom();
        let mut values = Vec::with_capacity(atom.terms.len());
        for term in &atom.terms {
            match term {
                Term::Const(v) => values.push(*v),
                // The parser upholds "facts are ground" today, but this line
                // is fed by untrusted clients: a variable slipping through a
                // future parser change must be a protocol error, never a
                // panic that takes the session (or a pool worker) down.
                Term::Var(v) => {
                    return Err(ServiceError::Parse(format!(
                        "fact {atom} is not ground: '{v}' is a variable \
                         (constants are capitalized or quoted)"
                    )))
                }
            }
        }
        facts.push((atom.predicate.clone(), Tuple::new(values)));
    }
    Ok(facts)
}

/// Parse the text after `-` into a program holding only retraction rules:
/// ground retractions (`-P(c̄).`) and conditional deletes
/// (`-P(x̄) :- body.`).
///
/// The leading `-` the request parser stripped is restored before parsing,
/// so the text goes through the ordinary rule grammar; anything that is not
/// a retraction-kind rule is rejected (the context's rule set is fixed).
/// Expansion of conditional deletes against the live instance happens at
/// flush time, under the writer lock — staging is purely syntactic.
pub fn parse_retractions(text: &str) -> Result<ontodq_datalog::Program, ServiceError> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(ServiceError::Parse("no retraction found".to_string()));
    }
    let normalized = if trimmed.ends_with('.') {
        format!("-{trimmed}")
    } else {
        format!("-{trimmed}.")
    };
    let program = parse_program(&normalized).map_err(|e| ServiceError::Parse(e.to_string()))?;
    if program.rule_count() != program.retractions.len() + program.deletions.len() {
        return Err(ServiceError::Parse(
            "only retractions may follow '-'; rules are fixed by the context".to_string(),
        ));
    }
    if program.rule_count() == 0 {
        return Err(ServiceError::Parse("no retraction found".to_string()));
    }
    Ok(program)
}

const HELP: &str = "\
+Fact(c1, ..., cn).   stage a ground fact for the current context
-Fact(c1, ..., cn).   stage a retraction (delete-and-rederive on flush)
-Head(...) :- body.   stage a conditional delete (expanded at flush time)
!flush                apply staged inserts, then staged retractions
!discard              drop staged facts/retractions without applying them
?- body.              plain certain answers (auto-flushes staged facts)
?q- body.             quality answers over the quality versions
?d- body.             quality answers, demand-driven (magic-set chase)
!use NAME             switch context        !contexts  list contexts
!stats                versions, cache, wal  !help      this text
!save                 snapshot all contexts to the store, compact the wal
!health               health state (healthy/degraded/recovering), queue load
!metrics              every metric series, Prometheus text exposition format
!profile [CONTEXT]    top chase rules by cumulative join time
!check [CONTEXT]      static-analysis report: diagnostics + termination certificate
!slow                 recent slow queries (arm with --slow-query-micros)
!quit                 end the session";

/// `true` when an io error just means the peer went away — a normal way
/// for a session to end, not a fault to propagate (and certainly nothing to
/// poison a session thread over).
fn is_disconnect(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::UnexpectedEof
    )
}

/// Per-session tunables for [`serve_session_with`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// How many consecutive timed-out reads (`WouldBlock`/`TimedOut`, the
    /// kinds a socket read deadline produces) the session tolerates before
    /// disconnecting the idle client.  Each strike spans one OS-level read
    /// timeout (`--idle-timeout` sets the deadline; the strike budget
    /// multiplies it).  Partial lines received before a timeout are kept
    /// and completed by the next read.
    pub max_idle_strikes: u32,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            max_idle_strikes: 3,
        }
    }
}

/// Serve one session: read protocol lines from `reader`, write responses to
/// `writer`, until EOF or `!quit` — with the default [`SessionConfig`].
///
/// However the session ends — `!quit`, EOF, idle timeout, or the client
/// vanishing — the store's active WAL segment is flushed and fsynced before
/// the session thread winds down (failures there are logged and swallowed:
/// every acked batch already fsynced), and a disconnect on the write path
/// is swallowed too (a client that hangs up mid-answer ends the session
/// cleanly instead of surfacing `BrokenPipe` out of the session thread).
pub fn serve_session<R: BufRead, W: Write>(
    service: &Arc<QualityService>,
    pool: &Arc<WorkerPool>,
    default_context: &str,
    reader: R,
    writer: W,
) -> std::io::Result<()> {
    serve_session_with(
        service,
        pool,
        default_context,
        reader,
        writer,
        &SessionConfig::default(),
    )
}

/// [`serve_session`] with explicit per-session tunables.
pub fn serve_session_with<R: BufRead, W: Write>(
    service: &Arc<QualityService>,
    pool: &Arc<WorkerPool>,
    default_context: &str,
    reader: R,
    mut writer: W,
    config: &SessionConfig,
) -> std::io::Result<()> {
    let result = session_loop(service, pool, default_context, reader, &mut writer, config);
    // Durability before thread teardown, on every exit path.
    service.sync_store();
    match result {
        Err(e) if is_disconnect(&e) => Ok(()),
        other => other,
    }
}

/// The session's staged-but-unapplied work: insert facts and retraction
/// rules.  The next flush applies the inserts as one batch, then the
/// retractions as one delete-and-rederive batch.
#[derive(Default)]
struct Staged {
    facts: Vec<(String, Tuple)>,
    retractions: ontodq_datalog::Program,
}

impl Staged {
    fn len(&self) -> usize {
        self.facts.len() + self.retractions.rule_count()
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn clear(&mut self) {
        self.facts.clear();
        self.retractions = ontodq_datalog::Program::new();
    }
}

/// The session loop proper; io errors (including disconnects) propagate to
/// [`serve_session_with`], which classifies them.
fn session_loop<R: BufRead, W: Write>(
    service: &Arc<QualityService>,
    pool: &Arc<WorkerPool>,
    default_context: &str,
    mut reader: R,
    writer: &mut W,
    config: &SessionConfig,
) -> std::io::Result<()> {
    let mut context = default_context.to_string();
    let mut staged = Staged::default();
    let clock = service.clock();
    // The read buffer persists across reads: a read deadline elapsing
    // mid-line leaves the partial bytes here (`read_line` appends what it
    // got before the error) and the next read completes them, so slow
    // clients never lose input to a timeout — only silent ones lose the
    // session.
    let mut buffer = String::new();
    let mut idle_strikes: u32 = 0;

    loop {
        match reader.read_line(&mut buffer) {
            Ok(0) => break, // EOF
            Ok(_) => idle_strikes = 0,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // A read deadline elapsed.  Strike the client; disconnect
                // after the budget so an abandoned connection cannot pin a
                // session thread forever.
                idle_strikes += 1;
                if idle_strikes >= config.max_idle_strikes.max(1) {
                    // Best effort — the peer may be long gone.
                    let _ = writeln!(writer, "err: idle timeout, closing session");
                    let _ = writer.flush();
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        let line = std::mem::take(&mut buffer);
        let request = match parse_request(&line) {
            Ok(request) => request,
            Err(message) => {
                writeln!(writer, "err: {message}")?;
                writer.flush()?;
                continue;
            }
        };
        // Per-verb request timing (`ontodq_request_micros{verb=…}`),
        // observed after the handler regardless of outcome — errors are
        // served requests too.  `!quit` breaks out before the observation:
        // its only latency is the goodbye line.
        let verb = match &request {
            Request::Empty | Request::Quit => None,
            Request::InsertFact(_) => Some("insert"),
            Request::RetractFact(_) => Some("retract"),
            Request::PlainQuery(_) => Some("query"),
            Request::QualityQuery(_) => Some("quality_query"),
            Request::DemandQuery(_) => Some("demand_query"),
            Request::Flush => Some("flush"),
            Request::Discard => Some("discard"),
            Request::UseContext(_) => Some("use"),
            Request::Contexts => Some("contexts"),
            Request::Stats => Some("stats"),
            Request::Save => Some("save"),
            Request::Health => Some("health"),
            Request::Metrics => Some("metrics"),
            Request::Profile(_) => Some("profile"),
            Request::Check(_) => Some("check"),
            Request::Slow => Some("slow"),
            Request::Help => Some("help"),
        };
        let request_start = clock.now_micros();
        match request {
            Request::Empty => continue,
            Request::Quit => {
                writeln!(writer, "ok bye")?;
                writer.flush()?;
                break;
            }
            Request::Help => writeln!(writer, "{HELP}\nok")?,
            Request::Contexts => {
                let names = service.context_names();
                writeln!(writer, "ok contexts={}", names.join(","))?;
            }
            Request::UseContext(name) => {
                if !staged.is_empty() {
                    // Staged changes belong to the context they were staged
                    // for; switching would silently apply them elsewhere.
                    writeln!(
                        writer,
                        "err: {} change(s) staged for context '{context}'; !flush them first",
                        staged.len()
                    )?;
                } else if service.context_names().iter().any(|n| n == &name) {
                    context = name;
                    writeln!(writer, "ok context={context}")?;
                } else {
                    writeln!(writer, "err: unknown context '{name}'")?;
                }
            }
            Request::Stats => match service.stats_line(&context, staged.len()) {
                Ok(line) => writeln!(writer, "{line}")?,
                Err(e) => writeln!(writer, "err: {e}")?,
            },
            Request::Save => match service.persist_all() {
                Ok(report) => writeln!(
                    writer,
                    "ok saved contexts={} segments_removed={}",
                    report.contexts, report.segments_removed,
                )?,
                Err(e) => writeln!(writer, "err: {e}")?,
            },
            Request::Health => {
                let health = service.health();
                let bound = pool.queue_bound();
                let bound = if bound == usize::MAX {
                    "unbounded".to_string()
                } else {
                    bound.to_string()
                };
                let reason = health
                    .reason
                    .as_deref()
                    .map(|r| format!(" reason=\"{r}\""))
                    .unwrap_or_default();
                writeln!(
                    writer,
                    "ok health={} store={} queued={} queue_bound={} refused_writes={} probes={} queue_peak={} queue_wait_p95={}{}",
                    health.state,
                    if service.has_store() {
                        "attached"
                    } else {
                        "none"
                    },
                    pool.queued(),
                    bound,
                    health.refused_writes,
                    health.probes,
                    pool.queued_peak(),
                    pool.wait_histogram().p95(),
                    reason,
                )?;
            }
            Request::Metrics => {
                // Gauges are sampled at scrape time; counters/histograms
                // were updated at their sources.  The payload is the
                // standard Prometheus text exposition format, one series
                // block per family, terminated by the usual `ok` line.
                write!(writer, "{}", service.render_metrics(pool))?;
                writeln!(writer, "ok")?;
            }
            Request::Profile(name) => {
                let name = if name.is_empty() {
                    context.clone()
                } else {
                    name
                };
                match service.chase_profile(&name) {
                    Ok(profile) => {
                        for rule in profile.top_by_join_micros(10) {
                            writeln!(
                                writer,
                                "rule={} evals={} delta_rows={} fires={} satisfied={} tuples={} join_micros={} kernel={} label=\"{}\"",
                                rule.rule_index,
                                rule.evaluations,
                                rule.delta_rows,
                                rule.fires,
                                rule.satisfied,
                                rule.tuples_added,
                                rule.join_micros,
                                rule.kernel(),
                                rule.label,
                            )?;
                        }
                        writeln!(
                            writer,
                            "ok context={} rules={} total_join_micros={} egd_micros={} chase_micros={} dred_batches={}",
                            name,
                            profile.rules.iter().filter(|r| r.evaluations > 0).count(),
                            profile.join_micros(),
                            profile.egd_micros,
                            profile.total_micros,
                            profile.dred.batches,
                        )?;
                    }
                    Err(e) => writeln!(writer, "err: {e}")?,
                }
            }
            Request::Check(name) => {
                let name = if name.is_empty() {
                    context.clone()
                } else {
                    name
                };
                match service.check(&name) {
                    Ok(report) => {
                        for diagnostic in &report.diagnostics {
                            writeln!(writer, "{}", diagnostic.line())?;
                        }
                        writeln!(
                            writer,
                            "ok check context={} class={} certified={} strata={} errors={} warnings={}",
                            name,
                            report.certificate.class,
                            if report.certificate.terminating { "yes" } else { "no" },
                            report
                                .strata
                                .map(|s| s.to_string())
                                .unwrap_or_else(|| "-".to_string()),
                            report.error_count(),
                            report.warning_count(),
                        )?;
                    }
                    Err(e) => writeln!(writer, "err: {e}")?,
                }
            }
            Request::Slow => {
                let records = service.slow_queries();
                for record in &records {
                    writeln!(
                        writer,
                        "slow verb={} micros={} start={} query={}",
                        record.name, record.duration_micros, record.start_micros, record.detail,
                    )?;
                }
                writeln!(
                    writer,
                    "ok slow={} threshold_micros={}",
                    records.len(),
                    service.slow_query_threshold(),
                )?;
            }
            Request::InsertFact(text) => match parse_facts(&text) {
                Ok(facts) => {
                    staged.facts.extend(facts);
                    writeln!(writer, "ok staged={}", staged.len())?;
                }
                Err(e) => writeln!(writer, "err: {e}")?,
            },
            Request::RetractFact(text) => match parse_retractions(&text) {
                Ok(program) => {
                    staged.retractions.extend(program);
                    writeln!(writer, "ok staged={}", staged.len())?;
                }
                Err(e) => writeln!(writer, "err: {e}")?,
            },
            Request::Discard => {
                let dropped = staged.len();
                staged.clear();
                writeln!(writer, "ok discarded={dropped}")?;
            }
            Request::Flush => {
                match flush(service, &context, &mut staged) {
                    Ok((None, None)) => writeln!(writer, "ok applied new=0 (nothing staged)")?,
                    Ok((inserted, retracted)) => {
                        if let Some(report) = inserted {
                            writeln!(
                                writer,
                                "ok applied new={} derived={} version={} violations={} micros={}",
                                report.new_facts,
                                report.derived,
                                report.version,
                                report.violations,
                                report.elapsed.as_micros(),
                            )?;
                        }
                        if let Some(report) = retracted {
                            writeln!(
                                writer,
                                "ok retracted requested={} removed={} cascaded={} rederived={} version={} micros={}",
                                report.requested,
                                report.retracted,
                                report.cascaded,
                                report.rederived,
                                report.version,
                                report.elapsed.as_micros(),
                            )?;
                        }
                    }
                    Err(e) => writeln!(writer, "err: {e}")?,
                };
            }
            ref request @ (Request::PlainQuery(ref text)
            | Request::QualityQuery(ref text)
            | Request::DemandQuery(ref text)) => {
                let text = text.clone();
                let kind = match request {
                    Request::QualityQuery(_) => QueryKind::Quality,
                    Request::DemandQuery(_) => QueryKind::Demand,
                    _ => QueryKind::Plain,
                };
                // Writes are visible to the writer's own subsequent reads:
                // staged facts are applied before answering.
                if let Err(e) = flush(service, &context, &mut staged) {
                    writeln!(writer, "err: {e}")?;
                    writer.flush()?;
                    continue;
                }
                // Evaluate on the shared worker pool.
                let slow_text = text.clone();
                let job_service = Arc::clone(service);
                let job_context = context.clone();
                let receiver = pool.submit(move || match kind {
                    QueryKind::Plain => job_service.plain_answers(&job_context, &text),
                    QueryKind::Quality => job_service.quality_answers(&job_context, &text),
                    QueryKind::Demand => job_service.demand_answers(&job_context, &text),
                });
                // Three layers: the channel (closed only if the pool died
                // mid-shutdown), the job outcome (panics surface as
                // `JobPanicked`), and the service result proper.
                let outcome = receiver
                    .recv()
                    .map_err(|_| ServiceError::PoolClosed)
                    .and_then(|job| job)
                    .and_then(|response| response);
                match outcome {
                    Ok(response) => {
                        for tuple in response.answers.iter() {
                            writeln!(writer, "{tuple}")?;
                        }
                        writeln!(
                            writer,
                            "ok answers={} version={} cached={}",
                            response.answers.len(),
                            response.version,
                            response.cached,
                        )?;
                    }
                    Err(e) => writeln!(writer, "err: {e}")?,
                }
                // Slow-query log: the end-to-end latency the client saw
                // (auto-flush + queue wait + evaluation), against the armed
                // threshold.  A disabled threshold makes this a no-op.
                if let Some(verb) = verb {
                    let micros = clock.now_micros().saturating_sub(request_start);
                    service.note_query(verb, &slow_text, micros);
                }
            }
        }
        if let Some(verb) = verb {
            service.observe_request(verb, clock.now_micros().saturating_sub(request_start));
        }
        writer.flush()?;
    }
    Ok(())
}

/// Apply the staged work, if any: the insert batch first, then the
/// retraction batch (so a flush that stages both inserts and retractions of
/// the same fact nets to its absence).
///
/// On a *rejection* of the insert batch (parse/schema error) all staged
/// work is kept — batches are applied atomically (a rejected batch changed
/// nothing), so the client can drop or fix the offending fact and `!flush`
/// again.  A [`ServiceError::Store`] is different: the batch **was**
/// applied in memory and only its durability failed, so the applied part is
/// cleared (re-flushing it would double-apply) and the error is surfaced as
/// the status line.  Retractions have no rejection path — expansion of a
/// rule matching nothing is an applied no-op — so their staged rules are
/// always consumed by the attempt.
fn flush(
    service: &Arc<QualityService>,
    context: &str,
    staged: &mut Staged,
) -> Result<
    (
        Option<crate::service::UpdateReport>,
        Option<crate::service::RetractReport>,
    ),
    ServiceError,
> {
    let inserted = if staged.facts.is_empty() {
        None
    } else {
        match service.insert_facts(context, staged.facts.clone()) {
            Ok(report) => {
                staged.facts.clear();
                Some(report)
            }
            Err(e @ ServiceError::Store(_)) => {
                staged.facts.clear();
                return Err(e);
            }
            Err(e) => return Err(e),
        }
    };
    let retracted = if staged.retractions.rule_count() == 0 {
        None
    } else {
        let program = std::mem::take(&mut staged.retractions);
        Some(service.retract_facts(context, &program)?)
    };
    Ok((inserted, retracted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_core::scenarios;
    use ontodq_mdm::fixtures::hospital;

    fn session_output(input: &str) -> String {
        let service = Arc::new(QualityService::new());
        service
            .register_context(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
            )
            .unwrap();
        let pool = Arc::new(WorkerPool::new(2));
        let mut output = Vec::new();
        serve_session(&service, &pool, "hospital", input.as_bytes(), &mut output).unwrap();
        String::from_utf8(output).unwrap()
    }

    #[test]
    fn parse_request_covers_every_form() {
        assert_eq!(parse_request(""), Ok(Request::Empty));
        assert_eq!(parse_request("# hi"), Ok(Request::Empty));
        assert_eq!(
            parse_request("+R(a)."),
            Ok(Request::InsertFact("R(a).".to_string()))
        );
        assert_eq!(
            parse_request("-R(a)."),
            Ok(Request::RetractFact("R(a).".to_string()))
        );
        assert_eq!(
            parse_request("-R(x) :- S(x)."),
            Ok(Request::RetractFact("R(x) :- S(x).".to_string()))
        );
        assert_eq!(
            parse_request("?- R(x)."),
            Ok(Request::PlainQuery("R(x).".to_string()))
        );
        assert_eq!(
            parse_request("?q- R(x)."),
            Ok(Request::QualityQuery("R(x).".to_string()))
        );
        assert_eq!(
            parse_request("?d- R(x)."),
            Ok(Request::DemandQuery("R(x).".to_string()))
        );
        assert_eq!(parse_request("!flush"), Ok(Request::Flush));
        assert_eq!(parse_request("!discard"), Ok(Request::Discard));
        assert_eq!(
            parse_request("!use scaled"),
            Ok(Request::UseContext("scaled".to_string()))
        );
        assert_eq!(parse_request("!contexts"), Ok(Request::Contexts));
        assert_eq!(parse_request("!stats"), Ok(Request::Stats));
        assert_eq!(parse_request("!save"), Ok(Request::Save));
        assert_eq!(parse_request("!metrics"), Ok(Request::Metrics));
        assert_eq!(
            parse_request("!profile"),
            Ok(Request::Profile(String::new()))
        );
        assert_eq!(
            parse_request("!profile hospital"),
            Ok(Request::Profile("hospital".to_string()))
        );
        assert_eq!(parse_request("!check"), Ok(Request::Check(String::new())));
        assert_eq!(
            parse_request("!check hospital"),
            Ok(Request::Check("hospital".to_string()))
        );
        assert_eq!(parse_request("!slow"), Ok(Request::Slow));
        assert_eq!(parse_request("!help"), Ok(Request::Help));
        assert_eq!(parse_request("!quit"), Ok(Request::Quit));
        assert!(parse_request("!nope").is_err());
        assert!(parse_request("garbage").is_err());
    }

    #[test]
    fn facts_parse_to_predicate_tuple_pairs() {
        let facts = parse_facts("Measurements(@Sep/5-12:10, \"Tom Waits\", 38.2).").unwrap();
        assert_eq!(facts.len(), 1);
        assert_eq!(facts[0].0, "Measurements");
        assert_eq!(facts[0].1.arity(), 3);
        // Rules are rejected.
        assert!(parse_facts("R(x) :- S(x).").is_err());
        assert!(parse_facts("").is_err());
    }

    #[test]
    fn end_to_end_stdin_session() {
        let out = session_output(
            "?q- Measurements(t, p, v), p = \"Tom Waits\".\n\
             +Measurements(@Sep/6-11:05, \"Lou Reed\", 39.9).\n\
             ?q- Measurements(t, p, v), p = \"Lou Reed\".\n\
             !stats\n\
             !quit\n",
        );
        // Tom's two quality rows from version 0.
        assert!(out.contains("ok answers=2 version=0"));
        // The staged fact is applied before Lou's query: 2 original quality
        // rows + the new reading.
        assert!(out.contains("ok staged=1"));
        assert!(out.contains("39.9"));
        assert!(out.contains("ok answers=3 version=1"));
        assert!(out.contains("ok context=hospital version=1"));
        assert!(out.trim_end().ends_with("ok bye"));
    }

    #[test]
    fn retractions_parse_to_retraction_programs() {
        let program =
            parse_retractions("Measurements(@Sep/5-12:10, \"Tom Waits\", 38.2).").unwrap();
        assert_eq!(program.retractions.len(), 1);
        assert!(program.deletions.is_empty());
        let program =
            parse_retractions("Measurements(t, p, v) :- Measurements(t, p, v), p = \"X\".")
                .unwrap();
        assert_eq!(program.deletions.len(), 1);
        // Non-retraction rules and junk are rejected.
        assert!(parse_retractions("").is_err());
        assert!(parse_retractions("R(x), S(x)").is_err());
    }

    /// The full correction loop over one stdin session: insert → query →
    /// retract → query, with the answers changing both times, and the new
    /// `!stats` counters visible.
    #[test]
    fn end_to_end_retraction_session() {
        let out = session_output(
            "+Measurements(@Sep/6-11:05, \"Lou Reed\", 39.9).\n\
             ?q- Measurements(t, p, v), p = \"Lou Reed\".\n\
             -Measurements(@Sep/6-11:05, \"Lou Reed\", 39.9).\n\
             !flush\n\
             ?q- Measurements(t, p, v), p = \"Lou Reed\".\n\
             !stats\n\
             !quit\n",
        );
        // The insert is auto-flushed by the first query; Lou has 3 quality
        // rows at version 1.
        assert!(out.contains("ok answers=3 version=1"), "got:\n{out}");
        // The retraction applies on !flush and removes the row again.
        assert!(
            out.contains("ok retracted requested=1 removed=1"),
            "got:\n{out}"
        );
        assert!(out.contains("ok answers=2 version=2"), "got:\n{out}");
        // New counters are on the stats line.
        assert!(out.contains("retractions=1"));
        assert!(out.contains("live_rows="));
        assert!(out.contains("total_rows="));
        assert!(out.contains("reclaimable_bytes="));
    }

    /// Conditional deletes stage like ground retractions and expand at
    /// flush time against the live instance.
    #[test]
    fn conditional_deletes_work_through_the_protocol() {
        let out = session_output(
            "-Measurements(t, p, v) :- Measurements(t, p, v), p = \"Tom Waits\".\n\
             !flush\n\
             ?- Measurements(t, p, v), p = \"Tom Waits\".\n\
             !quit\n",
        );
        // All four raw Tom Waits rows are condemned by the one rule.
        assert!(out.contains("ok staged=1"));
        assert!(out.contains("requested=4 removed=4"), "got:\n{out}");
        assert!(out.contains("ok answers=0 version=1"), "got:\n{out}");
    }

    /// `?d-` answers must equal `?q-` answers line for line — the
    /// demand-driven path is a different evaluation strategy, not different
    /// semantics — and both must see the session's own staged writes.
    #[test]
    fn demand_queries_equal_quality_queries_end_to_end() {
        let out = session_output(
            "?q- Measurements(t, p, v), p = \"Tom Waits\".\n\
             ?d- Measurements(t, p, v), p = \"Tom Waits\".\n\
             +Measurements(@Sep/6-11:05, \"Lou Reed\", 39.9).\n\
             ?d- Measurements(t, p, v), p = \"Lou Reed\".\n\
             ?q- Measurements(t, p, v), p = \"Lou Reed\".\n\
             ?d- Measurements(t, p, v), p = \"Lou Reed\".\n\
             !quit\n",
        );
        // Tom's two quality rows, by both paths, against version 0.
        assert_eq!(out.matches("ok answers=2 version=0").count(), 2);
        // The staged fact is applied before the demand query runs; Lou then
        // has three quality rows by both paths (the repeated demand query a
        // third time, from the cache).
        assert_eq!(out.matches("ok answers=3 version=1").count(), 3);
        assert!(out.contains("cached=true"));
    }

    /// Regression: a non-ground fact from an untrusted client must be a
    /// protocol error, never a panic — neither in `parse_facts` nor
    /// anywhere downstream.  (The `unreachable!("facts are ground")` this
    /// replaces would have taken the whole session thread down.)
    #[test]
    fn non_ground_facts_are_rejected_not_panicked() {
        for text in [
            "Measurements(x, p, v).",
            "Measurements(@Sep/5-12:10, p, 38.2).",
            "Measurements(_t, \"Tom Waits\", 38.2).",
        ] {
            let err = parse_facts(text).unwrap_err();
            assert!(
                matches!(err, ServiceError::Parse(_)),
                "{text}: expected a parse error, got {err:?}"
            );
        }
        // The session stays alive and reports the error inline.
        let out = session_output(
            "+Measurements(x, p, v).\n\
             ?q- Measurements(t, p, v), p = \"Tom Waits\".\n\
             !quit\n",
        );
        assert!(out.contains("err:"));
        assert!(out.contains("ok answers=2 version=0"));
        assert!(out.trim_end().ends_with("ok bye"));
    }

    /// `!stats` surfaces the cache's entry and eviction counters, so a
    /// cache that thrashes (or one that stops admitting) is observable from
    /// the protocol.
    #[test]
    fn stats_surface_cache_entries_and_evictions() {
        let out = session_output(
            "?q- Measurements(t, p, v).\n\
             !stats\n\
             !quit\n",
        );
        assert!(out.contains("cache_entries=1"));
        assert!(out.contains("cache_evictions=0"));
    }

    #[test]
    fn use_refuses_to_carry_staged_facts_across_contexts() {
        let out = session_output(
            "+Measurements(@Sep/6-11:05, \"Lou Reed\", 39.9).\n\
             !use hospital\n\
             !discard\n\
             !use hospital\n\
             ?q- Measurements(t, p, v), p = \"Lou Reed\".\n\
             !quit\n",
        );
        // Switching with staged facts is refused, even to the same name…
        assert!(out.contains("err: 1 change(s) staged for context 'hospital'"));
        // …discarding clears them, after which switching works and the
        // discarded fact never reached the instance (Lou keeps 2 quality
        // rows).
        assert!(out.contains("ok discarded=1"));
        assert!(out.contains("ok context=hospital"));
        assert!(out.contains("ok answers=2 version=0"));
    }

    #[test]
    fn failed_flush_keeps_the_staged_batch_for_retry() {
        let out = session_output(
            "+Measurements(@Sep/6-11:05, \"Lou Reed\").\n\
             !flush\n\
             !stats\n\
             !discard\n\
             !quit\n",
        );
        // The wrong-arity fact stages fine but the batch is rejected
        // atomically…
        assert!(out.contains("ok staged=1"));
        assert!(out.contains("err: data error"));
        // …and stays staged (visible in !stats) until discarded.
        assert!(out.contains("staged=1 cache_hits"));
        assert!(out.contains("ok discarded=1"));
    }

    /// `parse_facts` routes every string constant through the global
    /// interner at parse time, once per batch: re-parsing a batch whose
    /// constants are already interned performs zero write-lock
    /// acquisitions (retried because the counter is process-global and
    /// sibling tests may intern concurrently).
    #[test]
    fn reparsing_a_batch_stays_on_the_interner_read_path() {
        let batch = "Measurements(@Sep/5-12:10, \"Tom Waits\", 38.2).\n\
                     Measurements(@Sep/6-11:50, \"Tom Waits\", 37.1).";
        let first = parse_facts(batch).unwrap();
        assert_eq!(first.len(), 2);
        let interner = ontodq_relational::SymbolInterner::global();
        let mut clean = false;
        for _ in 0..10 {
            let before = interner.write_acquisitions();
            let again = parse_facts(batch).unwrap();
            assert_eq!(first, again);
            if interner.write_acquisitions() == before {
                clean = true;
                break;
            }
        }
        assert!(
            clean,
            "re-parsing a known batch took the interner write lock"
        );
    }

    /// `!stats` surfaces the interner, durability and join-engine counters
    /// plus the arena footprint; `!save` without a store is an inline
    /// error, not a dead session.
    #[test]
    fn stats_and_save_report_durability_state() {
        let out = session_output("!stats\n!save\n!stats\n!quit\n");
        assert!(out.contains("interner_writes="));
        assert!(out.contains("wal_segments=0 wal_bytes=0"));
        assert!(out.contains("probes="));
        assert!(out.contains("gallops="));
        assert!(out.contains("wco_seeks="));
        assert!(out.contains("materializations="));
        assert!(out.contains("arena_bytes="));
        assert!(out.contains("err: no durable store attached"));
        assert!(out.trim_end().ends_with("ok bye"));
    }

    /// A client that hangs up mid-response must end the session cleanly:
    /// the write-path disconnect is swallowed, not propagated (and never a
    /// panic).
    #[test]
    fn a_disconnecting_client_ends_the_session_cleanly() {
        struct Hangup {
            budget: usize,
        }
        impl Write for Hangup {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if self.budget < buf.len() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::BrokenPipe,
                        "client went away",
                    ));
                }
                self.budget -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let service = Arc::new(QualityService::new());
        service
            .register_context(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
            )
            .unwrap();
        let pool = Arc::new(WorkerPool::new(2));
        // Enough budget for the first status line, then the pipe breaks
        // mid-answer-stream.
        let input = "!stats\n?- Measurements(t, p, v).\n!stats\n!quit\n";
        for budget in [0usize, 8, 64, 200] {
            let result = serve_session(
                &service,
                &pool,
                "hospital",
                input.as_bytes(),
                Hangup { budget },
            );
            assert!(result.is_ok(), "budget {budget}: {result:?}");
        }
    }

    #[test]
    fn errors_are_reported_inline_and_do_not_kill_the_session() {
        let out = session_output(
            "?- not a query at all\n\
             +R(x) :- S(x).\n\
             !use nope\n\
             ?- Measurements(t, p, v).\n\
             !quit\n",
        );
        assert!(out.matches("err:").count() >= 3);
        assert!(out.contains("ok answers=6 version=0"));
    }
}
