//! A fixed worker-thread pool with a channel job queue.
//!
//! `std`-only: N `std::thread` workers drain a shared `mpsc` queue.  Query
//! jobs from every connection funnel through the pool, so the degree of
//! query parallelism is a single deployment knob (`--workers`) independent
//! of the number of connections, and all workers share one prepared-query
//! cache through the service.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool — see the module docs.
pub struct WorkerPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn a pool of `size` workers (at least one).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("ontodq-worker-{index}"))
                    .spawn(move || loop {
                        // Hold the queue lock only to pop; run the job after
                        // releasing it so workers drain in parallel.  A lock
                        // poisoned by a panicking *peer* only means the peer
                        // died mid-pop, which cannot corrupt the receiver —
                        // keep draining.
                        let job = match receiver
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .recv()
                        {
                            Ok(job) => job,
                            Err(_) => break, // all senders dropped: shut down
                        };
                        // A panicking job must not take the worker down with
                        // it: once every worker has died, all later submits
                        // would block forever.  The job's result sender is
                        // dropped by the unwind, so the submitter sees a
                        // RecvError instead of a hang.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a fire-and-forget job.
    pub fn execute<F>(&self, job: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.sender
            .as_ref()
            .expect("pool is live until dropped")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Enqueue `job` and return a receiver for its result; `recv()` on it
    /// blocks until a worker has run the job.
    pub fn submit<F, T>(&self, job: F) -> mpsc::Receiver<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        self.execute(move || {
            // The caller may have hung up; that only means nobody wants the
            // result.
            let _ = tx.send(job());
        });
        rx
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_results_come_back() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.size(), 4);
        let rx = pool.submit(|| 21 * 2);
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn many_jobs_across_workers_all_complete() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let receivers: Vec<_> = (0..64)
            .map(|i| {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    i
                })
            })
            .collect();
        let mut sum = 0usize;
        for rx in receivers {
            sum += rx.recv().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(sum, (0..64).sum());
    }

    #[test]
    fn zero_requested_workers_still_yields_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
        assert_eq!(pool.submit(|| 1).recv().unwrap(), 1);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = WorkerPool::new(2);
        let rx = pool.submit(|| "done");
        assert_eq!(rx.recv().unwrap(), "done");
        drop(pool); // must not hang
    }

    #[test]
    fn panicking_jobs_do_not_kill_workers() {
        let pool = WorkerPool::new(1);
        // The single worker survives more panics than there are workers…
        for _ in 0..3 {
            let rx = pool.submit(|| panic!("job blew up"));
            // …and the submitter observes a RecvError, not a hang.
            assert!(rx.recv().is_err());
        }
        // The pool still serves jobs afterwards.
        assert_eq!(pool.submit(|| 7).recv().unwrap(), 7);
    }
}
