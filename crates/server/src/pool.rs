//! A fixed worker-thread pool with a channel job queue.
//!
//! `std`-only: N `std::thread` workers drain a shared `mpsc` queue.  Query
//! jobs from every connection funnel through the pool, so the degree of
//! query parallelism is a single deployment knob (`--workers`) independent
//! of the number of connections, and all workers share one prepared-query
//! cache through the service.
//!
//! Panic containment: a job that panics is caught **at the job boundary**
//! (both in the worker loop and inside [`WorkerPool::submit`]'s wrapper), so
//! a poisoned query can never take a worker — let alone the whole pool —
//! down with it.  The submitter receives the panic payload as a
//! [`ServiceError::JobPanicked`] instead of a hang or a misleading
//! "pool shut down".

use crate::error::ServiceError;
use ontodq_obs::{Histogram, SharedClock};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size worker pool — see the module docs.
pub struct WorkerPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Jobs admitted but not yet finished (queued + running).
    pending: Arc<AtomicUsize>,
    /// High-watermark of `pending` over the pool's lifetime — the queue
    /// depth an operator should size `--max-queue` against.
    pending_peak: Arc<AtomicUsize>,
    /// Admission bound on `pending`; submissions beyond it are refused
    /// with a typed [`ServiceError::Overloaded`] instead of queueing
    /// without limit.
    bound: usize,
    /// Time jobs spend between admission and a worker picking them up.
    wait_histogram: Arc<Histogram>,
    /// The clock the wait histogram is measured on (monotonic by default;
    /// virtual under record/replay tests).
    clock: SharedClock,
}

/// Decrements the pending counter when the job finishes — or when the job
/// box is dropped unrun (channel closed, worker panic unwound past it), so
/// the admission count can never leak upward.
struct PendingGuard(Arc<AtomicUsize>);

impl Drop for PendingGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Render a caught panic payload as a message (the `&str`/`String` payloads
/// `panic!` produces; anything else becomes a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl WorkerPool {
    /// Spawn a pool of `size` workers (at least one) with no admission
    /// bound — every submission queues.
    pub fn new(size: usize) -> Self {
        Self::with_queue_bound(size, usize::MAX)
    }

    /// Spawn a pool of `size` workers (at least one) that refuses
    /// submissions once `bound` jobs are in flight (queued + running),
    /// reporting [`ServiceError::Overloaded`] so clients can back off
    /// instead of growing the queue without limit.
    pub fn with_queue_bound(size: usize, bound: usize) -> Self {
        let size = size.max(1);
        let bound = bound.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..size)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("ontodq-worker-{index}"))
                    .spawn(move || loop {
                        // Hold the queue lock only to pop; run the job after
                        // releasing it so workers drain in parallel.  A lock
                        // poisoned by a panicking *peer* only means the peer
                        // died mid-pop, which cannot corrupt the receiver —
                        // keep draining.
                        let job = match receiver
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner())
                            .recv()
                        {
                            Ok(job) => job,
                            Err(_) => break, // all senders dropped: shut down
                        };
                        // A panicking job must not take the worker down with
                        // it: once every worker has died, all later submits
                        // would error out.
                        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    })
                    // Invariant, not I/O: spawning fails only when the OS
                    // is out of threads at startup, where there is no
                    // server to degrade yet — aborting is the right call.
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            pending: Arc::new(AtomicUsize::new(0)),
            pending_peak: Arc::new(AtomicUsize::new(0)),
            bound,
            wait_histogram: Arc::new(Histogram::latency()),
            clock: ontodq_obs::monotonic(),
        }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently in flight (queued + running).
    pub fn queued(&self) -> usize {
        self.pending.load(Ordering::SeqCst)
    }

    /// The highest in-flight count ever observed (queued + running) — the
    /// queue-depth high-watermark surfaced by `!health` and `!metrics`.
    pub fn queued_peak(&self) -> usize {
        self.pending_peak.load(Ordering::SeqCst)
    }

    /// The admission bound (`usize::MAX` when unbounded).
    pub fn queue_bound(&self) -> usize {
        self.bound
    }

    /// The queue-wait histogram: microseconds between a job's admission and
    /// a worker picking it up.  Owned by the pool; adopt it into a
    /// [`ontodq_obs::Registry`] to expose it via `!metrics`.
    pub fn wait_histogram(&self) -> Arc<Histogram> {
        Arc::clone(&self.wait_histogram)
    }

    /// Enqueue a fire-and-forget job.
    ///
    /// # Errors
    /// [`ServiceError::PoolClosed`] when the queue is gone (the pool is
    /// being dropped) — reported, never panicked, so a session thread racing
    /// a shutdown degrades gracefully.  [`ServiceError::Overloaded`] when
    /// the in-flight count has reached the admission bound.
    pub fn execute<F>(&self, job: F) -> Result<(), ServiceError>
    where
        F: FnOnce() + Send + 'static,
    {
        let sender = self.sender.as_ref().ok_or(ServiceError::PoolClosed)?;
        // Atomically claim an admission slot; `fetch_update` closes the
        // check-then-increment race so concurrent submitters can never
        // overshoot the bound.
        match self
            .pending
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                if n >= self.bound {
                    None
                } else {
                    Some(n + 1)
                }
            }) {
            Ok(previous) => {
                self.pending_peak.fetch_max(previous + 1, Ordering::SeqCst);
            }
            Err(queued) => {
                return Err(ServiceError::Overloaded {
                    queued,
                    bound: self.bound,
                });
            }
        }
        let guard = PendingGuard(Arc::clone(&self.pending));
        let admitted_at = self.clock.now_micros();
        let clock = Arc::clone(&self.clock);
        let wait = Arc::clone(&self.wait_histogram);
        let wrapped: Job = Box::new(move || {
            let _release_slot = guard;
            wait.observe(clock.now_micros().saturating_sub(admitted_at));
            job();
        });
        // A failed send drops the boxed job, whose guard releases the slot.
        sender.send(wrapped).map_err(|_| ServiceError::PoolClosed)
    }

    /// Enqueue `job` and return a receiver for its outcome; `recv()` on it
    /// blocks until a worker has run the job.
    ///
    /// The outcome is `Ok(T)` on success, `Err(ServiceError::JobPanicked)`
    /// when the job panicked (the worker survives), or
    /// `Err(ServiceError::PoolClosed)` when the job could not be enqueued at
    /// all.  The receiver always yields exactly one value — a submitter can
    /// never hang on a panicked job.
    pub fn submit<F, T>(&self, job: F) -> mpsc::Receiver<Result<T, ServiceError>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let (tx, rx) = mpsc::channel();
        let job_tx = tx.clone();
        let enqueued = self.execute(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                .map_err(|payload| ServiceError::JobPanicked(panic_message(payload.as_ref())));
            // The caller may have hung up; that only means nobody wants the
            // result.
            let _ = job_tx.send(outcome);
        });
        if let Err(e) = enqueued {
            let _ = tx.send(Err(e));
        }
        rx
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn jobs_run_and_results_come_back() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.size(), 4);
        let rx = pool.submit(|| 21 * 2);
        assert_eq!(rx.recv().unwrap().unwrap(), 42);
    }

    #[test]
    fn many_jobs_across_workers_all_complete() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let receivers: Vec<_> = (0..64)
            .map(|i| {
                let counter = Arc::clone(&counter);
                pool.submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    i
                })
            })
            .collect();
        let mut sum = 0usize;
        for rx in receivers {
            sum += rx.recv().unwrap().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 64);
        assert_eq!(sum, (0..64).sum());
    }

    #[test]
    fn zero_requested_workers_still_yields_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
        assert_eq!(pool.submit(|| 1).recv().unwrap().unwrap(), 1);
    }

    #[test]
    fn drop_joins_workers_cleanly() {
        let pool = WorkerPool::new(2);
        let rx = pool.submit(|| "done");
        assert_eq!(rx.recv().unwrap().unwrap(), "done");
        drop(pool); // must not hang
    }

    /// The regression this module's panic containment pins down: a
    /// panicking job must surface as a [`ServiceError::JobPanicked`] to its
    /// submitter — not kill the worker, not hang the caller, not poison the
    /// pool for later jobs.
    #[test]
    fn panicking_jobs_report_the_panic_and_keep_the_worker_alive() {
        let pool = WorkerPool::new(1);
        // The single worker survives more panics than there are workers…
        for round in 0..3 {
            let rx = pool.submit(move || -> usize { panic!("job {round} blew up") });
            // …and the submitter observes the payload, not a hang.
            match rx.recv().unwrap() {
                Err(ServiceError::JobPanicked(msg)) => {
                    assert!(msg.contains("blew up"), "unexpected payload: {msg}")
                }
                other => panic!("expected JobPanicked, got {other:?}"),
            }
        }
        // The pool still serves jobs afterwards.
        assert_eq!(pool.submit(|| 7).recv().unwrap().unwrap(), 7);
    }

    /// Panics carrying non-`&str` payloads (e.g. `panic_any`) are reported
    /// with a placeholder message, never re-thrown at the submitter.
    #[test]
    fn non_string_panic_payloads_are_contained_too() {
        let pool = WorkerPool::new(1);
        let rx = pool.submit(|| -> usize { std::panic::panic_any(42usize) });
        assert!(matches!(
            rx.recv().unwrap(),
            Err(ServiceError::JobPanicked(msg)) if msg.contains("non-string")
        ));
        assert_eq!(pool.submit(|| 1).recv().unwrap().unwrap(), 1);
    }

    /// Admission control: once `bound` jobs are in flight the pool refuses
    /// further submissions with a typed overload error, and accepts again
    /// as soon as a slot frees up — including slots held by panicked jobs.
    #[test]
    fn overload_is_reported_and_clears_when_slots_free() {
        let pool = WorkerPool::with_queue_bound(1, 2);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        // Fill both slots: one running (blocked on the channel), one queued.
        let blockers: Vec<_> = (0..2)
            .map(|_| {
                let release_rx = Arc::clone(&release_rx);
                pool.submit(move || {
                    release_rx.lock().unwrap().recv().unwrap();
                })
            })
            .collect();
        // Wait until the worker has actually picked up the first job so the
        // in-flight count is stable at 2.
        while pool.queued() < 2 {
            std::thread::yield_now();
        }
        match pool.execute(|| {}) {
            Err(ServiceError::Overloaded { queued, bound }) => {
                assert_eq!(queued, 2);
                assert_eq!(bound, 2);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // Release both blockers; the pool must accept work again.
        release_tx.send(()).unwrap();
        release_tx.send(()).unwrap();
        for rx in blockers {
            rx.recv().unwrap().unwrap();
        }
        assert_eq!(pool.submit(|| 5).recv().unwrap().unwrap(), 5);
        // Panicked jobs release their slot too.
        let rx = pool.submit(|| -> usize { panic!("slot must still free") });
        assert!(matches!(
            rx.recv().unwrap(),
            Err(ServiceError::JobPanicked(_))
        ));
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        assert_eq!(pool.queued(), 0);
    }

    /// Interleaved good and panicking jobs across several workers: every
    /// good job completes, every bad one reports.
    #[test]
    fn mixed_workloads_are_fully_accounted_for() {
        let pool = WorkerPool::new(4);
        let receivers: Vec<_> = (0..32)
            .map(|i| {
                pool.submit(move || {
                    if i % 3 == 0 {
                        panic!("planned failure {i}");
                    }
                    i
                })
            })
            .collect();
        let (mut ok, mut panicked) = (0, 0);
        for rx in receivers {
            match rx.recv().unwrap() {
                Ok(_) => ok += 1,
                Err(ServiceError::JobPanicked(_)) => panicked += 1,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert_eq!(ok, 21);
        assert_eq!(panicked, 11);
    }
}
