//! # ontodq-server
//!
//! A concurrent quality-assessment **service** over the `ontodq` pipeline:
//! the paper's long-lived context ontology, served.
//!
//! The batch pipeline (`ontodq-core`) re-chases from scratch on every call;
//! this crate turns the chased contextual instance into an *incrementally
//! maintained, served* artifact:
//!
//! * [`QualityService`] registers contexts and keeps each context's chased
//!   instance as an immutable [`Snapshot`] behind an `Arc` — reads clone the
//!   `Arc` and evaluate lock-free, writes fold fact batches in with an
//!   **incremental re-chase** ([`ontodq_chase::ChaseEngine::resume`], which
//!   resumes from the per-rule epoch watermarks of PR 1's delta machinery)
//!   and atomically swap the snapshot (snapshot isolation: readers never see
//!   a half-applied batch, writers never block readers);
//! * a [`QueryCache`] shared across the worker pool memoizes parsed and
//!   quality-rewritten queries per `(context, query)` and their answers per
//!   snapshot version (epoch-based invalidation);
//! * a fixed [`WorkerPool`] (`std::thread` + channel job queue) runs query
//!   evaluation, so parallelism is a deployment knob independent of the
//!   number of connections;
//! * a thread-per-connection TCP / stdin **line protocol**
//!   ([`serve_session`]: `+fact.`, `?- body.`, `?q- body.`, `?d- body.`,
//!   `!commands`) exposes the whole paper pipeline — contexts, chase,
//!   certain answers, quality versions, demand-driven magic-set answering —
//!   as a long-running server (`ontodq-server` binary; see
//!   `docs/protocol.md`);
//! * optional **durability** through `ontodq-store`
//!   ([`QualityService::with_store`], `--data-dir`): applied batches are
//!   appended to a CRC-checked write-ahead log inside the writer's flush
//!   path, `!save` snapshots every context (instance + chased state +
//!   per-rule epoch watermarks) and compacts the log, and startup recovery
//!   ([`QualityService::register_recovered`]) restores snapshot + WAL tail
//!   through the incremental chase instead of re-chasing from scratch (see
//!   `docs/persistence.md`).
//!
//! Everything is `std`-only: no external crates.
//!
//! ```
//! use ontodq_core::scenarios;
//! use ontodq_mdm::fixtures::hospital;
//! use ontodq_server::QualityService;
//!
//! let service = QualityService::new();
//! service
//!     .register_context(
//!         "hospital",
//!         scenarios::hospital_context(),
//!         hospital::measurements_database(),
//!     )
//!     .unwrap();
//!
//! // Lock-free read: Tom Waits' quality measurements (Table II).
//! let response = service
//!     .quality_answers("hospital", "Measurements(t, p, v), p = \"Tom Waits\"")
//!     .unwrap();
//! assert_eq!(response.answers.len(), 2);
//!
//! // A write batch: incremental re-chase + atomic snapshot swap.
//! use ontodq_relational::{Tuple, Value};
//! let report = service
//!     .insert_facts(
//!         "hospital",
//!         vec![(
//!             "Measurements".to_string(),
//!             Tuple::new(vec![
//!                 Value::parse_time("Sep/6-11:05").unwrap(),
//!                 Value::str("Lou Reed"),
//!                 Value::double(39.9),
//!             ]),
//!         )],
//!     )
//!     .unwrap();
//! assert_eq!(report.version, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Session and writer paths must degrade through typed errors, never panic
// on a fallible operation; tests are free to unwrap.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cache;
pub mod error;
pub mod pool;
pub mod protocol;
pub mod service;
pub mod snapshot;

pub use cache::{parse_query_text, CacheStats, QueryCache, QueryKind};
pub use error::ServiceError;
pub use pool::WorkerPool;
pub use protocol::{
    parse_facts, parse_request, parse_retractions, serve_session, serve_session_with, Request,
    SessionConfig,
};
pub use service::{
    Health, HealthReport, PersistReport, QualityService, QueryResponse, RecoverySummary,
    RetractReport, RetractionCounters, UpdateReport,
};
pub use snapshot::Snapshot;

#[cfg(test)]
mod send_sync_audit {
    use super::*;

    /// The snapshot-sharing design rests on these types crossing threads;
    /// compile-time assertions so a regression (an `Rc`, a raw pointer, a
    /// non-`Sync` cell) fails loudly here rather than deep in the server.
    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn service_types_are_send_and_sync() {
        assert_send_sync::<QualityService>();
        assert_send_sync::<Snapshot>();
        assert_send_sync::<QueryCache>();
        assert_send_sync::<WorkerPool>();
        assert_send_sync::<ServiceError>();
        assert_send_sync::<ontodq_relational::Database>();
        assert_send_sync::<ontodq_qa::AnswerSet>();
        assert_send_sync::<ontodq_qa::ConjunctiveQuery>();
        assert_send_sync::<ontodq_chase::ChaseState>();
        assert_send_sync::<ontodq_core::ResumableAssessment>();
    }
}
