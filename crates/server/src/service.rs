//! The concurrent quality-assessment service.

use crate::cache::{CacheStats, QueryCache, QueryKind};
use crate::error::ServiceError;
use crate::pool::WorkerPool;
use crate::snapshot::Snapshot;
use ontodq_core::{Context, ContextBuilder, ResumableAssessment};
use ontodq_obs::{Counter, Histogram, Registry, SharedClock, SpanLog, SpanRecord};
use ontodq_qa::AnswerSet;
use ontodq_relational::{Database, Tuple};
use ontodq_store::{BatchKind, ContextImage, Recovery, Store, WalStats};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// One registered context: an immutable snapshot slot for readers and a
/// serialized writer state.
struct ContextEntry {
    /// The context definition (immutable after registration; used for
    /// quality rewriting).
    context: Context,
    /// The compiled Datalog± program (immutable after registration; shared
    /// into every snapshot for the demand-driven path).
    program: Arc<ontodq_datalog::Program>,
    /// The current snapshot.  Readers hold this lock only long enough to
    /// clone the `Arc`; the writer only to swap it.  All query evaluation
    /// happens on the immutable snapshot outside any lock.
    snapshot: RwLock<Arc<Snapshot>>,
    /// The resumable chase state.  One writer at a time per context; readers
    /// never touch it.
    writer: Mutex<ResumableAssessment>,
    /// The static-analysis report of the compiled program (immutable after
    /// registration, like the program itself) — what `!check` prints and
    /// what the lint gauges sample, without touching the writer lock.
    lint: ontodq_datalog::LintReport,
}

impl ContextEntry {
    fn snapshot(&self) -> Arc<Snapshot> {
        // A poisoned slot only means a writer panicked somewhere between
        // building a snapshot and swapping it; the stored Arc is always a
        // complete snapshot (the swap is a single assignment), so readers
        // recover the value instead of propagating the panic.
        self.snapshot
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .clone()
    }
}

/// The service's write-availability state — see
/// [`QualityService::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// Updates and queries are both served.
    Healthy,
    /// A durability failure poisoned the write path: queries are still
    /// served from the last good in-memory snapshots, updates are refused
    /// with [`ServiceError::Degraded`] until a recovery probe succeeds.
    Degraded,
    /// A recovery probe (snapshot-all + WAL compaction) is in flight;
    /// writes are refused until it resolves one way or the other.
    Recovering,
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Health::Healthy => "healthy",
            Health::Degraded => "degraded",
            Health::Recovering => "recovering",
        })
    }
}

/// Point-in-time health of the service (`!health`).
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Current state.
    pub state: Health,
    /// Why the service degraded (`None` when healthy).
    pub reason: Option<String>,
    /// Writes refused while degraded/recovering, process lifetime.
    pub refused_writes: u64,
    /// Recovery probes attempted, process lifetime.
    pub probes: u64,
}

/// Mutable health-machine state behind the service's health lock.
struct HealthState {
    state: Health,
    reason: Option<String>,
    /// When the last failure or probe happened, on the service clock — the
    /// backoff reference point (a reading of [`QualityService`]'s injected
    /// clock, so record/replay tests control the backoff deterministically).
    last_probe_micros: Option<u64>,
    /// Minimum spacing between recovery probes; writes arriving inside the
    /// window are refused without re-touching the store.
    probe_interval: Duration,
    refused_writes: u64,
    probes: u64,
}

impl HealthState {
    fn new() -> Self {
        Self {
            state: Health::Healthy,
            reason: None,
            last_probe_micros: None,
            probe_interval: Duration::from_secs(2),
            refused_writes: 0,
            probes: 0,
        }
    }

    fn degraded_reason(&self) -> String {
        self.reason
            .clone()
            .unwrap_or_else(|| "durability failure".to_string())
    }
}

/// What an applied update batch did.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// The snapshot version the batch produced.
    pub version: u64,
    /// Genuinely new extensional tuples in the batch (duplicates ignored).
    pub new_facts: usize,
    /// Tuples derived by the incremental re-chase.
    pub derived: usize,
    /// EGD/constraint violations observed by this step.
    pub violations: usize,
    /// Wall-clock time of the incremental re-chase + snapshot swap.
    pub elapsed: Duration,
}

/// What an applied retraction batch did (delete-and-rederive).
#[derive(Debug, Clone)]
pub struct RetractReport {
    /// The snapshot version the retraction produced.
    pub version: u64,
    /// Concrete facts the batch asked to retract (after conditional-delete
    /// expansion; requests for absent facts are counted here too).
    pub requested: usize,
    /// Extensional facts actually removed from the base.
    pub retracted: usize,
    /// Derived tuples condemned by the cascade (0 on the EGD fallback
    /// path, which rebuilds instead of condemning individually).
    pub cascaded: usize,
    /// Tuples re-derived from surviving supports.
    pub rederived: usize,
    /// EGD/constraint violations observed by the re-derivation step.
    pub violations: usize,
    /// Wall-clock time of expansion + DRed + snapshot swap.
    pub elapsed: Duration,
}

/// Process-lifetime retraction counters, surfaced by `!stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetractionCounters {
    /// Concrete retraction requests applied (expanded conditional deletes
    /// included).
    pub retractions: u64,
    /// Derived tuples condemned by DRed cascades.
    pub cascaded_deletes: u64,
    /// Tuples re-derived from alternative supports after cascades.
    pub rederived: u64,
}

/// The answers to one query, with their provenance.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The snapshot version the answers are valid for.
    pub version: u64,
    /// The certain answers.
    pub answers: Arc<AnswerSet>,
    /// Whether the answers came from the prepared-query cache.
    pub cached: bool,
}

/// How one context came back at startup — see
/// [`QualityService::register_recovered`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoverySummary {
    /// Whether a snapshot was loaded (restart skipped the initial chase).
    pub restored_from_snapshot: bool,
    /// WAL-tail batches replayed through the incremental path.
    pub replayed_batches: usize,
    /// The snapshot version published after recovery.
    pub version: u64,
}

/// What [`QualityService::persist_all`] did.
#[derive(Debug, Clone, Copy, Default)]
pub struct PersistReport {
    /// Contexts snapshotted.
    pub contexts: usize,
    /// WAL segment files deleted by the post-snapshot compaction.
    pub segments_removed: usize,
}

/// A concurrent, snapshot-isolated quality-assessment service.
///
/// Each registered context keeps its fully-chased instance as an immutable
/// [`Snapshot`] behind an `Arc`.  Reads clone the `Arc` and evaluate with no
/// further synchronization; writes go through a per-context writer lock,
/// fold the batch in with an **incremental re-chase**
/// ([`ontodq_core::ResumableAssessment`], resuming from the stored epoch
/// watermarks instead of re-chasing from scratch) and atomically swap the
/// snapshot.  Readers therefore never observe a half-applied batch, and a
/// long chase never blocks queries — they keep hitting the previous
/// snapshot until the swap.
///
/// A shared [`QueryCache`] memoizes parsed/rewritten queries per
/// `(context, query)` and their answers per snapshot version, so repeated
/// queries between updates cost a map lookup.
pub struct QualityService {
    contexts: RwLock<BTreeMap<String, Arc<ContextEntry>>>,
    cache: QueryCache,
    /// The durable store, when the server was started with `--data-dir`.
    /// Lock order everywhere: context map (read) → writer lock(s) in name
    /// order → store — `insert_facts` takes one writer then the store,
    /// `persist_all` takes every writer then the store, so the order is
    /// consistent and deadlock-free.
    store: Option<Arc<Mutex<Store>>>,
    /// The service-wide metric registry (`!metrics`): every layer's
    /// counters, gauges and latency histograms, adopted or created here.
    /// Per-service (not process-global) so concurrently running services
    /// — notably parallel tests — never share counters.
    registry: Registry,
    /// The clock every service-side duration is measured on.  Monotonic in
    /// production; a virtual clock under record/replay tests, which makes
    /// the `micros=` response fields deterministic.
    clock: SharedClock,
    /// Process-lifetime retraction counters (`!stats`): requests applied,
    /// cascade condemnations, re-derivations.  Recovery replay counts too —
    /// the counters describe work this process performed.  Registered in
    /// `registry`, read by `retraction_stats`.
    retractions: Arc<Counter>,
    cascaded_deletes: Arc<Counter>,
    rederived: Arc<Counter>,
    /// Apply-path latency histograms (insert / retract batches) and the
    /// DRed phase breakdown (cascade / delete / re-derive).
    insert_micros: Arc<Histogram>,
    retract_micros: Arc<Histogram>,
    dred_cascade_micros: Arc<Histogram>,
    dred_delete_micros: Arc<Histogram>,
    dred_rederive_micros: Arc<Histogram>,
    /// The slow-query ring (`!slow`): queries over the threshold, newest
    /// last, bounded so an unattended server cannot grow it.
    slow_log: SpanLog,
    /// Slow-query threshold in microseconds; 0 disables the log.
    slow_threshold_micros: AtomicU64,
    slow_queries_total: Arc<Counter>,
    /// Chase runs (initial chase or batch resume) executed for a context
    /// whose program carries no termination certificate.
    chase_uncertified: Arc<Counter>,
    /// The health state machine: `Healthy → Degraded (read-only) →
    /// Recovering → Healthy|Degraded`.  Store-wide, because a poisoned WAL
    /// refuses appends for every context.
    health: Mutex<HealthState>,
}

impl QualityService {
    /// An empty, in-memory-only service (no durability), timed on the
    /// monotonic clock.
    pub fn new() -> Self {
        Self::with_clock(ontodq_obs::monotonic())
    }

    /// An empty, in-memory-only service timed on `clock` — the seam
    /// record/replay tests use to freeze every `micros=` response field.
    pub fn with_clock(clock: SharedClock) -> Self {
        let registry = Registry::new();
        let cache = QueryCache::new();
        cache.register_into(&registry);
        let retractions = registry.counter(
            "ontodq_retractions_total",
            "Concrete retraction requests applied (expanded conditional deletes included).",
            &[],
        );
        let cascaded_deletes = registry.counter(
            "ontodq_cascaded_deletes_total",
            "Derived tuples condemned by DRed cascades.",
            &[],
        );
        let rederived = registry.counter(
            "ontodq_rederived_total",
            "Tuples re-derived from alternative supports after cascades.",
            &[],
        );
        let insert_micros = registry.histogram(
            "ontodq_apply_micros",
            "Apply-path latency of one batch (incremental re-chase + snapshot swap).",
            &[("op", "insert")],
        );
        let retract_micros = registry.histogram(
            "ontodq_apply_micros",
            "Apply-path latency of one batch (incremental re-chase + snapshot swap).",
            &[("op", "retract")],
        );
        let dred_cascade_micros = registry.histogram(
            "ontodq_dred_phase_micros",
            "Delete-and-rederive phase latency per retraction batch.",
            &[("phase", "cascade")],
        );
        let dred_delete_micros = registry.histogram(
            "ontodq_dred_phase_micros",
            "Delete-and-rederive phase latency per retraction batch.",
            &[("phase", "delete")],
        );
        let dred_rederive_micros = registry.histogram(
            "ontodq_dred_phase_micros",
            "Delete-and-rederive phase latency per retraction batch.",
            &[("phase", "rederive")],
        );
        let slow_queries_total = registry.counter(
            "ontodq_slow_queries_total",
            "Queries whose end-to-end latency crossed --slow-query-micros.",
            &[],
        );
        let chase_uncertified = registry.counter(
            "ontodq_chase_uncertified_total",
            "Chase runs executed without a termination certificate (program not weakly acyclic).",
            &[],
        );
        Self {
            contexts: RwLock::new(BTreeMap::new()),
            cache,
            store: None,
            registry,
            clock,
            retractions,
            cascaded_deletes,
            rederived,
            insert_micros,
            retract_micros,
            dred_cascade_micros,
            dred_delete_micros,
            dred_rederive_micros,
            slow_log: SpanLog::new(128),
            slow_threshold_micros: AtomicU64::new(0),
            slow_queries_total,
            chase_uncertified,
            health: Mutex::new(HealthState::new()),
        }
    }

    /// Locked access to the context map for readers; a map poisoned by a
    /// panicking registration is still structurally valid (entries are
    /// inserted fully built), so recover the guard instead of cascading
    /// the panic into every session.
    fn read_contexts(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Arc<ContextEntry>>> {
        self.contexts
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn write_contexts(
        &self,
    ) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Arc<ContextEntry>>> {
        self.contexts
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The health lock never protects data a panic could half-update (all
    /// fields are plain scalars assigned atomically), so recover it.
    fn lock_health(&self) -> std::sync::MutexGuard<'_, HealthState> {
        self.health
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// An empty service whose applied batches are appended to `store`'s
    /// write-ahead log and whose contexts can be snapshotted with
    /// [`QualityService::persist_all`].
    pub fn with_store(store: Arc<Mutex<Store>>) -> Self {
        Self::with_store_and_clock(store, ontodq_obs::monotonic())
    }

    /// [`QualityService::with_store`] timed on `clock`: the store's
    /// durability clock is re-seated onto the same seam and its WAL/snapshot
    /// histograms are adopted into the service registry, so one `!metrics`
    /// scrape covers the storage layer too.
    pub fn with_store_and_clock(store: Arc<Mutex<Store>>, clock: SharedClock) -> Self {
        let service = Self::with_clock(Arc::clone(&clock));
        {
            // Counter adoption only — a freshly opened store's lock cannot
            // be poisoned, and a poisoned one is recovered like everywhere
            // else (the metrics handles are plain Arcs).
            let mut guard = store
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            guard.set_clock(clock);
            let metrics = guard.metrics();
            service.registry.adopt_histogram(
                "ontodq_wal_write_micros",
                "WAL record-group write latency (buffer to kernel).",
                &[],
                metrics.wal_write,
            );
            service.registry.adopt_histogram(
                "ontodq_wal_fsync_micros",
                "WAL fsync latency per acked append.",
                &[],
                metrics.wal_fsync,
            );
            service.registry.adopt_histogram(
                "ontodq_snapshot_write_micros",
                "Context snapshot write latency (serialize + temp + rename).",
                &[],
                metrics.snapshot_write,
            );
        }
        Self {
            store: Some(store),
            ..service
        }
    }

    /// `true` when a durable store is attached.
    pub fn has_store(&self) -> bool {
        self.store.is_some()
    }

    /// Durability counters of the attached store (`None` without one).
    /// Counters are plain scalars, so a store lock poisoned by a panicked
    /// writer is recovered for this read-only peek.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.store.as_ref().map(|store| {
            store
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                .wal_stats()
        })
    }

    /// Fsync the store's active WAL segment, best-effort — the
    /// clean-shutdown path (appends already fsync themselves, so this only
    /// matters for durability of the final group on exotic filesystems).
    /// Failures here are logged and swallowed: the session is exiting and
    /// has nobody to report to, and every acked batch already fsynced.
    pub fn sync_store(&self) {
        if let Some(store) = &self.store {
            match store.lock() {
                Ok(mut store) => {
                    if let Err(e) = store.sync() {
                        eprintln!("wal sync failed: {e}");
                    }
                }
                Err(_) => eprintln!("wal sync skipped: store lock poisoned"),
            }
        }
    }

    /// The current health of the service — see [`Health`].
    pub fn health(&self) -> HealthReport {
        let h = self.lock_health();
        HealthReport {
            state: h.state,
            reason: h.reason.clone(),
            refused_writes: h.refused_writes,
            probes: h.probes,
        }
    }

    /// Set the minimum spacing between recovery probes (default 2s).
    /// Tests set `Duration::ZERO` so the first write after a fault clears
    /// probes immediately.
    pub fn set_probe_interval(&self, interval: Duration) {
        self.lock_health().probe_interval = interval;
    }

    /// Enter read-only degradation, remembering why.  The backoff clock
    /// restarts so the next write inside the probe window is refused
    /// without touching the store again.
    fn degrade(&self, reason: &str) {
        let now = self.clock.now_micros();
        let mut h = self.lock_health();
        h.state = Health::Degraded;
        h.reason = Some(reason.to_string());
        h.last_probe_micros = Some(now);
    }

    fn mark_healthy(&self) {
        let mut h = self.lock_health();
        h.state = Health::Healthy;
        h.reason = None;
    }

    /// Gate on the write path: healthy services pass for free; degraded
    /// ones either refuse with [`ServiceError::Degraded`] (inside the probe
    /// backoff window, or while another writer's probe is in flight) or run
    /// one recovery probe — a full [`QualityService::persist_all`], whose
    /// fresh snapshots supersede the poisoned WAL and whose compaction
    /// clears the poison.  A successful probe returns the service to
    /// [`Health::Healthy`] and lets the gated write proceed.
    fn ensure_writable(&self) -> Result<(), ServiceError> {
        {
            let now = self.clock.now_micros();
            let mut h = self.lock_health();
            match h.state {
                Health::Healthy => return Ok(()),
                Health::Recovering => {
                    h.refused_writes += 1;
                    return Err(ServiceError::Degraded(h.degraded_reason()));
                }
                Health::Degraded => {
                    let interval_micros =
                        u64::try_from(h.probe_interval.as_micros()).unwrap_or(u64::MAX);
                    let due = h
                        .last_probe_micros
                        .is_none_or(|at| now.saturating_sub(at) >= interval_micros);
                    if !due {
                        h.refused_writes += 1;
                        return Err(ServiceError::Degraded(h.degraded_reason()));
                    }
                    h.state = Health::Recovering;
                    h.last_probe_micros = Some(now);
                    h.probes += 1;
                }
            }
        }
        // Probe outside the health lock — it snapshots every context and
        // can be slow.  Concurrent writers see `Recovering` and refuse.
        match self.persist_all() {
            Ok(_) => Ok(()), // persist_all marked the service healthy
            Err(e) => {
                let reason = format!("recovery probe failed: {e}");
                let now = self.clock.now_micros();
                let mut h = self.lock_health();
                h.state = Health::Degraded;
                h.reason = Some(reason.clone());
                h.last_probe_micros = Some(now);
                h.refused_writes += 1;
                Err(ServiceError::Degraded(reason))
            }
        }
    }

    /// Register a context under `name` with its initial instance under
    /// assessment; runs the initial full chase and publishes snapshot
    /// version 0.
    ///
    /// The initial instance is **not** written to the WAL: registration is
    /// deterministic from the server's configuration, so durability begins
    /// with the first applied batch (and with the first `!save` snapshot).
    ///
    /// # Errors
    /// [`ServiceError::DuplicateContext`] when the name is taken.
    pub fn register_context(
        &self,
        name: &str,
        context: Context,
        instance: Database,
    ) -> Result<(), ServiceError> {
        // Fast duplicate probe before paying for the initial chase.  The
        // authoritative check is repeated under the write lock below (two
        // racing registrations may both pass the probe; one loses there).
        if self.read_contexts().contains_key(name) {
            return Err(ServiceError::DuplicateContext(name.to_string()));
        }
        // Static analysis gates the chase: a program with error-severity
        // diagnostics (unsafe rules, arity clashes, …) is rejected before
        // any chase work runs, carrying the full report back to the caller.
        let report = ontodq_core::lint_context(&context, &instance);
        if report.error_count() > 0 {
            return Err(ontodq_core::ContextError::Rejected(report.diagnostics).into());
        }
        // Chase outside the map lock: registration of a large context must
        // not stall queries against other contexts.
        let writer = ResumableAssessment::with_options_and_clock(
            context.clone(),
            instance,
            &ontodq_core::AssessmentOptions::default(),
            Arc::clone(&self.clock),
        );
        self.register_writer(name, context, writer)
    }

    /// Register a context, recovering its durable state from `recovery`
    /// when present: a snapshot restores the chased instance and per-rule
    /// watermarks **without re-chasing**, then the WAL tail is replayed
    /// batch by batch through the incremental path.  Contexts with no
    /// durable state fall back to a plain registration over
    /// `initial_instance` (plus a full-WAL replay when only log records
    /// exist — the crash-before-first-snapshot case).
    ///
    /// Replayed batches are **not** re-appended to the WAL (they are
    /// already in it).
    pub fn register_recovered(
        &self,
        name: &str,
        context: Context,
        initial_instance: Database,
        recovery: &mut Recovery,
    ) -> Result<RecoverySummary, ServiceError> {
        if self.read_contexts().contains_key(name) {
            return Err(ServiceError::DuplicateContext(name.to_string()));
        }
        let snapshot = recovery.snapshots.remove(name);
        let tail = recovery.tails.remove(name).unwrap_or_default();
        let mut summary = RecoverySummary {
            restored_from_snapshot: snapshot.is_some(),
            ..RecoverySummary::default()
        };
        let mut writer = match snapshot {
            Some(persisted) => {
                let expected_fingerprint = persisted.program_fingerprint;
                let writer = ResumableAssessment::restore_with_clock(
                    context.clone(),
                    persisted.instance,
                    persisted.state,
                    persisted.version,
                    Arc::clone(&self.clock),
                );
                // The persisted watermarks are positional: they are only
                // meaningful for the rule set they were chased with.  A
                // changed context definition must fail loudly here — a
                // rule silently inheriting its predecessor's floor would
                // skip derivations with no error anywhere.
                if writer.program_fingerprint() != expected_fingerprint {
                    return Err(ServiceError::Store(format!(
                        "snapshot for context '{name}' was taken with a different rule set \
                         (context definition changed); wipe the data dir or restore the \
                         original definition"
                    )));
                }
                writer
            }
            None => ResumableAssessment::with_options_and_clock(
                context.clone(),
                initial_instance,
                &ontodq_core::AssessmentOptions::default(),
                Arc::clone(&self.clock),
            ),
        };
        for batch in tail {
            match batch.kind {
                BatchKind::Insert => {
                    writer.insert_batch(batch.facts).map_err(|e| {
                        ServiceError::Store(format!("replaying batch {}: {e}", batch.seq))
                    })?;
                }
                BatchKind::Retract => {
                    // Replay through the same delete-and-rederive path the
                    // live server used; the logged facts are already the
                    // expanded concrete deletions, so replay is
                    // deterministic even for conditional deletes.
                    let result = writer.retract_batch(batch.facts);
                    self.note_retraction(&result.stats);
                }
            }
            if writer.batches_applied() != batch.seq {
                return Err(ServiceError::Store(format!(
                    "WAL sequence gap for context '{name}': replayed batch {} as version {}",
                    batch.seq,
                    writer.batches_applied()
                )));
            }
            summary.replayed_batches += 1;
        }
        summary.version = writer.batches_applied();
        self.register_writer(name, context, writer)?;
        // Claim the name: once every recovered context is claimed, the
        // store allows `!save` to compact the log again (compaction is
        // refused while unclaimed durable state lives only in the WAL).
        if let Some(store) = &self.store {
            store
                .lock()
                .map_err(|_| {
                    ServiceError::Internal(
                        "store lock poisoned while claiming a recovered context".to_string(),
                    )
                })?
                .claim(name);
        }
        Ok(summary)
    }

    /// Publish an already-built writer as a registered context.
    fn register_writer(
        &self,
        name: &str,
        context: Context,
        writer: ResumableAssessment,
    ) -> Result<(), ServiceError> {
        let program = Arc::new(writer.program().clone());
        let snapshot = Self::build_snapshot(
            name,
            writer.batches_applied(),
            &writer,
            Arc::clone(&program),
            writer.contextual().clone(),
        )?;
        let lint = writer.lint_report().clone();
        if !lint.certificate.terminating {
            // The writer's construction chase (or snapshot restore) ran
            // without a termination certificate.
            self.chase_uncertified.inc();
        }
        let entry = Arc::new(ContextEntry {
            context,
            program,
            snapshot: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(writer),
            lint,
        });
        let mut map = self.write_contexts();
        if map.contains_key(name) {
            return Err(ServiceError::DuplicateContext(name.to_string()));
        }
        map.insert(name.to_string(), entry);
        Ok(())
    }

    /// Snapshot **every** registered context to the store, then compact the
    /// WAL (the snapshots supersede all logged batches).  All writer locks
    /// are held for the duration, so no batch can slip into the log between
    /// the last snapshot and the compaction — the pause is the price of the
    /// `!save` checkpoint, readers keep answering throughout.
    pub fn persist_all(&self) -> Result<PersistReport, ServiceError> {
        let store = self.store.as_ref().ok_or(ServiceError::NoStore)?;
        // Hold the map read lock for the whole checkpoint: a context
        // registered mid-save could otherwise apply (and log) a batch that
        // the compaction below would delete.
        let map = self.read_contexts();
        let mut guards: Vec<(&String, std::sync::MutexGuard<'_, ResumableAssessment>)> =
            Vec::with_capacity(map.len());
        for (name, entry) in map.iter() {
            // A writer lock poisoned by a panicked batch means that
            // context's chase state may be mid-mutation — snapshotting it
            // would persist the inconsistency, so the checkpoint refuses.
            let guard = entry.writer.lock().map_err(|_| {
                ServiceError::Internal(format!(
                    "writer for context '{name}' poisoned by a panicked update"
                ))
            })?;
            guards.push((name, guard));
        }
        let mut store = store.lock().map_err(|_| {
            ServiceError::Internal("store lock poisoned by a panicked writer".to_string())
        })?;
        for (name, writer) in &guards {
            // Borrowed image: no deep clone of the instance or chase state
            // while every writer is blocked on the checkpoint.
            store
                .save_snapshot(&ContextImage {
                    name,
                    version: writer.batches_applied(),
                    program_fingerprint: writer.program_fingerprint(),
                    instance: writer.instance(),
                    state: writer.state(),
                })
                .map_err(|e| ServiceError::Store(e.to_string()))?;
        }
        let segments_removed = store
            .compact()
            .map_err(|e| ServiceError::Store(e.to_string()))?;
        // Every context is snapshotted and the log is compacted: whatever
        // durability failure degraded the service is superseded.
        self.mark_healthy();
        Ok(PersistReport {
            contexts: guards.len(),
            segments_removed,
        })
    }

    /// Build and register a context in one step, surfacing
    /// [`ontodq_core::ContextError`]s (malformed rule texts, …) as
    /// [`ServiceError::Context`] instead of panicking — the fallible
    /// registration path for caller-supplied context definitions.
    pub fn register_built(
        &self,
        name: &str,
        builder: ContextBuilder,
        instance: Database,
    ) -> Result<(), ServiceError> {
        let context = builder.build()?;
        self.register_context(name, context, instance)
    }

    /// The names of all registered contexts.
    pub fn context_names(&self) -> Vec<String> {
        self.read_contexts().keys().cloned().collect()
    }

    /// The current snapshot of `context` — the entry point for lock-free
    /// read paths that want to run many queries against one consistent
    /// version.
    pub fn snapshot(&self, context: &str) -> Result<Arc<Snapshot>, ServiceError> {
        Ok(self.entry(context)?.snapshot())
    }

    /// Apply a batch of facts to `context`: facts for mapped original
    /// relations update the instance under assessment and its contextual
    /// copy, everything else lands in the contextual instance; then an
    /// incremental re-chase brings the instance back to a universal model
    /// and the new snapshot is swapped in atomically.
    ///
    /// With a store attached, the **validated** batch is appended to the
    /// write-ahead log and fsynced before the new snapshot is published —
    /// under the writer lock, so log order equals application order.  A
    /// rejected batch is never logged.  If the append itself fails, the
    /// in-memory application stands but the error is surfaced as
    /// [`ServiceError::Store`]: the batch (and, until the next successful
    /// `!save`, every later one) is **not durable** — the store poisons the
    /// log rather than writing a gapped or torn sequence, and a `!save`
    /// checkpoint restores durability by superseding the log with fresh
    /// snapshots.  A failed append also flips the service to
    /// [`Health::Degraded`]: later writes are refused with
    /// [`ServiceError::Degraded`] until a recovery probe (an automatic
    /// `persist_all`, rate-limited by the probe interval) succeeds.
    pub fn insert_facts(
        &self,
        context: &str,
        facts: Vec<(String, Tuple)>,
    ) -> Result<UpdateReport, ServiceError> {
        self.ensure_writable()?;
        let entry = self.entry(context)?;
        let start = self.clock.now_micros();
        let mut writer = entry.writer.lock().map_err(|_| {
            ServiceError::Internal(format!(
                "writer for context '{context}' poisoned by a panicked update"
            ))
        })?;
        let outcome = writer.insert_batch(facts.iter().cloned())?;
        if !entry.lint.certificate.terminating {
            // This batch's incremental re-chase ran uncertified.
            self.chase_uncertified.inc();
        }
        let version = writer.batches_applied();
        let wal_error = self.append_to_wal(|store| store.append_batch(context, version, &facts));
        let derived = outcome.chase.stats.tuples_added;
        let violations = outcome.chase.violations.len();
        let snapshot = Self::build_snapshot(
            context,
            version,
            &writer,
            Arc::clone(&entry.program),
            outcome.chase.database,
        )?;
        // Swap even when the WAL append failed: the writer state already
        // advanced, and readers must keep seeing a snapshot consistent with
        // it — only durability is in doubt, and that is what the error says.
        // The slot lock is recovered on poison for the same reason as in
        // `ContextEntry::snapshot`: the swap is a single assignment.
        *entry
            .snapshot
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Arc::new(snapshot);
        // Release the writer lock only after the swap so versions are
        // published in order.
        drop(writer);
        let elapsed_micros = self.clock.now_micros().saturating_sub(start);
        self.insert_micros.observe(elapsed_micros);
        if let Some(reason) = wal_error {
            self.degrade(&reason);
            return Err(ServiceError::Store(reason));
        }
        Ok(UpdateReport {
            version,
            new_facts: outcome.new_facts,
            derived,
            violations,
            elapsed: Duration::from_micros(elapsed_micros),
        })
    }

    /// Apply a batch of retraction rules to `context`: ground retractions
    /// and conditional deletes are expanded against the current chased
    /// instance into concrete facts, those facts are deleted from the
    /// extensional base, and their derived consequences are withdrawn with
    /// **delete-and-rederive** (cascade the over-approximated closure, then
    /// re-derive survivors from alternative supports) before the new
    /// snapshot is swapped in atomically.  Version-keyed query memos
    /// invalidate by construction, exactly as for inserts.
    ///
    /// With a store attached, the **expanded** deletions are appended to
    /// the write-ahead log as a retraction record sharing the per-context
    /// sequence with insert batches, so recovery replays the interleaving
    /// in application order.  A failed append is surfaced as
    /// [`ServiceError::Store`] with the same durability semantics as
    /// [`QualityService::insert_facts`]: the in-memory application stands.
    pub fn retract_facts(
        &self,
        context: &str,
        retractions: &ontodq_datalog::Program,
    ) -> Result<RetractReport, ServiceError> {
        self.ensure_writable()?;
        let entry = self.entry(context)?;
        let start = self.clock.now_micros();
        let mut writer = entry.writer.lock().map_err(|_| {
            ServiceError::Internal(format!(
                "writer for context '{context}' poisoned by a panicked update"
            ))
        })?;
        let expanded = writer.expand_retractions(retractions);
        if !entry.lint.certificate.terminating {
            // The re-derivation resume of this retraction runs uncertified.
            self.chase_uncertified.inc();
        }
        let result = writer.retract_batch(expanded.iter().cloned());
        let stats = result.stats;
        let dred = &result.chase.profile.dred;
        if dred.batches > 0 {
            self.dred_cascade_micros.observe(dred.cascade_micros);
            self.dred_delete_micros.observe(dred.delete_micros);
            self.dred_rederive_micros.observe(dred.rederive_micros);
        }
        let violations = result.chase.violations.len();
        let version = writer.batches_applied();
        // Log even an empty expansion: the version advanced, and recovery
        // checks for per-context sequence gaps.
        let wal_error =
            self.append_to_wal(|store| store.append_retraction(context, version, &expanded));
        let snapshot = Self::build_snapshot(
            context,
            version,
            &writer,
            Arc::clone(&entry.program),
            result.chase.database,
        )?;
        *entry
            .snapshot
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Arc::new(snapshot);
        drop(writer);
        self.note_retraction(&stats);
        let elapsed_micros = self.clock.now_micros().saturating_sub(start);
        self.retract_micros.observe(elapsed_micros);
        if let Some(reason) = wal_error {
            self.degrade(&reason);
            return Err(ServiceError::Store(reason));
        }
        Ok(RetractReport {
            version,
            requested: stats.requested,
            retracted: stats.retracted,
            cascaded: stats.cascaded,
            rederived: stats.rederived,
            violations,
            elapsed: Duration::from_micros(elapsed_micros),
        })
    }

    /// Run `append` against the store (when attached) and return the
    /// failure reason, if any.  A store lock poisoned by a panicked peer is
    /// reported as an append failure too: the WAL's in-memory bookkeeping
    /// may be mid-mutation, so pretending durability succeeded would lie.
    fn append_to_wal(
        &self,
        append: impl FnOnce(&mut Store) -> ontodq_store::Result<()>,
    ) -> Option<String> {
        let store = self.store.as_ref()?;
        match store.lock() {
            Ok(mut store) => append(&mut store).err().map(|e| e.to_string()),
            Err(_) => Some("store lock poisoned by a panicked writer".to_string()),
        }
    }

    /// Fold one applied retraction into the process-lifetime counters.
    fn note_retraction(&self, stats: &ontodq_chase::RetractStats) {
        self.retractions.add(stats.requested as u64);
        self.cascaded_deletes.add(stats.cascaded as u64);
        self.rederived.add(stats.rederived as u64);
    }

    /// Point-in-time retraction counters.
    pub fn retraction_stats(&self) -> RetractionCounters {
        RetractionCounters {
            retractions: self.retractions.get(),
            cascaded_deletes: self.cascaded_deletes.get(),
            rederived: self.rederived.get(),
        }
    }

    /// The certain answers to `text` (see
    /// [`crate::cache::parse_query_text`] for accepted spellings) over the
    /// current snapshot of `context`.
    pub fn plain_answers(&self, context: &str, text: &str) -> Result<QueryResponse, ServiceError> {
        self.query(context, QueryKind::Plain, text)
    }

    /// The quality answers: `text` is rewritten so assessed relations read
    /// their quality versions (the paper's clean query answering), then
    /// evaluated over the current snapshot.
    pub fn quality_answers(
        &self,
        context: &str,
        text: &str,
    ) -> Result<QueryResponse, ServiceError> {
        self.query(context, QueryKind::Quality, text)
    }

    /// **Demand-driven** quality answers (`?d-`): the query is rewritten to
    /// the quality versions like [`QualityService::quality_answers`], but
    /// instead of reading the snapshot's materialized instance the program
    /// is magic-set-specialized to the query's bound constants and only the
    /// relevant fragment of the pre-chase base is chased
    /// ([`Snapshot::demand_answers`]).  The answers are identical; the work
    /// profile is proportional to the demanded portion, and results are
    /// cached per snapshot version exactly like `?q-`.
    pub fn demand_answers(&self, context: &str, text: &str) -> Result<QueryResponse, ServiceError> {
        self.query(context, QueryKind::Demand, text)
    }

    /// Shared query path: prepare (cached), consult the answer memo for the
    /// snapshot's version, evaluate on miss.
    fn query(
        &self,
        context: &str,
        kind: QueryKind,
        text: &str,
    ) -> Result<QueryResponse, ServiceError> {
        let entry = self.entry(context)?;
        let prepared = self.cache.prepared(context, &entry.context, kind, text)?;
        let snapshot = entry.snapshot();
        if let Some(answers) = self
            .cache
            .cached_answers(context, kind, text, snapshot.version)
        {
            return Ok(QueryResponse {
                version: snapshot.version,
                answers,
                cached: true,
            });
        }
        let answers = Arc::new(match kind {
            QueryKind::Plain | QueryKind::Quality => snapshot.answers(&prepared),
            QueryKind::Demand => snapshot.demand_answers(&prepared),
        });
        self.cache
            .store_answers(context, kind, text, snapshot.version, answers.clone());
        Ok(QueryResponse {
            version: snapshot.version,
            answers,
            cached: false,
        })
    }

    /// Prepared-query cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The service-wide metric registry.  Every layer's series live here:
    /// callers may register additional series, but should prefer
    /// [`QualityService::render_metrics`] for a consistent scrape.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The clock the service measures durations on (shared with the store
    /// and every context writer).
    pub fn clock(&self) -> SharedClock {
        Arc::clone(&self.clock)
    }

    /// The cumulative chase profile of `context`'s writer: per-rule
    /// evaluation counts, join time and kernel choice, EGD and DRed phase
    /// timings — everything the `!profile` verb prints.  Reads under the
    /// writer lock (cheap: the profile is cloned out, no chase work runs).
    pub fn chase_profile(&self, context: &str) -> Result<ontodq_chase::ChaseProfile, ServiceError> {
        let entry = self.entry(context)?;
        let writer = entry.writer.lock().map_err(|_| {
            ServiceError::Internal(format!(
                "writer for context '{context}' poisoned by a panicked update"
            ))
        })?;
        Ok(writer.profile().clone())
    }

    /// The static-analysis report of `context`'s compiled program — the
    /// `!check` payload: every diagnostic, the termination certificate, and
    /// the stratification outcome.  Reads the immutable report stored at
    /// registration; no writer lock is touched.
    pub fn check(&self, context: &str) -> Result<ontodq_datalog::LintReport, ServiceError> {
        Ok(self.entry(context)?.lint.clone())
    }

    /// Fold one served request into the per-verb latency histogram
    /// (`ontodq_request_micros{verb=…}`).  Called by the protocol layer
    /// after every non-empty request, so `!metrics` sees request-level
    /// latency for each verb including errors.
    pub fn observe_request(&self, verb: &str, micros: u64) {
        self.registry
            .histogram(
                "ontodq_request_micros",
                "End-to-end latency of one protocol request, by verb.",
                &[("verb", verb)],
            )
            .observe(micros);
    }

    /// Note one completed query for the slow-query log: when a threshold is
    /// armed (`--slow-query-micros`) and `micros` crosses it, the query text
    /// is recorded in the bounded ring surfaced by `!slow`.
    pub fn note_query(&self, verb: &str, text: &str, micros: u64) {
        let threshold = self.slow_threshold_micros.load(Ordering::Relaxed);
        if threshold == 0 || micros < threshold {
            return;
        }
        self.slow_queries_total.inc();
        self.slow_log.record(SpanRecord {
            name: verb.to_string(),
            detail: text.to_string(),
            start_micros: self.clock.now_micros().saturating_sub(micros),
            duration_micros: micros,
        });
    }

    /// Arm (or, with 0, disarm) the slow-query log.
    pub fn set_slow_query_threshold(&self, micros: u64) {
        self.slow_threshold_micros.store(micros, Ordering::Relaxed);
    }

    /// The armed slow-query threshold in microseconds (0: disabled).
    pub fn slow_query_threshold(&self) -> u64 {
        self.slow_threshold_micros.load(Ordering::Relaxed)
    }

    /// The retained slow-query records, oldest first.
    pub fn slow_queries(&self) -> Vec<SpanRecord> {
        self.slow_log.recent()
    }

    /// Render the whole registry in Prometheus text exposition format —
    /// the `!metrics` payload.  Point-in-time gauges (queue depth, health,
    /// per-context snapshot versions, per-rule chase profiles) are sampled
    /// into the registry here so the scrape is self-consistent; cumulative
    /// series (counters, histograms) were updated at their sources.
    pub fn render_metrics(&self, pool: &WorkerPool) -> String {
        // Worker-pool load: the wait histogram is adopted idempotently (the
        // first pool a service renders with wins the handle; in practice a
        // server has exactly one pool).
        self.registry.adopt_histogram(
            "ontodq_queue_wait_micros",
            "Time a query spent queued before a worker picked it up.",
            &[],
            pool.wait_histogram(),
        );
        self.registry
            .gauge(
                "ontodq_queue_depth",
                "Jobs admitted to the worker pool and not yet finished.",
                &[],
            )
            .set(pool.queued() as u64);
        self.registry
            .gauge(
                "ontodq_queue_depth_peak",
                "High-watermark of the worker-pool queue depth.",
                &[],
            )
            .set(pool.queued_peak() as u64);
        self.registry
            .gauge("ontodq_workers", "Worker threads in the shared pool.", &[])
            .set(pool.size() as u64);
        // Health machine: the state as an enum gauge plus its counters.
        let health = self.health();
        self.registry
            .gauge(
                "ontodq_health_state",
                "Service health: 0 healthy, 1 degraded, 2 recovering.",
                &[],
            )
            .set(match health.state {
                Health::Healthy => 0,
                Health::Degraded => 1,
                Health::Recovering => 2,
            });
        self.registry
            .gauge(
                "ontodq_refused_writes",
                "Writes refused while degraded or recovering, process lifetime.",
                &[],
            )
            .set(health.refused_writes);
        self.registry
            .gauge(
                "ontodq_recovery_probes",
                "Recovery probes attempted, process lifetime.",
                &[],
            )
            .set(health.probes);
        self.registry
            .gauge(
                "ontodq_slow_query_threshold_micros",
                "Armed slow-query threshold (0: log disabled).",
                &[],
            )
            .set(self.slow_query_threshold());
        // Per-context snapshot state and chase profiles.
        let entries: Vec<(String, Arc<ContextEntry>)> = self
            .read_contexts()
            .iter()
            .map(|(name, entry)| (name.clone(), Arc::clone(entry)))
            .collect();
        for (name, entry) in entries {
            let snapshot = entry.snapshot();
            let labels = [("context", name.as_str())];
            self.registry
                .gauge(
                    "ontodq_snapshot_version",
                    "Published snapshot version (batches applied).",
                    &labels,
                )
                .set(snapshot.version);
            self.registry
                .gauge(
                    "ontodq_snapshot_tuples",
                    "Tuples in the published snapshot's materialized instance.",
                    &labels,
                )
                .set(snapshot.total_tuples() as u64);
            self.registry
                .gauge(
                    "ontodq_lint_errors",
                    "Error-severity static-analysis diagnostics of this context's program.",
                    &labels,
                )
                .set(entry.lint.error_count() as u64);
            self.registry
                .gauge(
                    "ontodq_lint_warnings",
                    "Warning-severity static-analysis diagnostics of this context's program.",
                    &labels,
                )
                .set(entry.lint.warning_count() as u64);
            // Skip a writer a panicked update poisoned: the scrape must
            // never take a session down, and the other series still render.
            let Ok(writer) = entry.writer.lock() else {
                continue;
            };
            let profile = writer.profile().clone();
            drop(writer);
            self.registry
                .gauge(
                    "ontodq_chase_egd_micros",
                    "Cumulative EGD-enforcement time in this context's chases.",
                    &labels,
                )
                .set(profile.egd_micros);
            self.registry
                .gauge(
                    "ontodq_chase_total_micros",
                    "Cumulative end-to-end chase driver time for this context.",
                    &labels,
                )
                .set(profile.total_micros);
            for rule in &profile.rules {
                if rule.evaluations == 0 {
                    continue;
                }
                let rule_labels = [("context", name.as_str()), ("rule", rule.label.as_str())];
                self.registry
                    .gauge(
                        "ontodq_rule_join_micros",
                        "Cumulative join time spent evaluating this rule.",
                        &rule_labels,
                    )
                    .set(rule.join_micros);
                self.registry
                    .gauge(
                        "ontodq_rule_fires",
                        "Batches in which this rule derived at least one new tuple.",
                        &rule_labels,
                    )
                    .set(rule.fires);
                self.registry
                    .gauge(
                        "ontodq_rule_tuples_added",
                        "Tuples this rule added to the instance, cumulative.",
                        &rule_labels,
                    )
                    .set(rule.tuples_added);
            }
        }
        self.registry.render_prometheus()
    }

    /// Assemble the `!stats` status line for `context` with `staged`
    /// session-local staged changes — one service-side snapshot of every
    /// counter family, byte-identical to the line the protocol printed
    /// before this consolidation.
    pub fn stats_line(&self, context: &str, staged: usize) -> Result<String, ServiceError> {
        let entry = self.entry(context)?;
        let snapshot = entry.snapshot();
        let cache = self.cache_stats();
        let interner_writes = ontodq_relational::SymbolInterner::global().write_acquisitions();
        let wal = self.wal_stats().unwrap_or_default();
        // Process-wide join-kernel counters (monotone totals across every
        // chase and query this process ran) and the snapshot's
        // columnar-arena footprint.
        let joins = ontodq_relational::counters::snapshot();
        let arena_bytes = snapshot.database.arena_bytes();
        // Tombstones make live vs physical rows distinct: the arena keeps
        // dead rows until compaction, and `reclaimable_bytes` is the share
        // a compaction would recover.
        let retract = self.retraction_stats();
        Ok(format!(
            "ok context={} version={} tuples={} staged={} cache_hits={} cache_misses={} cache_invalidations={} cache_entries={} cache_evictions={} interner_writes={} wal_segments={} wal_bytes={} probes={} gallops={} wco_seeks={} materializations={} arena_bytes={} live_rows={} total_rows={} reclaimable_bytes={} retractions={} cascaded_deletes={} rederived={} lint_errors={} lint_warnings={}",
            context,
            snapshot.version,
            snapshot.total_tuples(),
            staged,
            cache.hits,
            cache.misses,
            cache.invalidations,
            cache.entries,
            cache.evictions,
            interner_writes,
            wal.segments,
            wal.bytes,
            joins.probes,
            joins.gallop_seeks,
            joins.wco_seeks,
            joins.materializations,
            arena_bytes,
            snapshot.database.total_tuples(),
            snapshot.database.total_rows(),
            snapshot.database.reclaimable_bytes(),
            retract.retractions,
            retract.cascaded_deletes,
            retract.rederived,
            entry.lint.error_count(),
            entry.lint.warning_count(),
        ))
    }

    fn entry(&self, context: &str) -> Result<Arc<ContextEntry>, ServiceError> {
        self.read_contexts()
            .get(context)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownContext(context.to_string()))
    }

    /// Assemble a snapshot from the writer state: the chased contextual
    /// instance (`chased` — the clone the re-chase step already produced, so
    /// no further whole-database copy is paid), merged with the original
    /// relations of the instance under assessment, plus freshly extracted
    /// quality versions and metrics — and the pre-chase extensional base +
    /// program the demand-driven `?d-` path reads instead of any of the
    /// above.
    ///
    /// The base is the writer's pre-chase extensional instance merged with
    /// the **original-name** relations, so `?d-` sees exactly the relations
    /// `?q-` can reference (a mapped relation without a quality version
    /// keeps its original name through the rewrite).  The merge-and-clone
    /// is one more pointer-copy pass over the extensional data, the same
    /// order of work as the materialized-instance merge above; `program` is
    /// shared per context (`Arc`), never re-cloned per batch.
    fn build_snapshot(
        name: &str,
        version: u64,
        writer: &ResumableAssessment,
        program: Arc<ontodq_datalog::Program>,
        mut database: Database,
    ) -> Result<Snapshot, ServiceError> {
        let epoch = database.epoch();
        // These merges re-add the instance's own relations into copies that
        // share its schema, so arity conflicts are impossible by
        // construction — but a broken invariant must surface as a typed
        // error, not a panic under the writer lock.
        database.merge(writer.instance()).map_err(|e| {
            ServiceError::Internal(format!(
                "original relations failed to merge into snapshot '{name}': {e}"
            ))
        })?;
        let (quality, metrics) = writer.extract();
        let mut base = writer.base_database().clone();
        base.merge(writer.instance()).map_err(|e| {
            ServiceError::Internal(format!(
                "original relations failed to merge into demand base '{name}': {e}"
            ))
        })?;
        Ok(Snapshot {
            context: name.to_string(),
            version,
            database,
            base,
            program,
            quality,
            metrics,
            violations: writer.last_violations().len(),
            epoch,
        })
    }
}

impl Default for QualityService {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_core::scenarios;
    use ontodq_mdm::fixtures::hospital;
    use ontodq_relational::Value;

    fn hospital_service() -> QualityService {
        let service = QualityService::new();
        service
            .register_context(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
            )
            .unwrap();
        service
    }

    #[test]
    fn registration_publishes_version_zero() {
        let service = hospital_service();
        assert_eq!(service.context_names(), vec!["hospital".to_string()]);
        let snap = service.snapshot("hospital").unwrap();
        assert_eq!(snap.version, 0);
        assert!(snap.database.has_relation("Measurements"));
        assert!(snap.database.has_relation("Measurements_c"));
        assert!(snap.database.has_relation("Measurements_q"));
        assert!(snap.quality.has_relation("Measurements"));
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let service = hospital_service();
        let err = service
            .register_context("hospital", scenarios::hospital_context(), Database::new())
            .unwrap_err();
        assert!(matches!(err, ServiceError::DuplicateContext(_)));
    }

    #[test]
    fn malformed_contexts_are_rejected_not_panicked() {
        let service = QualityService::new();
        let builder = Context::builder("broken").contextual_rule("not a rule at all");
        let err = service
            .register_built("broken", builder, Database::new())
            .unwrap_err();
        assert!(matches!(err, ServiceError::Context(_)));
        assert!(service.context_names().is_empty());
    }

    #[test]
    fn unknown_context_errors() {
        let service = QualityService::new();
        assert!(matches!(
            service.plain_answers("nope", "R(x)"),
            Err(ServiceError::UnknownContext(_))
        ));
    }

    #[test]
    fn quality_answers_match_the_batch_pipeline() {
        let service = hospital_service();
        let response = service
            .quality_answers("hospital", "Measurements(t, p, v), p = \"Tom Waits\"")
            .unwrap();
        let expected = hospital::expected_quality_measurements();
        assert_eq!(response.answers.len(), expected.len());
        for t in expected {
            assert!(response.answers.contains(&t));
        }
        // Plain answers see all six raw rows.
        let plain = service
            .plain_answers("hospital", "Measurements(t, p, v), p = \"Tom Waits\"")
            .unwrap();
        assert!(plain.answers.len() > response.answers.len());
    }

    #[test]
    fn inserts_bump_the_version_and_invalidate_cached_answers() {
        let service = hospital_service();
        let q = "Measurements(t, p, v)";
        let first = service.quality_answers("hospital", q).unwrap();
        assert!(!first.cached);
        let second = service.quality_answers("hospital", q).unwrap();
        assert!(second.cached);
        assert_eq!(first.answers, second.answers);

        // A new quality measurement: Lou Reed was in a standard-care ward on
        // Sep/6 with a certified nurse on duty, and Sep/6-11:05 is a known
        // `Time` member rolling up to Sep/6 — so the new reading (a second
        // value at that time) gains a quality version.
        let report = service
            .insert_facts(
                "hospital",
                vec![(
                    "Measurements".to_string(),
                    Tuple::new(vec![
                        Value::parse_time("Sep/6-11:05").unwrap(),
                        Value::str("Lou Reed"),
                        Value::double(39.9),
                    ]),
                )],
            )
            .unwrap();
        assert_eq!(report.version, 1);
        assert_eq!(report.new_facts, 1);

        let third = service.quality_answers("hospital", q).unwrap();
        assert_eq!(third.version, 1);
        assert!(!third.cached, "snapshot bump must invalidate the memo");
        assert_eq!(third.answers.len(), first.answers.len() + 1);
        let stats = service.cache_stats();
        assert!(stats.hits >= 1);
        assert!(stats.invalidations >= 1);
    }

    fn open_store(tag: &str, wipe: bool) -> (std::path::PathBuf, Arc<Mutex<Store>>) {
        let dir = std::env::temp_dir().join(format!("ontodq-service-{tag}-{}", std::process::id()));
        if wipe {
            let _ = std::fs::remove_dir_all(&dir);
        }
        let store = Store::open(&dir, ontodq_store::StoreConfig::default()).unwrap();
        (dir, Arc::new(Mutex::new(store)))
    }

    fn lou_reed_fact() -> (String, Tuple) {
        (
            "Measurements".to_string(),
            Tuple::new(vec![
                Value::parse_time("Sep/6-11:05").unwrap(),
                Value::str("Lou Reed"),
                Value::double(39.9),
            ]),
        )
    }

    /// Full-WAL-replay restart: no snapshot was ever saved, so recovery is
    /// initial chase + replay of every logged batch, and the recovered
    /// service answers exactly like the one that never restarted.
    #[test]
    fn applied_batches_survive_a_restart_via_wal_replay() {
        let (dir, store) = open_store("walreplay", true);
        let service = QualityService::with_store(store);
        service
            .register_context(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
            )
            .unwrap();
        let report = service
            .insert_facts("hospital", vec![lou_reed_fact()])
            .unwrap();
        assert_eq!(report.version, 1);
        let live = service
            .quality_answers("hospital", "Measurements(t, p, v)")
            .unwrap();
        assert_eq!(service.wal_stats().unwrap().batches_appended, 1);
        drop(service);

        // "Restart": fresh store handle on the same directory.
        let (_, store) = open_store("walreplay", false);
        let mut recovery = store.lock().unwrap().recover().unwrap();
        let recovered = QualityService::with_store(store);
        let summary = recovered
            .register_recovered(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
                &mut recovery,
            )
            .unwrap();
        assert!(!summary.restored_from_snapshot);
        assert_eq!(summary.replayed_batches, 1);
        assert_eq!(summary.version, 1);
        let revived = recovered
            .quality_answers("hospital", "Measurements(t, p, v)")
            .unwrap();
        assert_eq!(revived.version, 1);
        assert_eq!(revived.answers, live.answers);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Snapshot + tail restart: `persist_all` checkpoints and compacts;
    /// batches applied after the checkpoint come back from the WAL tail on
    /// top of the restored snapshot, with no initial chase.
    #[test]
    fn persist_all_checkpoints_and_recovers_snapshot_plus_tail() {
        let (dir, store) = open_store("snaptail", true);
        let service = QualityService::with_store(store);
        service
            .register_context(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
            )
            .unwrap();
        service
            .insert_facts("hospital", vec![lou_reed_fact()])
            .unwrap();
        let persisted = service.persist_all().unwrap();
        assert_eq!(persisted.contexts, 1);
        assert_eq!(persisted.segments_removed, 1);
        assert_eq!(service.wal_stats().unwrap().segments, 0);
        // One more batch after the checkpoint: the WAL tail.
        service
            .insert_facts(
                "hospital",
                vec![(
                    "Measurements".to_string(),
                    Tuple::new(vec![
                        Value::parse_time("Sep/6-12:00").unwrap(),
                        Value::str("Lou Reed"),
                        Value::double(37.0),
                    ]),
                )],
            )
            .unwrap();
        let live = service
            .quality_answers("hospital", "Measurements(t, p, v)")
            .unwrap();
        drop(service);

        let (_, store) = open_store("snaptail", false);
        let mut recovery = store.lock().unwrap().recover().unwrap();
        let recovered = QualityService::with_store(store);
        let summary = recovered
            .register_recovered(
                "hospital",
                scenarios::hospital_context(),
                Database::new(), // must not be needed: the snapshot carries D
                &mut recovery,
            )
            .unwrap();
        assert!(summary.restored_from_snapshot);
        assert_eq!(summary.replayed_batches, 1);
        assert_eq!(summary.version, 2);
        let revived = recovered
            .quality_answers("hospital", "Measurements(t, p, v)")
            .unwrap();
        assert_eq!(revived.version, live.version);
        assert_eq!(revived.answers, live.answers);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A snapshot's watermarks are positional in the rule set; restoring
    /// under a *different* context definition must be refused loudly, not
    /// silently misapply old floors to new rules.
    #[test]
    fn a_changed_context_definition_is_rejected_at_restore() {
        let (dir, store) = open_store("fingerprint", true);
        let service = QualityService::with_store(store);
        service
            .register_context(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
            )
            .unwrap();
        service.persist_all().unwrap();
        drop(service);

        let (_, store) = open_store("fingerprint", false);
        let mut recovery = store.lock().unwrap().recover().unwrap();
        let recovered = QualityService::with_store(store);
        let changed = ontodq_workload::generate(&ontodq_workload::HospitalScale::small());
        let err = recovered
            .register_recovered(
                "hospital",
                changed.context(),
                Database::new(),
                &mut recovery,
            )
            .unwrap_err();
        assert!(
            matches!(&err, ServiceError::Store(msg) if msg.contains("different rule set")),
            "got {err}"
        );
        // The unchanged definition still restores fine.
        let mut recovery = {
            let (_, store) = open_store("fingerprint", false);
            let recovery = store.lock().unwrap().recover().unwrap();
            drop(store);
            recovery
        };
        let service = QualityService::new();
        let summary = service
            .register_recovered(
                "hospital",
                scenarios::hospital_context(),
                Database::new(),
                &mut recovery,
            )
            .unwrap();
        assert!(summary.restored_from_snapshot);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persisting_without_a_store_is_rejected() {
        let service = hospital_service();
        assert!(!service.has_store());
        assert!(service.wal_stats().is_none());
        assert!(matches!(service.persist_all(), Err(ServiceError::NoStore)));
        // sync_store on a store-less service is a no-op, not a panic.
        service.sync_store();
    }

    /// Regression: a mapped relation *without* a quality version keeps its
    /// original name through the quality rewrite, and `?q-` reads it from
    /// the merged original relations — `?d-` must see it too (the demand
    /// base merges the instance), or the two verbs silently diverge.
    #[test]
    fn demand_answers_cover_mapped_relations_without_quality_versions() {
        let service = QualityService::new();
        let mut instance = Database::new();
        instance.insert_values("Notes", ["n1", "first"]).unwrap();
        instance.insert_values("Notes", ["n2", "second"]).unwrap();
        let context = Context::builder("notes-only")
            .copy_relation("Notes")
            .build()
            .unwrap();
        service
            .register_context("notes", context, instance)
            .unwrap();
        let quality = service.quality_answers("notes", "Notes(id, text)").unwrap();
        let demand = service.demand_answers("notes", "Notes(id, text)").unwrap();
        assert_eq!(quality.answers.len(), 2);
        assert_eq!(quality.answers, demand.answers);
        // Batches keep the two paths aligned.
        service
            .insert_facts(
                "notes",
                vec![("Notes".to_string(), Tuple::from_iter(["n3", "third"]))],
            )
            .unwrap();
        let quality = service.quality_answers("notes", "Notes(id, text)").unwrap();
        let demand = service.demand_answers("notes", "Notes(id, text)").unwrap();
        assert_eq!(quality.answers.len(), 3);
        assert_eq!(quality.answers, demand.answers);
    }

    /// Retract-after-insert through the service: the quality answers return
    /// to their pre-insert state, the version advances, and the memoized
    /// answers invalidate by construction.
    #[test]
    fn retract_facts_restore_the_pre_insert_answers() {
        let service = hospital_service();
        let q = "Measurements(t, p, v)";
        let before = service.quality_answers("hospital", q).unwrap();
        service
            .insert_facts("hospital", vec![lou_reed_fact()])
            .unwrap();
        let inserted = service.quality_answers("hospital", q).unwrap();
        assert_eq!(inserted.answers.len(), before.answers.len() + 1);

        let retraction =
            ontodq_datalog::parse_program("-Measurements(@Sep/6-11:05, \"Lou Reed\", 39.9).")
                .unwrap();
        let report = service.retract_facts("hospital", &retraction).unwrap();
        assert_eq!(report.version, 2);
        assert_eq!(report.requested, 1);
        assert_eq!(report.retracted, 1);
        let after = service.quality_answers("hospital", q).unwrap();
        assert_eq!(after.version, 2);
        assert!(!after.cached, "version bump must invalidate the memo");
        assert_eq!(after.answers, before.answers);
        let counters = service.retraction_stats();
        assert_eq!(counters.retractions, 1);
    }

    /// Conditional deletes expand against the live instance: one rule
    /// removes every matching row in one batch.
    #[test]
    fn conditional_deletes_expand_against_the_live_instance() {
        let service = hospital_service();
        let q = "Measurements(t, p, v)";
        let before = service.quality_answers("hospital", q).unwrap();
        assert!(!before.answers.is_empty());
        let delete_tom = ontodq_datalog::parse_program(
            "-Measurements(t, p, v) :- Measurements(t, p, v), p = \"Tom Waits\".",
        )
        .unwrap();
        let report = service.retract_facts("hospital", &delete_tom).unwrap();
        assert!(report.requested >= 2, "got {report:?}");
        assert_eq!(report.requested, report.retracted);
        let after = service
            .quality_answers("hospital", "Measurements(t, p, v), p = \"Tom Waits\"")
            .unwrap();
        assert!(after.answers.is_empty());
    }

    /// A retraction batch must survive a restart: the WAL retraction record
    /// replays through the same delete-and-rederive path, interleaved with
    /// insert batches in application order.
    #[test]
    fn retractions_survive_a_restart_via_wal_replay() {
        let (dir, store) = open_store("retractreplay", true);
        let service = QualityService::with_store(store);
        service
            .register_context(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
            )
            .unwrap();
        service
            .insert_facts("hospital", vec![lou_reed_fact()])
            .unwrap();
        let retraction =
            ontodq_datalog::parse_program("-Measurements(@Sep/6-11:05, \"Lou Reed\", 39.9).")
                .unwrap();
        let report = service.retract_facts("hospital", &retraction).unwrap();
        assert_eq!(report.version, 2);
        let live = service
            .quality_answers("hospital", "Measurements(t, p, v)")
            .unwrap();
        drop(service);

        let (_, store) = open_store("retractreplay", false);
        let mut recovery = store.lock().unwrap().recover().unwrap();
        let recovered = QualityService::with_store(store);
        let summary = recovered
            .register_recovered(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
                &mut recovery,
            )
            .unwrap();
        assert_eq!(summary.replayed_batches, 2);
        assert_eq!(summary.version, 2);
        let revived = recovered
            .quality_answers("hospital", "Measurements(t, p, v)")
            .unwrap();
        assert_eq!(revived.version, live.version);
        assert_eq!(revived.answers, live.answers);
        // Replay went through the retraction path, visibly.
        assert_eq!(recovered.retraction_stats().retractions, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A deletion record for a context this configuration never registered
    /// must surface as a clean error (compaction refused, state preserved),
    /// never a panic.
    #[test]
    fn retraction_records_for_unknown_contexts_are_a_clean_error() {
        let (dir, store) = open_store("ghostretract", true);
        store
            .lock()
            .unwrap()
            .append_retraction("ghost", 1, &[lou_reed_fact()])
            .unwrap();
        drop(store);

        let (_, store) = open_store("ghostretract", false);
        let mut recovery = store.lock().unwrap().recover().unwrap();
        assert_eq!(recovery.tails["ghost"].len(), 1);
        let service = QualityService::with_store(store);
        service
            .register_recovered(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
                &mut recovery,
            )
            .unwrap();
        // The ghost context's deletion record still lives only in the log:
        // checkpointing must refuse to destroy it, with a clean error.
        let err = service.persist_all().unwrap_err();
        assert!(
            matches!(&err, ServiceError::Store(msg) if msg.contains("ghost")),
            "got {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let service = hospital_service();
        let before = service.snapshot("hospital").unwrap();
        let count_before = before.database.relation("Measurements").unwrap().len();
        service
            .insert_facts(
                "hospital",
                vec![(
                    "Measurements".to_string(),
                    Tuple::new(vec![
                        Value::parse_time("Sep/6-12:00").unwrap(),
                        Value::str("Lou Reed"),
                        Value::double(36.9),
                    ]),
                )],
            )
            .unwrap();
        // The old snapshot still answers from its own frozen instance.
        assert_eq!(
            before.database.relation("Measurements").unwrap().len(),
            count_before
        );
        let after = service.snapshot("hospital").unwrap();
        assert_eq!(
            after.database.relation("Measurements").unwrap().len(),
            count_before + 1
        );
        assert_eq!(after.version, before.version + 1);
    }

    /// The health state machine end to end: a permanent WAL append failure
    /// degrades the service — the write that hit the fault reports a store
    /// error, later writes are refused with the typed degraded error while
    /// the probe backoff holds, reads keep answering from the in-memory
    /// state — and the first write after the backoff triggers an automatic
    /// recovery probe (a full checkpoint superseding the poisoned log) that
    /// returns the service to healthy.
    #[test]
    fn wal_failures_degrade_writes_and_probes_recover() {
        use ontodq_store::{FaultSchedule, IoOp, SharedIoPolicy};
        let dir =
            std::env::temp_dir().join(format!("ontodq-service-health-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let schedule = Arc::new(Mutex::new(FaultSchedule::new()));
        // First batch appends fine; the second one's write fails hard.
        schedule.lock().unwrap().fail_nth(IoOp::WalWrite, 1);
        let policy: SharedIoPolicy = schedule.clone();
        let store = Arc::new(Mutex::new(
            Store::open_with_policy(&dir, ontodq_store::StoreConfig::default(), policy).unwrap(),
        ));
        let service = QualityService::with_store(store);
        service
            .register_context(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
            )
            .unwrap();
        assert_eq!(service.health().state, Health::Healthy);
        service
            .insert_facts("hospital", vec![lou_reed_fact()])
            .unwrap();

        let nick = (
            "Measurements".to_string(),
            Tuple::new(vec![
                Value::parse_time("Sep/7-09:15").unwrap(),
                Value::str("Nick Cave"),
                Value::double(37.5),
            ]),
        );
        let err = service
            .insert_facts("hospital", vec![nick.clone()])
            .unwrap_err();
        assert!(matches!(err, ServiceError::Store(_)), "got {err:?}");
        assert_eq!(service.health().state, Health::Degraded);

        // Reads still answer, from the in-memory state that includes the
        // applied-but-not-durable batch.
        let reads = service
            .quality_answers("hospital", "Measurements(t, p, v)")
            .unwrap();
        assert_eq!(reads.version, 2);

        // Inside the probe backoff, writes are refused with the typed
        // degraded error and counted.
        let cale = (
            "Measurements".to_string(),
            Tuple::new(vec![
                Value::parse_time("Sep/7-10:40").unwrap(),
                Value::str("John Cale"),
                Value::double(38.1),
            ]),
        );
        service.set_probe_interval(Duration::from_secs(3600));
        let err = service
            .insert_facts("hospital", vec![cale.clone()])
            .unwrap_err();
        assert!(matches!(err, ServiceError::Degraded(_)), "got {err:?}");
        assert!(service.health().refused_writes >= 1);
        assert_eq!(service.health().state, Health::Degraded);

        // With the backoff elapsed (interval zero), the same write runs the
        // recovery probe: fresh snapshots supersede the poisoned WAL, the
        // compaction clears the poison, and the write lands.
        service.set_probe_interval(Duration::ZERO);
        let report = service.insert_facts("hospital", vec![cale]).unwrap();
        assert_eq!(report.version, 3);
        let health = service.health();
        assert_eq!(health.state, Health::Healthy);
        assert_eq!(health.probes, 1);
        assert!(health.reason.is_none());

        // The recovered-on-disk state equals the in-memory state: snapshot
        // at version 2 (including the non-durable-at-the-time batch) plus
        // the version-3 WAL tail.
        drop(service);
        let mut store = Store::open(&dir, ontodq_store::StoreConfig::default()).unwrap();
        let mut recovery = store.recover().unwrap();
        let recovered = QualityService::new();
        let summary = recovered
            .register_recovered(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
                &mut recovery,
            )
            .unwrap();
        assert!(summary.restored_from_snapshot);
        assert_eq!(summary.version, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `persist_all` (the `!save` path) also exits degradation directly —
    /// an operator command, not just the automatic probe.
    #[test]
    fn explicit_save_exits_degradation() {
        use ontodq_store::{FaultSchedule, IoOp, SharedIoPolicy};
        let dir = std::env::temp_dir().join(format!("ontodq-service-save-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let schedule = Arc::new(Mutex::new(FaultSchedule::new()));
        schedule.lock().unwrap().fail_nth(IoOp::WalFsync, 0);
        let policy: SharedIoPolicy = schedule.clone();
        let store = Arc::new(Mutex::new(
            Store::open_with_policy(&dir, ontodq_store::StoreConfig::default(), policy).unwrap(),
        ));
        let service = QualityService::with_store(store);
        service
            .register_context(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
            )
            .unwrap();
        // Permanent-looking fsync failure on the very first append (retries
        // see the schedule's `Fail` only once, but the heal path reseals and
        // the error kind is permanent, so no retry happens).
        let err = service
            .insert_facts("hospital", vec![lou_reed_fact()])
            .unwrap_err();
        assert!(matches!(err, ServiceError::Store(_)), "got {err:?}");
        assert_eq!(service.health().state, Health::Degraded);
        let report = service.persist_all().unwrap();
        assert_eq!(report.contexts, 1);
        assert_eq!(service.health().state, Health::Healthy);
        service
            .insert_facts(
                "hospital",
                vec![(
                    "Measurements".to_string(),
                    Tuple::new(vec![
                        Value::parse_time("Sep/7-11:00").unwrap(),
                        Value::str("Nico"),
                        Value::double(36.8),
                    ]),
                )],
            )
            .unwrap();
        assert_eq!(service.health().state, Health::Healthy);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
