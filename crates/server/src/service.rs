//! The concurrent quality-assessment service.

use crate::cache::{CacheStats, QueryCache, QueryKind};
use crate::error::ServiceError;
use crate::snapshot::Snapshot;
use ontodq_core::{Context, ContextBuilder, ResumableAssessment};
use ontodq_qa::AnswerSet;
use ontodq_relational::{Database, Tuple};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// One registered context: an immutable snapshot slot for readers and a
/// serialized writer state.
struct ContextEntry {
    /// The context definition (immutable after registration; used for
    /// quality rewriting).
    context: Context,
    /// The current snapshot.  Readers hold this lock only long enough to
    /// clone the `Arc`; the writer only to swap it.  All query evaluation
    /// happens on the immutable snapshot outside any lock.
    snapshot: RwLock<Arc<Snapshot>>,
    /// The resumable chase state.  One writer at a time per context; readers
    /// never touch it.
    writer: Mutex<ResumableAssessment>,
}

impl ContextEntry {
    fn snapshot(&self) -> Arc<Snapshot> {
        self.snapshot.read().unwrap().clone()
    }
}

/// What an applied update batch did.
#[derive(Debug, Clone)]
pub struct UpdateReport {
    /// The snapshot version the batch produced.
    pub version: u64,
    /// Genuinely new extensional tuples in the batch (duplicates ignored).
    pub new_facts: usize,
    /// Tuples derived by the incremental re-chase.
    pub derived: usize,
    /// EGD/constraint violations observed by this step.
    pub violations: usize,
    /// Wall-clock time of the incremental re-chase + snapshot swap.
    pub elapsed: Duration,
}

/// The answers to one query, with their provenance.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// The snapshot version the answers are valid for.
    pub version: u64,
    /// The certain answers.
    pub answers: Arc<AnswerSet>,
    /// Whether the answers came from the prepared-query cache.
    pub cached: bool,
}

/// A concurrent, snapshot-isolated quality-assessment service.
///
/// Each registered context keeps its fully-chased instance as an immutable
/// [`Snapshot`] behind an `Arc`.  Reads clone the `Arc` and evaluate with no
/// further synchronization; writes go through a per-context writer lock,
/// fold the batch in with an **incremental re-chase**
/// ([`ontodq_core::ResumableAssessment`], resuming from the stored epoch
/// watermarks instead of re-chasing from scratch) and atomically swap the
/// snapshot.  Readers therefore never observe a half-applied batch, and a
/// long chase never blocks queries — they keep hitting the previous
/// snapshot until the swap.
///
/// A shared [`QueryCache`] memoizes parsed/rewritten queries per
/// `(context, query)` and their answers per snapshot version, so repeated
/// queries between updates cost a map lookup.
pub struct QualityService {
    contexts: RwLock<BTreeMap<String, Arc<ContextEntry>>>,
    cache: QueryCache,
}

impl QualityService {
    /// An empty service.
    pub fn new() -> Self {
        Self {
            contexts: RwLock::new(BTreeMap::new()),
            cache: QueryCache::new(),
        }
    }

    /// Register a context under `name` with its initial instance under
    /// assessment; runs the initial full chase and publishes snapshot
    /// version 0.
    ///
    /// # Errors
    /// [`ServiceError::DuplicateContext`] when the name is taken.
    pub fn register_context(
        &self,
        name: &str,
        context: Context,
        instance: Database,
    ) -> Result<(), ServiceError> {
        // Fast duplicate probe before paying for the initial chase.  The
        // authoritative check is repeated under the write lock below (two
        // racing registrations may both pass the probe; one loses there).
        if self.contexts.read().unwrap().contains_key(name) {
            return Err(ServiceError::DuplicateContext(name.to_string()));
        }
        // Chase outside the map lock: registration of a large context must
        // not stall queries against other contexts.
        let writer = ResumableAssessment::new(context.clone(), instance);
        let snapshot = Self::build_snapshot(name, 0, &writer, writer.contextual().clone());
        let entry = Arc::new(ContextEntry {
            context,
            snapshot: RwLock::new(Arc::new(snapshot)),
            writer: Mutex::new(writer),
        });
        let mut map = self.contexts.write().unwrap();
        if map.contains_key(name) {
            return Err(ServiceError::DuplicateContext(name.to_string()));
        }
        map.insert(name.to_string(), entry);
        Ok(())
    }

    /// Build and register a context in one step, surfacing
    /// [`ontodq_core::ContextError`]s (malformed rule texts, …) as
    /// [`ServiceError::Context`] instead of panicking — the fallible
    /// registration path for caller-supplied context definitions.
    pub fn register_built(
        &self,
        name: &str,
        builder: ContextBuilder,
        instance: Database,
    ) -> Result<(), ServiceError> {
        let context = builder.build()?;
        self.register_context(name, context, instance)
    }

    /// The names of all registered contexts.
    pub fn context_names(&self) -> Vec<String> {
        self.contexts.read().unwrap().keys().cloned().collect()
    }

    /// The current snapshot of `context` — the entry point for lock-free
    /// read paths that want to run many queries against one consistent
    /// version.
    pub fn snapshot(&self, context: &str) -> Result<Arc<Snapshot>, ServiceError> {
        Ok(self.entry(context)?.snapshot())
    }

    /// Apply a batch of facts to `context`: facts for mapped original
    /// relations update the instance under assessment and its contextual
    /// copy, everything else lands in the contextual instance; then an
    /// incremental re-chase brings the instance back to a universal model
    /// and the new snapshot is swapped in atomically.
    pub fn insert_facts(
        &self,
        context: &str,
        facts: Vec<(String, Tuple)>,
    ) -> Result<UpdateReport, ServiceError> {
        let entry = self.entry(context)?;
        let start = Instant::now();
        let mut writer = entry.writer.lock().unwrap();
        let outcome = writer.insert_batch(facts)?;
        let version = writer.batches_applied();
        let derived = outcome.chase.stats.tuples_added;
        let violations = outcome.chase.violations.len();
        let snapshot = Self::build_snapshot(context, version, &writer, outcome.chase.database);
        *entry.snapshot.write().unwrap() = Arc::new(snapshot);
        // Release the writer lock only after the swap so versions are
        // published in order.
        drop(writer);
        Ok(UpdateReport {
            version,
            new_facts: outcome.new_facts,
            derived,
            violations,
            elapsed: start.elapsed(),
        })
    }

    /// The certain answers to `text` (see
    /// [`crate::cache::parse_query_text`] for accepted spellings) over the
    /// current snapshot of `context`.
    pub fn plain_answers(&self, context: &str, text: &str) -> Result<QueryResponse, ServiceError> {
        self.query(context, QueryKind::Plain, text)
    }

    /// The quality answers: `text` is rewritten so assessed relations read
    /// their quality versions (the paper's clean query answering), then
    /// evaluated over the current snapshot.
    pub fn quality_answers(
        &self,
        context: &str,
        text: &str,
    ) -> Result<QueryResponse, ServiceError> {
        self.query(context, QueryKind::Quality, text)
    }

    /// Shared query path: prepare (cached), consult the answer memo for the
    /// snapshot's version, evaluate on miss.
    fn query(
        &self,
        context: &str,
        kind: QueryKind,
        text: &str,
    ) -> Result<QueryResponse, ServiceError> {
        let entry = self.entry(context)?;
        let prepared = self.cache.prepared(context, &entry.context, kind, text)?;
        let snapshot = entry.snapshot();
        if let Some(answers) = self
            .cache
            .cached_answers(context, kind, text, snapshot.version)
        {
            return Ok(QueryResponse {
                version: snapshot.version,
                answers,
                cached: true,
            });
        }
        let answers = Arc::new(snapshot.answers(&prepared));
        self.cache
            .store_answers(context, kind, text, snapshot.version, answers.clone());
        Ok(QueryResponse {
            version: snapshot.version,
            answers,
            cached: false,
        })
    }

    /// Prepared-query cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn entry(&self, context: &str) -> Result<Arc<ContextEntry>, ServiceError> {
        self.contexts
            .read()
            .unwrap()
            .get(context)
            .cloned()
            .ok_or_else(|| ServiceError::UnknownContext(context.to_string()))
    }

    /// Assemble a snapshot from the writer state: the chased contextual
    /// instance (`chased` — the clone the re-chase step already produced, so
    /// no further whole-database copy is paid), merged with the original
    /// relations of the instance under assessment, plus freshly extracted
    /// quality versions and metrics.
    fn build_snapshot(
        name: &str,
        version: u64,
        writer: &ResumableAssessment,
        mut database: Database,
    ) -> Snapshot {
        let epoch = database.epoch();
        database
            .merge(writer.instance())
            .expect("original relations merge into the snapshot");
        let (quality, metrics) = writer.extract();
        Snapshot {
            context: name.to_string(),
            version,
            database,
            quality,
            metrics,
            violations: writer.last_violations().len(),
            epoch,
        }
    }
}

impl Default for QualityService {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontodq_core::scenarios;
    use ontodq_mdm::fixtures::hospital;
    use ontodq_relational::Value;

    fn hospital_service() -> QualityService {
        let service = QualityService::new();
        service
            .register_context(
                "hospital",
                scenarios::hospital_context(),
                hospital::measurements_database(),
            )
            .unwrap();
        service
    }

    #[test]
    fn registration_publishes_version_zero() {
        let service = hospital_service();
        assert_eq!(service.context_names(), vec!["hospital".to_string()]);
        let snap = service.snapshot("hospital").unwrap();
        assert_eq!(snap.version, 0);
        assert!(snap.database.has_relation("Measurements"));
        assert!(snap.database.has_relation("Measurements_c"));
        assert!(snap.database.has_relation("Measurements_q"));
        assert!(snap.quality.has_relation("Measurements"));
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let service = hospital_service();
        let err = service
            .register_context("hospital", scenarios::hospital_context(), Database::new())
            .unwrap_err();
        assert!(matches!(err, ServiceError::DuplicateContext(_)));
    }

    #[test]
    fn malformed_contexts_are_rejected_not_panicked() {
        let service = QualityService::new();
        let builder = Context::builder("broken").contextual_rule("not a rule at all");
        let err = service
            .register_built("broken", builder, Database::new())
            .unwrap_err();
        assert!(matches!(err, ServiceError::Context(_)));
        assert!(service.context_names().is_empty());
    }

    #[test]
    fn unknown_context_errors() {
        let service = QualityService::new();
        assert!(matches!(
            service.plain_answers("nope", "R(x)"),
            Err(ServiceError::UnknownContext(_))
        ));
    }

    #[test]
    fn quality_answers_match_the_batch_pipeline() {
        let service = hospital_service();
        let response = service
            .quality_answers("hospital", "Measurements(t, p, v), p = \"Tom Waits\"")
            .unwrap();
        let expected = hospital::expected_quality_measurements();
        assert_eq!(response.answers.len(), expected.len());
        for t in expected {
            assert!(response.answers.contains(&t));
        }
        // Plain answers see all six raw rows.
        let plain = service
            .plain_answers("hospital", "Measurements(t, p, v), p = \"Tom Waits\"")
            .unwrap();
        assert!(plain.answers.len() > response.answers.len());
    }

    #[test]
    fn inserts_bump_the_version_and_invalidate_cached_answers() {
        let service = hospital_service();
        let q = "Measurements(t, p, v)";
        let first = service.quality_answers("hospital", q).unwrap();
        assert!(!first.cached);
        let second = service.quality_answers("hospital", q).unwrap();
        assert!(second.cached);
        assert_eq!(first.answers, second.answers);

        // A new quality measurement: Lou Reed was in a standard-care ward on
        // Sep/6 with a certified nurse on duty, and Sep/6-11:05 is a known
        // `Time` member rolling up to Sep/6 — so the new reading (a second
        // value at that time) gains a quality version.
        let report = service
            .insert_facts(
                "hospital",
                vec![(
                    "Measurements".to_string(),
                    Tuple::new(vec![
                        Value::parse_time("Sep/6-11:05").unwrap(),
                        Value::str("Lou Reed"),
                        Value::double(39.9),
                    ]),
                )],
            )
            .unwrap();
        assert_eq!(report.version, 1);
        assert_eq!(report.new_facts, 1);

        let third = service.quality_answers("hospital", q).unwrap();
        assert_eq!(third.version, 1);
        assert!(!third.cached, "snapshot bump must invalidate the memo");
        assert_eq!(third.answers.len(), first.answers.len() + 1);
        let stats = service.cache_stats();
        assert!(stats.hits >= 1);
        assert!(stats.invalidations >= 1);
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let service = hospital_service();
        let before = service.snapshot("hospital").unwrap();
        let count_before = before.database.relation("Measurements").unwrap().len();
        service
            .insert_facts(
                "hospital",
                vec![(
                    "Measurements".to_string(),
                    Tuple::new(vec![
                        Value::parse_time("Sep/6-12:00").unwrap(),
                        Value::str("Lou Reed"),
                        Value::double(36.9),
                    ]),
                )],
            )
            .unwrap();
        // The old snapshot still answers from its own frozen instance.
        assert_eq!(
            before.database.relation("Measurements").unwrap().len(),
            count_before
        );
        let after = service.snapshot("hospital").unwrap();
        assert_eq!(
            after.database.relation("Measurements").unwrap().len(),
            count_before + 1
        );
        assert_eq!(after.version, before.version + 1);
    }
}
