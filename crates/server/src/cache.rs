//! The prepared-query cache.
//!
//! Queries arrive as protocol text; parsing and quality-rewriting them is
//! pure per-`(context, query)` work, and their *answers* are pure
//! per-snapshot-version work.  The cache memoizes both layers:
//!
//! * the **prepared** layer (parsed [`ConjunctiveQuery`], quality-rewritten
//!   when asked with `?q-`) never expires — it only depends on the context's
//!   rewrite map, which is immutable after registration;
//! * the **answer** layer is keyed by the snapshot version that produced it
//!   and is invalidated *by construction* when the writer swaps in a new
//!   snapshot: a lookup with a newer version simply misses (counted as an
//!   invalidation) and the caller recomputes against the new snapshot.
//!
//! The cache is shared by every worker thread; the map lock is held only for
//! lookups and stores, never while a query is evaluated.

use crate::error::ServiceError;
use ontodq_core::{rewrite_to_quality, Context};
use ontodq_datalog::{parse_rule, Rule};
use ontodq_qa::{AnswerSet, ConjunctiveQuery};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Which answer semantics a query uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Certain answers over the snapshot as-is (`?-`).
    Plain,
    /// Certain answers after rewriting assessed relations to their quality
    /// versions (`?q-`) — the paper's quality query answering.
    Quality,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Answer-layer hits (query answered without touching the instance).
    pub hits: u64,
    /// Answer-layer misses for queries never answered before.
    pub misses: u64,
    /// Answer-layer misses because the snapshot version moved on (epoch
    /// invalidation).
    pub invalidations: u64,
    /// Number of prepared `(context, kind, query)` entries resident.
    pub entries: u64,
    /// Times the cache hit its size bound and was reset.
    pub evictions: u64,
}

/// Upper bound on resident prepared entries.  Query texts arrive from
/// untrusted connections; without a bound a client cycling unique strings
/// would grow server memory without limit.  When the bound is reached the
/// cache is reset wholesale (counted in [`CacheStats::evictions`]) — crude,
/// but a full reset costs one re-parse per *live* query shape, and a
/// workload with more than this many distinct shapes gets little from
/// memoization anyway.
const MAX_ENTRIES: usize = 8_192;

struct Entry {
    query: Arc<ConjunctiveQuery>,
    answers: Option<(u64, Arc<AnswerSet>)>,
}

type Key = (String, QueryKind, String);

/// A concurrent `(context, query) → prepared query + versioned answers`
/// cache — see the module docs.
pub struct QueryCache {
    entries: Mutex<HashMap<Key, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl QueryCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The prepared form of `text` for `kind` under `context`, parsing (and
    /// quality-rewriting) on first sight.
    pub fn prepared(
        &self,
        context_name: &str,
        context: &Context,
        kind: QueryKind,
        text: &str,
    ) -> Result<Arc<ConjunctiveQuery>, ServiceError> {
        let key: Key = (context_name.to_string(), kind, text.to_string());
        if let Some(entry) = self.entries.lock().unwrap().get(&key) {
            return Ok(entry.query.clone());
        }
        // Parse outside the lock; a racing thread may do the same work, but
        // the outcome is identical and the first store wins.
        let parsed = parse_query_text(text)?;
        let query = Arc::new(match kind {
            QueryKind::Plain => parsed,
            QueryKind::Quality => rewrite_to_quality(context, &parsed),
        });
        let mut map = self.entries.lock().unwrap();
        if map.len() >= MAX_ENTRIES && !map.contains_key(&key) {
            map.clear();
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let entry = map.entry(key).or_insert(Entry {
            query: query.clone(),
            answers: None,
        });
        Ok(entry.query.clone())
    }

    /// The memoized answers for `(context, kind, text)` **iff** they were
    /// computed against snapshot `version`; stale or absent memos count as
    /// invalidations/misses respectively.
    pub fn cached_answers(
        &self,
        context_name: &str,
        kind: QueryKind,
        text: &str,
        version: u64,
    ) -> Option<Arc<AnswerSet>> {
        let key: Key = (context_name.to_string(), kind, text.to_string());
        let map = self.entries.lock().unwrap();
        match map.get(&key).and_then(|e| e.answers.as_ref()) {
            Some((v, answers)) if *v == version => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(answers.clone())
            }
            Some(_) => {
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoize `answers` as computed against snapshot `version`.  An entry
    /// computed against a newer version is never overwritten by a slower
    /// thread holding an older one.
    pub fn store_answers(
        &self,
        context_name: &str,
        kind: QueryKind,
        text: &str,
        version: u64,
        answers: Arc<AnswerSet>,
    ) {
        let key: Key = (context_name.to_string(), kind, text.to_string());
        let mut map = self.entries.lock().unwrap();
        if let Some(entry) = map.get_mut(&key) {
            match &entry.answers {
                Some((v, _)) if *v > version => {}
                _ => entry.answers = Some((version, answers)),
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: self.entries.lock().unwrap().len() as u64,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Parse protocol query text into a [`ConjunctiveQuery`].
///
/// Two spellings are accepted:
///
/// * a full rule, `Q(d) :- Shifts(W2, d, n, s).` — the head names the
///   answer variables;
/// * a bare body, `Shifts(W2, d, n, s), n = "Mark".` — every variable of a
///   positive atom becomes an answer variable, in order of first appearance.
pub fn parse_query_text(text: &str) -> Result<ConjunctiveQuery, ServiceError> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(ServiceError::Parse("empty query".to_string()));
    }
    let normalized = if trimmed.ends_with('.') {
        trimmed.to_string()
    } else {
        format!("{trimmed}.")
    };
    if normalized.contains(":-") {
        return ConjunctiveQuery::parse(&normalized).map_err(ServiceError::Parse);
    }
    // Bare body: parse it through the negative-constraint form, which takes
    // exactly a conjunction, then surface the positive-atom variables.
    match parse_rule(&format!("! :- {normalized}")) {
        Ok(Rule::Constraint(nc)) => {
            let mut answer_variables = Vec::new();
            for atom in &nc.body.atoms {
                for v in atom.variables() {
                    if !answer_variables.contains(&v) {
                        answer_variables.push(v);
                    }
                }
            }
            Ok(ConjunctiveQuery::new("Q", answer_variables, nc.body))
        }
        Ok(other) => Err(ServiceError::Parse(format!(
            "expected a query body, got: {other}"
        ))),
        Err(e) => Err(ServiceError::Parse(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_body_queries_expose_positive_variables_in_order() {
        let q = parse_query_text("Shifts(W2, d, n, s), n = \"Mark\"").unwrap();
        assert_eq!(q.arity(), 3);
        let names: Vec<String> = q.answer_variables.iter().map(|v| v.to_string()).collect();
        assert_eq!(names, vec!["d", "n", "s"]);
    }

    #[test]
    fn full_rule_queries_keep_their_head() {
        let q = parse_query_text("Q(d) :- Shifts(W2, d, n, s).").unwrap();
        assert_eq!(q.arity(), 1);
        assert_eq!(q.name, "Q");
    }

    #[test]
    fn bad_query_text_is_a_parse_error() {
        assert!(matches!(
            parse_query_text("this is not a query"),
            Err(ServiceError::Parse(_))
        ));
        assert!(matches!(
            parse_query_text("   "),
            Err(ServiceError::Parse(_))
        ));
    }
}
