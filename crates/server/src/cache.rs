//! The prepared-query cache.
//!
//! Queries arrive as protocol text; parsing and quality-rewriting them is
//! pure per-`(context, query)` work, and their *answers* are pure
//! per-snapshot-version work.  The cache memoizes both layers:
//!
//! * the **prepared** layer (parsed [`ConjunctiveQuery`], quality-rewritten
//!   when asked with `?q-`) never expires — it only depends on the context's
//!   rewrite map, which is immutable after registration;
//! * the **answer** layer is keyed by the snapshot version that produced it
//!   and is invalidated *by construction* when the writer swaps in a new
//!   snapshot: a lookup with a newer version simply misses (counted as an
//!   invalidation) and the caller recomputes against the new snapshot.
//!
//! The cache is shared by every worker thread; the map lock is held only for
//! lookups and stores, never while a query is evaluated.

use crate::error::ServiceError;
use ontodq_core::{rewrite_to_quality, Context};
use ontodq_datalog::{parse_rule, Rule};
use ontodq_obs::Counter;
use ontodq_qa::{AnswerSet, ConjunctiveQuery};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Which answer semantics a query uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Certain answers over the snapshot as-is (`?-`).
    Plain,
    /// Certain answers after rewriting assessed relations to their quality
    /// versions (`?q-`) — the paper's quality query answering.
    Quality,
    /// Quality answers computed **demand-driven** (`?d-`): same rewrite as
    /// [`QueryKind::Quality`], evaluated by magic-set-restricted chase over
    /// the pre-chase base instead of the materialized snapshot.
    Demand,
}

/// Point-in-time cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Answer-layer hits (query answered without touching the instance).
    pub hits: u64,
    /// Answer-layer misses for queries never answered before.
    pub misses: u64,
    /// Answer-layer misses because the snapshot version moved on (epoch
    /// invalidation).
    pub invalidations: u64,
    /// Number of prepared `(context, kind, query)` entries resident.
    pub entries: u64,
    /// Times the cache hit its size bound and ran a second-chance eviction
    /// sweep (cold entries dropped, hot entries retained).
    pub evictions: u64,
}

/// Default upper bound on resident prepared entries.  Query texts arrive
/// from untrusted connections; without a bound a client cycling unique
/// strings would grow server memory without limit.
const MAX_ENTRIES: usize = 8_192;

struct Entry {
    query: Arc<ConjunctiveQuery>,
    answers: Option<(u64, Arc<AnswerSet>)>,
    /// Second-chance bit: set on genuine *reuse* only (a prepared-layer
    /// lookup hit or an answer-layer hit), cleared by a bound-triggered
    /// sweep.  Admission, answer-miss probes and answer stores do not set
    /// it — the server's query path runs all three for every fresh query,
    /// so counting them would make one-shot shapes indistinguishable from a
    /// genuinely hot working set.
    hot: bool,
}

type Key = (String, QueryKind, String);

/// A concurrent `(context, query) → prepared query + versioned answers`
/// cache — see the module docs.
pub struct QueryCache {
    entries: Mutex<HashMap<Key, Entry>>,
    max_entries: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    invalidations: Arc<Counter>,
    evictions: Arc<Counter>,
}

impl QueryCache {
    /// The entry map, recovering a lock poisoned by a panicking peer: the
    /// closures run under this lock are all non-panicking map plumbing, so
    /// a poisoned guard only records that a peer died mid-lookup — the map
    /// itself is structurally intact and the cache (a pure memo) can
    /// always be used as found.
    fn map(&self) -> std::sync::MutexGuard<'_, HashMap<Key, Entry>> {
        self.entries
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// An empty cache with the default size bound.
    pub fn new() -> Self {
        Self::with_max_entries(MAX_ENTRIES)
    }

    /// An empty cache bounded at `max_entries` resident prepared entries
    /// (at least 2).  When the bound is hit, a **second-chance sweep** runs:
    /// entries referenced since the previous sweep survive (their hot bit is
    /// cleared), cold entries are evicted, and if everything was hot an
    /// arbitrary half is retained — so a client cycling unique query strings
    /// can never wipe the hot working set the way a wholesale reset would
    /// (counted in [`CacheStats::evictions`]).
    pub fn with_max_entries(max_entries: usize) -> Self {
        Self {
            entries: Mutex::new(HashMap::new()),
            max_entries: max_entries.max(2),
            hits: Arc::new(Counter::new()),
            misses: Arc::new(Counter::new()),
            invalidations: Arc::new(Counter::new()),
            evictions: Arc::new(Counter::new()),
        }
    }

    /// Adopt the cache's counters into `registry`, so one `!metrics` scrape
    /// covers them alongside every other layer's instruments.  The counters
    /// stay owned here — `stats()` and the registry read the same atomics.
    pub fn register_into(&self, registry: &ontodq_obs::Registry) {
        registry.adopt_counter(
            "ontodq_cache_hits_total",
            "Answer-layer cache hits (query answered without touching the instance).",
            &[],
            Arc::clone(&self.hits),
        );
        registry.adopt_counter(
            "ontodq_cache_misses_total",
            "Answer-layer cache misses for queries never answered before.",
            &[],
            Arc::clone(&self.misses),
        );
        registry.adopt_counter(
            "ontodq_cache_invalidations_total",
            "Answer-layer misses because the snapshot version moved on.",
            &[],
            Arc::clone(&self.invalidations),
        );
        registry.adopt_counter(
            "ontodq_cache_evictions_total",
            "Second-chance eviction sweeps triggered by the size bound.",
            &[],
            Arc::clone(&self.evictions),
        );
    }

    /// The prepared form of `text` for `kind` under `context`, parsing (and
    /// quality-rewriting) on first sight.
    pub fn prepared(
        &self,
        context_name: &str,
        context: &Context,
        kind: QueryKind,
        text: &str,
    ) -> Result<Arc<ConjunctiveQuery>, ServiceError> {
        let key: Key = (context_name.to_string(), kind, text.to_string());
        if let Some(entry) = self.map().get_mut(&key) {
            entry.hot = true;
            return Ok(entry.query.clone());
        }
        // Parse outside the lock; a racing thread may do the same work, but
        // the outcome is identical and the first store wins.
        let parsed = parse_query_text(text)?;
        let query = Arc::new(match kind {
            QueryKind::Plain => parsed,
            QueryKind::Quality | QueryKind::Demand => rewrite_to_quality(context, &parsed),
        });
        let mut map = self.map();
        if map.len() >= self.max_entries && !map.contains_key(&key) {
            // Second chance: keep what was referenced since the last sweep.
            map.retain(|_, entry| std::mem::take(&mut entry.hot));
            if map.len() >= self.max_entries {
                // Everything was hot — fall back to retaining an arbitrary
                // half rather than refusing to admit new shapes.
                let target = self.max_entries / 2;
                let mut kept = 0usize;
                map.retain(|_, _| {
                    kept += 1;
                    kept <= target
                });
            }
            self.evictions.inc();
        }
        let entry = map.entry(key).or_insert(Entry {
            query: query.clone(),
            answers: None,
            hot: false,
        });
        Ok(entry.query.clone())
    }

    /// The memoized answers for `(context, kind, text)` **iff** they were
    /// computed against snapshot `version`; stale or absent memos count as
    /// invalidations/misses respectively.
    pub fn cached_answers(
        &self,
        context_name: &str,
        kind: QueryKind,
        text: &str,
        version: u64,
    ) -> Option<Arc<AnswerSet>> {
        let key: Key = (context_name.to_string(), kind, text.to_string());
        let mut map = self.map();
        match map.get_mut(&key) {
            Some(entry) => match entry.answers.as_ref() {
                Some((v, answers)) if *v == version => {
                    entry.hot = true;
                    self.hits.inc();
                    Some(answers.clone())
                }
                Some(_) => {
                    // Stale answers for a reused shape: the *prepared* layer
                    // was still useful, and `prepared` marked that reuse.
                    self.invalidations.inc();
                    None
                }
                None => {
                    self.misses.inc();
                    None
                }
            },
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Memoize `answers` as computed against snapshot `version`.  An entry
    /// computed against a newer version is never overwritten by a slower
    /// thread holding an older one.
    pub fn store_answers(
        &self,
        context_name: &str,
        kind: QueryKind,
        text: &str,
        version: u64,
        answers: Arc<AnswerSet>,
    ) {
        let key: Key = (context_name.to_string(), kind, text.to_string());
        let mut map = self.map();
        if let Some(entry) = map.get_mut(&key) {
            match &entry.answers {
                Some((v, _)) if *v > version => {}
                _ => entry.answers = Some((version, answers)),
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            invalidations: self.invalidations.get(),
            entries: self.map().len() as u64,
            evictions: self.evictions.get(),
        }
    }
}

impl Default for QueryCache {
    fn default() -> Self {
        Self::new()
    }
}

/// Parse protocol query text into a [`ConjunctiveQuery`].
///
/// Two spellings are accepted:
///
/// * a full rule, `Q(d) :- Shifts(W2, d, n, s).` — the head names the
///   answer variables;
/// * a bare body, `Shifts(W2, d, n, s), n = "Mark".` — every variable of a
///   positive atom becomes an answer variable, in order of first appearance.
pub fn parse_query_text(text: &str) -> Result<ConjunctiveQuery, ServiceError> {
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return Err(ServiceError::Parse("empty query".to_string()));
    }
    let normalized = if trimmed.ends_with('.') {
        trimmed.to_string()
    } else {
        format!("{trimmed}.")
    };
    if normalized.contains(":-") {
        return ConjunctiveQuery::parse(&normalized).map_err(ServiceError::Parse);
    }
    // Bare body: parse it through the negative-constraint form, which takes
    // exactly a conjunction, then surface the positive-atom variables.
    match parse_rule(&format!("! :- {normalized}")) {
        Ok(Rule::Constraint(nc)) => {
            let mut answer_variables = Vec::new();
            for atom in &nc.body.atoms {
                for v in atom.variables() {
                    if !answer_variables.contains(&v) {
                        answer_variables.push(v);
                    }
                }
            }
            Ok(ConjunctiveQuery::new("Q", answer_variables, nc.body))
        }
        Ok(other) => Err(ServiceError::Parse(format!(
            "expected a query body, got: {other}"
        ))),
        Err(e) => Err(ServiceError::Parse(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_body_queries_expose_positive_variables_in_order() {
        let q = parse_query_text("Shifts(W2, d, n, s), n = \"Mark\"").unwrap();
        assert_eq!(q.arity(), 3);
        let names: Vec<String> = q.answer_variables.iter().map(|v| v.to_string()).collect();
        assert_eq!(names, vec!["d", "n", "s"]);
    }

    #[test]
    fn full_rule_queries_keep_their_head() {
        let q = parse_query_text("Q(d) :- Shifts(W2, d, n, s).").unwrap();
        assert_eq!(q.arity(), 1);
        assert_eq!(q.name, "Q");
    }

    #[test]
    fn bad_query_text_is_a_parse_error() {
        assert!(matches!(
            parse_query_text("this is not a query"),
            Err(ServiceError::Parse(_))
        ));
        assert!(matches!(
            parse_query_text("   "),
            Err(ServiceError::Parse(_))
        ));
    }

    fn tiny_cache(max: usize) -> (QueryCache, ontodq_core::Context) {
        (
            QueryCache::with_max_entries(max),
            ontodq_core::scenarios::hospital_context(),
        )
    }

    fn query_text(i: usize) -> String {
        format!("Measurements(t, p, v), p = \"Patient_{i}\"")
    }

    /// Driving the cache past its bound must keep the hot working set: the
    /// old wholesale `clear()` silently discarded every hot entry (and its
    /// memoized answers) whenever a client cycled unique query strings.
    #[test]
    fn overflow_keeps_hot_entries_and_counts_evictions() {
        let (cache, context) = tiny_cache(4);
        for i in 0..4 {
            cache
                .prepared("h", &context, QueryKind::Quality, &query_text(i))
                .unwrap();
        }
        // Touch 0 and 1 (hot), and memoize answers for 0.
        cache
            .prepared("h", &context, QueryKind::Quality, &query_text(0))
            .unwrap();
        cache
            .prepared("h", &context, QueryKind::Quality, &query_text(1))
            .unwrap();
        let answers = Arc::new(AnswerSet::new());
        cache.store_answers("h", QueryKind::Quality, &query_text(0), 7, answers);
        assert_eq!(cache.stats().entries, 4);
        assert_eq!(cache.stats().evictions, 0);

        // A fifth shape triggers the sweep: cold 2 and 3 go, hot 0 and 1
        // survive with their memoized answers intact.
        cache
            .prepared("h", &context, QueryKind::Quality, &query_text(4))
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 3); // 0, 1, and the new 4
        assert!(cache
            .cached_answers("h", QueryKind::Quality, &query_text(0), 7)
            .is_some());
    }

    /// When every resident entry is hot the sweep falls back to retaining
    /// half, so new shapes are still admitted.
    #[test]
    fn overflow_with_all_hot_entries_retains_half() {
        let (cache, context) = tiny_cache(4);
        for i in 0..4 {
            cache
                .prepared("h", &context, QueryKind::Quality, &query_text(i))
                .unwrap();
            // Touch again: all hot.
            cache
                .prepared("h", &context, QueryKind::Quality, &query_text(i))
                .unwrap();
        }
        cache
            .prepared("h", &context, QueryKind::Quality, &query_text(9))
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 3); // half of 4 retained + the newcomer
    }

    /// A client cycling unique shapes evicts repeatedly but never starves
    /// the cache or panics — and a genuinely hot entry survives every sweep.
    #[test]
    fn sustained_unique_shape_cycling_preserves_the_hot_entry() {
        let (cache, context) = tiny_cache(4);
        let hot = query_text(1000);
        cache
            .prepared("h", &context, QueryKind::Quality, &hot)
            .unwrap();
        for i in 0..64 {
            // Keep the hot entry hot, then push a fresh shape.
            cache
                .prepared("h", &context, QueryKind::Quality, &hot)
                .unwrap();
            cache
                .prepared("h", &context, QueryKind::Quality, &query_text(i))
                .unwrap();
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0);
        assert!(stats.entries <= 4);
        // The hot entry was never evicted: preparing it again is a map hit,
        // not a re-parse (observable through the entry count staying flat).
        let before = cache.stats().entries;
        cache
            .prepared("h", &context, QueryKind::Quality, &hot)
            .unwrap();
        assert_eq!(cache.stats().entries, before);
    }

    /// Regression: the server's query path runs prepared → cached_answers →
    /// store_answers for *every* query, including one-shot shapes.  Those
    /// probes must not count as "hot", or cycling unique strings would mark
    /// every entry hot and the sweep's fallback would evict half the real
    /// working set.
    #[test]
    fn one_shot_query_flow_does_not_defeat_the_second_chance_sweep() {
        let (cache, context) = tiny_cache(4);
        // A genuinely hot shape keeps being queried through the full flow
        // while one-shot shapes stream through the same flow around it.
        let hot = query_text(1000);
        let full_flow = |text: &str| {
            cache
                .prepared("h", &context, QueryKind::Quality, text)
                .unwrap();
            if cache
                .cached_answers("h", QueryKind::Quality, text, 0)
                .is_none()
            {
                cache.store_answers("h", QueryKind::Quality, text, 0, Arc::new(AnswerSet::new()));
            }
        };
        for i in 0..16 {
            full_flow(&hot);
            full_flow(&query_text(i));
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0);
        // The hot shape survived every sweep: re-preparing it does not grow
        // the entry count (a map hit, not a re-admission).
        let before = cache.stats().entries;
        cache
            .prepared("h", &context, QueryKind::Quality, &hot)
            .unwrap();
        assert_eq!(cache.stats().entries, before);
        // And its memoized answers survived with it.
        assert!(cache
            .cached_answers("h", QueryKind::Quality, &hot, 0)
            .is_some());
    }

    #[test]
    fn demand_kind_is_cached_separately_from_quality() {
        let (cache, context) = tiny_cache(16);
        let text = query_text(0);
        let quality = cache
            .prepared("h", &context, QueryKind::Quality, &text)
            .unwrap();
        let demand = cache
            .prepared("h", &context, QueryKind::Demand, &text)
            .unwrap();
        // Same rewrite, distinct cache slots (answers are memoized per kind).
        assert_eq!(quality.body, demand.body);
        assert_eq!(cache.stats().entries, 2);
        cache.store_answers("h", QueryKind::Demand, &text, 3, Arc::new(AnswerSet::new()));
        assert!(cache
            .cached_answers("h", QueryKind::Demand, &text, 3)
            .is_some());
        assert!(cache
            .cached_answers("h", QueryKind::Quality, &text, 3)
            .is_none());
    }
}
