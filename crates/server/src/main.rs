//! The `ontodq-server` binary: the quality-assessment service behind the
//! line protocol, over stdin/stdout or TCP.
//!
//! ```text
//! ontodq-server --stdin                     one session on stdin/stdout
//! ontodq-server --listen 127.0.0.1:7407     thread-per-connection TCP
//! ```
//!
//! Options: `--workers N` (query worker threads, default 4), `--empty`
//! (register the hospital context with an empty instance under assessment),
//! `--scale N` (additionally register a `scaled` context with an
//! N-hundred-measurement scaled-hospital workload).

use ontodq_core::scenarios;
use ontodq_mdm::fixtures::hospital;
use ontodq_relational::Database;
use ontodq_server::{serve_session, QualityService, WorkerPool};
use ontodq_workload::{generate, HospitalScale};
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::sync::Arc;

const USAGE: &str = "\
usage: ontodq-server (--stdin | --listen ADDR) [options]
  --stdin          serve one protocol session on stdin/stdout
  --listen ADDR    serve TCP connections (thread per connection), e.g. 127.0.0.1:7407
  --workers N      query worker threads shared by all sessions (default 4)
  --empty          register the hospital context with an empty instance
  --scale N        also register a 'scaled' context (N hundred measurements)
  --help           this text";

struct Options {
    stdin: bool,
    listen: Option<String>,
    workers: usize,
    empty: bool,
    scale: Option<usize>,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        stdin: false,
        listen: None,
        workers: 4,
        empty: false,
        scale: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdin" => options.stdin = true,
            "--listen" => {
                options.listen = Some(args.next().ok_or("--listen needs an address")?);
            }
            "--workers" => {
                let n = args.next().ok_or("--workers needs a number")?;
                options.workers = n.parse().map_err(|_| format!("bad worker count '{n}'"))?;
            }
            "--empty" => options.empty = true,
            "--scale" => {
                let n = args.next().ok_or("--scale needs a number")?;
                options.scale = Some(n.parse().map_err(|_| format!("bad scale '{n}'"))?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if options.stdin == options.listen.is_some() {
        return Err("pick exactly one of --stdin / --listen ADDR".to_string());
    }
    Ok(options)
}

fn main() {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n{USAGE}");
            std::process::exit(2);
        }
    };

    let service = Arc::new(QualityService::new());
    let instance = if options.empty {
        Database::new()
    } else {
        hospital::measurements_database()
    };
    service
        .register_context("hospital", scenarios::hospital_context(), instance)
        .expect("register the hospital context");
    if let Some(scale) = options.scale {
        let workload = generate(&HospitalScale::with_measurements(scale * 100));
        service
            .register_context("scaled", workload.context(), workload.instance.clone())
            .expect("register the scaled context");
    }
    let pool = Arc::new(WorkerPool::new(options.workers));

    if options.stdin {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(e) = serve_session(&service, &pool, "hospital", stdin.lock(), stdout.lock()) {
            eprintln!("session error: {e}");
            std::process::exit(1);
        }
        return;
    }

    let address = options.listen.expect("validated above");
    let listener = match TcpListener::bind(&address) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("error: cannot listen on {address}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "ontodq-server listening on {address} ({} workers, contexts: {})",
        pool.size(),
        service.context_names().join(", ")
    );
    for connection in listener.incoming() {
        let stream = match connection {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("accept error: {e}");
                continue;
            }
        };
        let service = Arc::clone(&service);
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".to_string());
            let reader = match stream.try_clone() {
                Ok(clone) => BufReader::new(clone),
                Err(e) => {
                    eprintln!("[{peer}] cannot clone stream: {e}");
                    return;
                }
            };
            // Buffer the response side: large answer sets would otherwise
            // pay one write syscall per tuple (serve_session flushes at
            // every request boundary).
            let mut writer = BufWriter::new(stream);
            let _ = writeln!(writer, "ok ontodq-server ready (try !help)");
            let _ = writer.flush();
            if let Err(e) = serve_session(&service, &pool, "hospital", reader, writer) {
                eprintln!("[{peer}] session error: {e}");
            }
        });
    }
}
