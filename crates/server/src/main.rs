//! The `ontodq-server` binary: the quality-assessment service behind the
//! line protocol, over stdin/stdout or TCP.
//!
//! ```text
//! ontodq-server --stdin                     one session on stdin/stdout
//! ontodq-server --listen 127.0.0.1:7407     thread-per-connection TCP
//! ```
//!
//! Options: `--workers N` (query worker threads, default 4), `--empty`
//! (register the hospital context with an empty instance under assessment),
//! `--scale N` (additionally register a `scaled` context with an
//! N-hundred-measurement scaled-hospital workload), `--data-dir DIR`
//! (durable storage: recover snapshots + WAL on startup **before accepting
//! connections**, append applied batches to the WAL, checkpoint on `!save`),
//! `--slow-query-micros N` (arm the slow-query ring `!slow` dumps).

// The binary holds the same bar as the library: fallible operations exit
// through typed errors or explicit process exits, never unwrap panics.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use ontodq_core::scenarios;
use ontodq_mdm::fixtures::hospital;
use ontodq_relational::Database;
use ontodq_server::{serve_session_with, QualityService, SessionConfig, WorkerPool};
use ontodq_store::{Recovery, Store, StoreConfig};
use ontodq_workload::{generate, HospitalScale};
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpListener;
use std::sync::{Arc, Mutex};

const USAGE: &str = "\
usage: ontodq-server (--stdin | --listen ADDR) [options]
  --stdin          serve one protocol session on stdin/stdout
  --listen ADDR    serve TCP connections (thread per connection), e.g. 127.0.0.1:7407
  --workers N      query worker threads shared by all sessions (default 4)
  --empty          register the hospital context with an empty instance
  --scale N        also register a 'scaled' context (N hundred measurements)
  --data-dir DIR   durable storage: WAL + snapshots, recovered on startup
  --idle-timeout S per-session socket read/write deadline in seconds; idle
                   clients are disconnected after 3 missed deadlines (0 = none)
  --max-queue N    admission bound on in-flight query jobs; submissions beyond
                   it get a typed overload error (0 = unbounded, default 1024)
  --slow-query-micros N
                   record queries slower than N microseconds end-to-end in the
                   bounded ring !slow dumps (0 = disabled, the default)
  --help           this text";

struct Options {
    stdin: bool,
    listen: Option<String>,
    workers: usize,
    empty: bool,
    scale: Option<usize>,
    data_dir: Option<String>,
    idle_timeout: Option<std::time::Duration>,
    max_queue: usize,
    slow_query_micros: u64,
}

fn parse_options() -> Result<Options, String> {
    let mut options = Options {
        stdin: false,
        listen: None,
        workers: 4,
        empty: false,
        scale: None,
        data_dir: None,
        idle_timeout: None,
        max_queue: 1024,
        slow_query_micros: 0,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--stdin" => options.stdin = true,
            "--listen" => {
                options.listen = Some(args.next().ok_or("--listen needs an address")?);
            }
            "--workers" => {
                let n = args.next().ok_or("--workers needs a number")?;
                options.workers = n.parse().map_err(|_| format!("bad worker count '{n}'"))?;
            }
            "--empty" => options.empty = true,
            "--scale" => {
                let n = args.next().ok_or("--scale needs a number")?;
                options.scale = Some(n.parse().map_err(|_| format!("bad scale '{n}'"))?);
            }
            "--data-dir" => {
                options.data_dir = Some(args.next().ok_or("--data-dir needs a directory")?);
            }
            "--idle-timeout" => {
                let n = args.next().ok_or("--idle-timeout needs seconds")?;
                let secs: u64 = n.parse().map_err(|_| format!("bad idle timeout '{n}'"))?;
                options.idle_timeout = (secs > 0).then(|| std::time::Duration::from_secs(secs));
            }
            "--max-queue" => {
                let n = args.next().ok_or("--max-queue needs a number")?;
                let bound: usize = n.parse().map_err(|_| format!("bad queue bound '{n}'"))?;
                options.max_queue = if bound == 0 { usize::MAX } else { bound };
            }
            "--slow-query-micros" => {
                let n = args.next().ok_or("--slow-query-micros needs a number")?;
                options.slow_query_micros = n
                    .parse()
                    .map_err(|_| format!("bad slow-query threshold '{n}'"))?;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if options.stdin == options.listen.is_some() {
        return Err("pick exactly one of --stdin / --listen ADDR".to_string());
    }
    Ok(options)
}

/// Register one context, going through recovery when a store is attached.
fn register(
    service: &QualityService,
    recovery: Option<&mut Recovery>,
    name: &str,
    context: ontodq_core::Context,
    instance: Database,
) {
    match recovery {
        Some(recovery) => {
            let summary = service
                .register_recovered(name, context, instance, recovery)
                .unwrap_or_else(|e| {
                    eprintln!("error: cannot recover context '{name}': {e}");
                    std::process::exit(1);
                });
            if summary.restored_from_snapshot || summary.replayed_batches > 0 {
                eprintln!(
                    "recovered context '{name}': snapshot={} wal_tail_batches={} version={}",
                    summary.restored_from_snapshot, summary.replayed_batches, summary.version,
                );
            }
        }
        None => {
            if let Err(e) = service.register_context(name, context, instance) {
                eprintln!("error: cannot register context '{name}': {e}");
                std::process::exit(1);
            }
        }
    }
    // Registration response: the static-analysis summary, so warning counts
    // (and the termination-certificate class) are visible at startup.
    if let Ok(report) = service.check(name) {
        eprintln!("registered context '{name}': {}", report.summary());
    }
}

fn main() {
    let options = match parse_options() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("error: {message}\n{USAGE}");
            std::process::exit(2);
        }
    };

    // Open the store and read everything back BEFORE building the service
    // or accepting any connection: recovery (snapshot load, torn-tail
    // truncation, WAL replay) must complete before the first request.
    let mut recovery: Option<Recovery> = None;
    let store = options.data_dir.as_ref().map(|dir| {
        let mut store = Store::open(dir, StoreConfig::default()).unwrap_or_else(|e| {
            eprintln!("error: cannot open data dir {dir}: {e}");
            std::process::exit(1);
        });
        let recovered = store.recover().unwrap_or_else(|e| {
            eprintln!("error: recovery failed in {dir}: {e}");
            std::process::exit(1);
        });
        if recovered.truncated_tail {
            eprintln!("recovered {dir}: truncated a torn WAL tail record");
        }
        recovery = Some(recovered);
        Arc::new(Mutex::new(store))
    });

    let service = Arc::new(match &store {
        Some(store) => QualityService::with_store(Arc::clone(store)),
        None => QualityService::new(),
    });
    service.set_slow_query_threshold(options.slow_query_micros);
    let instance = if options.empty {
        Database::new()
    } else {
        hospital::measurements_database()
    };
    register(
        &service,
        recovery.as_mut(),
        "hospital",
        scenarios::hospital_context(),
        instance,
    );
    if let Some(scale) = options.scale {
        let workload = generate(&HospitalScale::with_measurements(scale * 100));
        register(
            &service,
            recovery.as_mut(),
            "scaled",
            workload.context(),
            workload.instance.clone(),
        );
    }
    if let Some(recovery) = &recovery {
        let unclaimed: std::collections::BTreeSet<&String> = recovery
            .snapshots
            .keys()
            .chain(recovery.tails.keys())
            .collect();
        for name in unclaimed {
            eprintln!(
                "warning: durable state for context '{name}' was not claimed by this \
                 configuration (run with the flags that registered it); \
                 !save will refuse to compact while it remains"
            );
        }
    }
    let pool = Arc::new(WorkerPool::with_queue_bound(
        options.workers,
        options.max_queue,
    ));
    let session_config = SessionConfig::default();

    if options.stdin {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        // No read deadline on stdin: a pipe feeding a batch script may
        // legitimately pause for as long as it likes.
        if let Err(e) = serve_session_with(
            &service,
            &pool,
            "hospital",
            stdin.lock(),
            stdout.lock(),
            &session_config,
        ) {
            eprintln!("session error: {e}");
            std::process::exit(1);
        }
        return;
    }

    // Invariant, not I/O: parse_options rejected every argument set where
    // --stdin is absent and --listen is too.
    let address = options.listen.expect("validated above");
    let listener = match TcpListener::bind(&address) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("error: cannot listen on {address}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "ontodq-server listening on {address} ({} workers, contexts: {}{})",
        pool.size(),
        service.context_names().join(", "),
        match &options.data_dir {
            Some(dir) => format!(", data-dir: {dir}"),
            None => String::new(),
        },
    );
    for connection in listener.incoming() {
        let stream = match connection {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("accept error: {e}");
                continue;
            }
        };
        let service = Arc::clone(&service);
        let pool = Arc::clone(&pool);
        let session_config = session_config.clone();
        let idle_timeout = options.idle_timeout;
        std::thread::spawn(move || {
            let peer = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "?".to_string());
            if let Some(deadline) = idle_timeout {
                // A deadline on both directions: reads so an idle client
                // cannot pin the session thread (the session counts missed
                // deadlines and disconnects), writes so a stalled client
                // cannot wedge it mid-answer.
                if let Err(e) = stream
                    .set_read_timeout(Some(deadline))
                    .and_then(|()| stream.set_write_timeout(Some(deadline)))
                {
                    eprintln!("[{peer}] cannot arm socket timeouts: {e}");
                    return;
                }
            }
            let reader = match stream.try_clone() {
                Ok(clone) => BufReader::new(clone),
                Err(e) => {
                    eprintln!("[{peer}] cannot clone stream: {e}");
                    return;
                }
            };
            // Buffer the response side: large answer sets would otherwise
            // pay one write syscall per tuple (serve_session flushes at
            // every request boundary).
            let mut writer = BufWriter::new(stream);
            let _ = writeln!(writer, "ok ontodq-server ready (try !help)");
            let _ = writer.flush();
            if let Err(e) =
                serve_session_with(&service, &pool, "hospital", reader, writer, &session_config)
            {
                eprintln!("[{peer}] session error: {e}");
            }
        });
    }
    // Listener loop ended (accept stream exhausted): make sure the active
    // WAL segment is on disk before the process exits.
    service.sync_store();
}
