//! Service-level errors.

use ontodq_core::ContextError;
use ontodq_relational::RelationalError;
use std::fmt;

/// Why a [`crate::QualityService`] operation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// No context registered under the given name.
    UnknownContext(String),
    /// A context is already registered under the given name.
    DuplicateContext(String),
    /// The context could not be built (malformed rule text, …) — surfaced
    /// through the registration path instead of panicking the service.
    Context(ContextError),
    /// A query or fact line did not parse.
    Parse(String),
    /// A fact conflicted with a relation schema (wrong arity, …).
    Data(String),
    /// The worker pool was shut down while a job was pending.
    PoolClosed,
    /// A submitted job panicked.  The worker survived (panics are caught at
    /// the job boundary) and the panic payload is reported to the submitter
    /// instead of poisoning anything.
    JobPanicked(String),
    /// A durable-store operation (WAL append, snapshot save, recovery
    /// replay) failed.
    Store(String),
    /// A durability command (`!save`) was issued but the server has no
    /// store attached (started without `--data-dir`).
    NoStore,
    /// The service is in read-only degradation after a durability failure:
    /// queries are still served from the last good in-memory state, but
    /// updates are refused until a recovery probe succeeds.  Carries the
    /// reason the service degraded.
    Degraded(String),
    /// Admission control refused the job: the worker-pool queue already
    /// holds `queued` jobs against a bound of `bound`.  Typed so clients
    /// can distinguish "retry later" from a hard failure.
    Overloaded {
        /// Jobs queued when the submission was refused.
        queued: usize,
        /// The configured admission bound.
        bound: usize,
    },
    /// An internal invariant broke (a lock poisoned by a panicking writer,
    /// an impossible merge).  The session survives and reports this instead
    /// of panicking, but the operator should investigate.
    Internal(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownContext(name) => write!(f, "unknown context '{name}'"),
            ServiceError::DuplicateContext(name) => {
                write!(f, "context '{name}' is already registered")
            }
            ServiceError::Context(e) => write!(f, "context rejected: {e}"),
            ServiceError::Parse(msg) => write!(f, "parse error: {msg}"),
            ServiceError::Data(msg) => write!(f, "data error: {msg}"),
            ServiceError::PoolClosed => write!(f, "worker pool is shut down"),
            ServiceError::JobPanicked(msg) => write!(f, "query job panicked: {msg}"),
            ServiceError::Store(msg) => write!(f, "store error: {msg}"),
            ServiceError::NoStore => {
                write!(f, "no durable store attached (start with --data-dir DIR)")
            }
            ServiceError::Degraded(reason) => {
                write!(f, "degraded (read-only): {reason}")
            }
            ServiceError::Overloaded { queued, bound } => {
                write!(
                    f,
                    "overloaded: {queued} jobs queued (bound {bound}), retry later"
                )
            }
            ServiceError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ContextError> for ServiceError {
    fn from(e: ContextError) -> Self {
        ServiceError::Context(e)
    }
}

impl From<RelationalError> for ServiceError {
    fn from(e: RelationalError) -> Self {
        ServiceError::Data(e.to_string())
    }
}
