//! Bench for Figure 1: the cost of dimensional navigation over synthetic
//! dimensions of varying fan-out — upward rules produce one tuple per source
//! tuple (roll-up is functional under strictness), while downward rules fan
//! out to one tuple per child member.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontodq_chase::chase;
use ontodq_mdm::{CategoricalAttribute, CategoricalRelationSchema, MdOntology};
use ontodq_workload::{generate_linear_dimension, DimensionParams};
use std::hint::black_box;
use std::time::Duration;

/// Build an ontology over a synthetic 3-level dimension with `fanout`,
/// containing `tuples` facts at the bottom level and at the middle level.
fn navigation_ontology(fanout: usize, tuples: usize) -> MdOntology {
    let params = DimensionParams::new("Geo", 3, fanout);
    let dimension = generate_linear_dimension(&params).expect("bench dimensions fit in u64");
    let bottom = params.category(0);
    let middle = params.category(1);

    let mut ontology = MdOntology::new(format!("nav-f{fanout}"));
    ontology.add_dimension(dimension);
    ontology.add_relation(CategoricalRelationSchema::new(
        "BottomFacts",
        vec![
            CategoricalAttribute::categorical("Low", "Geo", bottom.clone()),
            CategoricalAttribute::non_categorical("Payload"),
        ],
    ));
    ontology.add_relation(CategoricalRelationSchema::new(
        "MiddleFacts",
        vec![
            CategoricalAttribute::categorical("Mid", "Geo", middle.clone()),
            CategoricalAttribute::non_categorical("Payload"),
        ],
    ));
    ontology.add_relation(CategoricalRelationSchema::new(
        "RolledUp",
        vec![
            CategoricalAttribute::categorical("Mid", "Geo", middle.clone()),
            CategoricalAttribute::non_categorical("Payload"),
        ],
    ));
    ontology.add_relation(CategoricalRelationSchema::new(
        "DrilledDown",
        vec![
            CategoricalAttribute::categorical("Low", "Geo", bottom.clone()),
            CategoricalAttribute::non_categorical("Payload"),
        ],
    ));
    let bottom_members = params.members_at(0).expect("bench dimensions fit in u64");
    let middle_members = params.members_at(1).expect("bench dimensions fit in u64");
    for i in 0..tuples {
        ontology
            .add_tuple(
                "BottomFacts",
                vec![
                    params.member(0, i as u64 % bottom_members),
                    ontodq_relational::Value::str(format!("p{i}")),
                ],
            )
            .unwrap();
        ontology
            .add_tuple(
                "MiddleFacts",
                vec![
                    params.member(1, i as u64 % middle_members),
                    ontodq_relational::Value::str(format!("p{i}")),
                ],
            )
            .unwrap();
    }
    // The upward and downward rules, named after the generated parent–child
    // predicate GeoL1GeoL0(parent, child).
    ontology
        .add_rule_text("RolledUp(m, x) :- BottomFacts(l, x), GeoL1GeoL0(m, l).")
        .unwrap();
    ontology
        .add_rule_text("DrilledDown(l, z) :- MiddleFacts(m, x), GeoL1GeoL0(m, l).")
        .unwrap();
    ontology
}

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_navigation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    for &fanout in &[2usize, 4, 8] {
        let ontology = navigation_ontology(fanout, 64);
        let compiled = ontodq_mdm::compile(&ontology);
        group.bench_with_input(
            BenchmarkId::new("chase_up_and_down", format!("fanout={fanout}")),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    let result = chase(black_box(&compiled.program), black_box(&compiled.database));
                    black_box(result.stats.tuples_added)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
