//! Bench for Table V: the form-(10) rule (9) that navigates downward from
//! `DischargePatients` while inventing unknown units (existential categorical
//! variables), compared against the base ontology without it.

use criterion::{criterion_group, criterion_main, Criterion};
use ontodq_bench::{compiled_hospital, compiled_hospital_with_discharge};
use ontodq_chase::chase;
use std::hint::black_box;
use std::time::Duration;

fn bench_table_v(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_v");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let base = compiled_hospital();
    let with_discharge = compiled_hospital_with_discharge();

    group.bench_function("chase_without_discharge_rule", |b| {
        b.iter(|| black_box(chase(black_box(&base.program), black_box(&base.database))))
    });

    group.bench_function("chase_with_form10_discharge_rule", |b| {
        b.iter(|| {
            black_box(chase(
                black_box(&with_discharge.program),
                black_box(&with_discharge.database),
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_table_v);
criterion_main!(benches);
