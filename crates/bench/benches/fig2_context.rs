//! Bench for Figure 2: the end-to-end quality-assessment context (map D into
//! the context, chase, extract D^q, answer a quality query) at growing
//! instance sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ontodq_core::assess;
use ontodq_workload::{generate, HospitalScale};
use std::hint::black_box;
use std::time::Duration;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_context");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for &measurements in &[50usize, 100, 200] {
        let workload = generate(&HospitalScale::with_measurements(measurements));
        let context = workload.context();
        let size = workload.instance.relation("Measurements").unwrap().len();
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(
            BenchmarkId::new(
                "assess_scaled_hospital",
                format!("measurements={measurements}"),
            ),
            &(context, workload),
            |b, (context, workload)| {
                b.iter(|| {
                    let result = assess(black_box(context), black_box(&workload.instance));
                    black_box(result.metrics.total_departure())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
