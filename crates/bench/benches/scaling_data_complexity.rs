//! Bench for the Section IV claim that conjunctive query answering over the
//! MD ontologies is tractable (polynomial) in the size of the extensional
//! data: chase size and Boolean query answering time as the data grows, with
//! the rule set fixed.
//!
//! The chase is measured under both evaluation strategies — the naive
//! reference (full re-evaluation every round) and the delta-driven
//! semi-naive default — so the speedup of the semi-naive engine is visible
//! across the data-complexity sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ontodq_chase::{chase, chase_naive};
use ontodq_mdm::compile;
use ontodq_qa::{ConjunctiveQuery, DeterministicWsqAns};
use ontodq_workload::{generate, HospitalScale};
use std::hint::black_box;
use std::time::Duration;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_data_complexity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for &measurements in &[100usize, 200, 400] {
        let workload = generate(&HospitalScale::with_measurements(measurements));
        let compiled = compile(&workload.ontology);
        let edb_size = compiled.database.total_tuples();
        group.throughput(Throughput::Elements(edb_size as u64));

        // Chase growth with data (fixed rules): semi-naive default…
        group.bench_with_input(
            BenchmarkId::new("chase_seminaive", format!("edb={edb_size}")),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    black_box(chase(
                        black_box(&compiled.program),
                        black_box(&compiled.database),
                    ))
                })
            },
        );

        // …vs the naive reference oracle on the same instance.
        group.bench_with_input(
            BenchmarkId::new("chase_naive", format!("edb={edb_size}")),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    black_box(chase_naive(
                        black_box(&compiled.program),
                        black_box(&compiled.database),
                    ))
                })
            },
        );

        // Boolean conjunctive query answering (DeterministicWSQAns) on the
        // same growing data.
        let query = ConjunctiveQuery::parse(
            "Q() :- PatientUnit(Unit_0, d, p), WorkingSchedules(Unit_0, d, n, t).",
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("boolean_cq_wsqans", format!("edb={edb_size}")),
            &compiled,
            |b, compiled| {
                let engine = DeterministicWsqAns::new(&compiled.program, &compiled.database);
                b.iter(|| black_box(engine.answer_boolean(black_box(&query))))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
