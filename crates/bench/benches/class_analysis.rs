//! Bench for the Section III syntactic analyses: weak-stickiness
//! classification and EGD separability checking on the hospital program and
//! on larger synthetic rule sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontodq_bench::compiled_hospital;
use ontodq_datalog::{analysis, parse_program, Program};
use std::hint::black_box;
use std::time::Duration;

/// A synthetic program with `n` upward/downward rule pairs over a chain of
/// predicates, mimicking the shape of compiled MD ontologies.
fn synthetic_program(n: usize) -> Program {
    let mut text = String::new();
    for i in 0..n {
        text.push_str(&format!(
            "Up{i}(u, d, p) :- Low{i}(w, d, p), Link{i}(u, w).\n\
             Down{i}(w, d, n, z) :- Up{i}(u, d, n), Link{i}(u, w).\n"
        ));
    }
    parse_program(&text).expect("synthetic program parses")
}

fn bench_class_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("class_analysis");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let hospital = compiled_hospital();
    group.bench_function("classify_hospital_program", |b| {
        b.iter(|| black_box(analysis::classify(black_box(&hospital.program))))
    });
    group.bench_function("separability_hospital_program", |b| {
        b.iter(|| black_box(analysis::check_program(black_box(&hospital.program))))
    });

    for &rules in &[10usize, 40, 160] {
        let program = synthetic_program(rules);
        group.bench_with_input(
            BenchmarkId::new("classify_synthetic", format!("rule_pairs={rules}")),
            &program,
            |b, program| b.iter(|| black_box(analysis::classify(black_box(program)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_class_analysis);
criterion_main!(benches);
