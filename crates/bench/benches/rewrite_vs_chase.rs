//! Bench for the Section IV claim about upward-navigation ontologies: FO
//! (UCQ) rewriting answers conjunctive queries directly on the extensional
//! database, avoiding the chase altogether.  We measure both strategies on
//! the upward-only fragment of the hospital ontology and on scaled synthetic
//! instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ontodq_bench::upward_only_hospital;
use ontodq_mdm::compile;
use ontodq_qa::{answer_by_rewriting, ConjunctiveQuery, MaterializedEngine};
use ontodq_workload::{generate, HospitalScale};
use std::hint::black_box;
use std::time::Duration;

fn bench_rewrite_vs_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite_vs_chase");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Paper-scale: the hospital example, upward rule only.
    let compiled = compile(&upward_only_hospital());
    let query =
        ConjunctiveQuery::parse("Q(d) :- PatientUnit(Standard, d, p), p = \"Tom Waits\".").unwrap();
    group.bench_function("hospital/fo_rewriting", |b| {
        b.iter(|| {
            black_box(answer_by_rewriting(
                black_box(&compiled.program),
                black_box(&compiled.database),
                black_box(&query),
            ))
        })
    });
    group.bench_function("hospital/chase_then_evaluate", |b| {
        b.iter(|| {
            let engine = MaterializedEngine::new(
                black_box(&compiled.program),
                black_box(&compiled.database),
            );
            black_box(engine.certain_answers(black_box(&query)))
        })
    });

    // Scaled synthetic instances: the gap widens as the data (and hence the
    // chase) grows, while the rewriting is fixed-size.
    for &measurements in &[100usize, 400] {
        let mut workload = generate(&HospitalScale::with_measurements(measurements));
        // Keep only the upward rule so the rewriting strategy is applicable.
        let upward_rules: Vec<_> = workload
            .ontology
            .rules()
            .iter()
            .filter(|r| r.head.iter().any(|a| a.predicate == "PatientUnit"))
            .cloned()
            .collect();
        let mut upward_only = ontodq_mdm::MdOntology::new("scaled-upward");
        for dim in workload.ontology.dimensions().values() {
            upward_only.add_dimension(dim.clone());
        }
        for schema in workload.ontology.relations().values() {
            upward_only.add_relation(schema.clone());
        }
        for relation in workload.ontology.data().relations() {
            for tuple in relation.iter() {
                upward_only
                    .add_tuple(relation.name(), tuple.values().to_vec())
                    .unwrap();
            }
        }
        for rule in upward_rules {
            upward_only.add_rule(rule);
        }
        workload.ontology = upward_only;
        let compiled = compile(&workload.ontology);
        let query =
            ConjunctiveQuery::parse("Q(d) :- PatientUnit(Unit_0, d, p), p = \"Patient_0\".")
                .unwrap();
        let edb = compiled.database.total_tuples();
        group.bench_with_input(
            BenchmarkId::new("scaled/fo_rewriting", format!("edb={edb}")),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    black_box(answer_by_rewriting(
                        black_box(&compiled.program),
                        black_box(&compiled.database),
                        black_box(&query),
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("scaled/chase_then_evaluate", format!("edb={edb}")),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    let engine = MaterializedEngine::new(
                        black_box(&compiled.program),
                        black_box(&compiled.database),
                    );
                    black_box(engine.certain_answers(black_box(&query)))
                })
            },
        );

        // The same materialization with the naive reference chase, to keep
        // the naive-vs-semi-naive gap visible on the QA path too.
        group.bench_with_input(
            BenchmarkId::new("scaled/chase_naive_then_evaluate", format!("edb={edb}")),
            &compiled,
            |b, compiled| {
                b.iter(|| {
                    let engine = MaterializedEngine::with_config(
                        black_box(&compiled.program),
                        black_box(&compiled.database),
                        ontodq_chase::ChaseConfig::naive(),
                    );
                    black_box(engine.certain_answers(black_box(&query)))
                })
            },
        );

        // FO rewriting with prepared (indexed) evaluation: the rewriting's
        // join indexes are built once on a copy of the EDB and reused.
        let mut prepared_db = compiled.database.clone();
        let ucq = ontodq_qa::rewrite(&compiled.program, &query);
        ucq.prepare(&mut prepared_db);
        group.bench_with_input(
            BenchmarkId::new("scaled/fo_rewriting_prepared", format!("edb={edb}")),
            &prepared_db,
            |b, prepared_db| b.iter(|| black_box(ucq.evaluate(black_box(prepared_db)))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rewrite_vs_chase);
criterion_main!(benches);
