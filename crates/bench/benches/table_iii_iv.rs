//! Bench for Tables III/IV: downward navigation from `WorkingSchedules` to
//! `Shifts` (rule (8)) and the Example 5 query about Mark's shift dates,
//! comparing chase-based and resolution-based answering.

use criterion::{criterion_group, criterion_main, Criterion};
use ontodq_bench::compiled_hospital;
use ontodq_qa::{ConjunctiveQuery, DeterministicWsqAns, MaterializedEngine};
use std::hint::black_box;
use std::time::Duration;

fn bench_table_iii_iv(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_iii_iv");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let compiled = compiled_hospital();
    let query = ConjunctiveQuery::parse("Q(d) :- Shifts(W2, d, \"Mark\", s).").unwrap();

    // Chase the whole ontology, then evaluate the query.
    group.bench_function("downward_chase_then_evaluate", |b| {
        b.iter(|| {
            let engine = MaterializedEngine::new(
                black_box(&compiled.program),
                black_box(&compiled.database),
            );
            black_box(engine.certain_answers(black_box(&query)))
        })
    });

    // The deterministic resolution algorithm, no materialization.
    group.bench_function("downward_deterministic_wsqans", |b| {
        let engine = DeterministicWsqAns::new(&compiled.program, &compiled.database);
        b.iter(|| black_box(engine.answer_open(black_box(&query))))
    });

    // Boolean entailment only (the core of the paper's algorithm).
    let boolean = ConjunctiveQuery::parse("Q() :- Shifts(W2, \"Sep/9\", \"Mark\", s).").unwrap();
    group.bench_function("downward_boolean_entailment", |b| {
        let engine = DeterministicWsqAns::new(&compiled.program, &compiled.database);
        b.iter(|| black_box(engine.answer_boolean(black_box(&boolean))))
    });

    group.finish();
}

criterion_group!(benches, bench_table_iii_iv);
criterion_main!(benches);
