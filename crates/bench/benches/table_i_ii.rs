//! Bench for Tables I/II: deriving the quality version `Measurements^q` from
//! the raw `Measurements` table through the Example 7 context (upward
//! navigation + thermometer guideline + nurse certification).

use criterion::{criterion_group, criterion_main, Criterion};
use ontodq_core::clean_query::quality_answers;
use ontodq_core::{assess, scenarios};
use ontodq_mdm::fixtures::hospital;
use std::hint::black_box;
use std::time::Duration;

fn bench_table_i_ii(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_i_ii");
    group
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let context = scenarios::hospital_context();
    let instance = hospital::measurements_database();

    // The full assessment pipeline: compile, map, chase, extract D^q.
    group.bench_function("assess_measurements_to_quality_version", |b| {
        b.iter(|| {
            let result = assess(black_box(&context), black_box(&instance));
            black_box(result.quality_tuples("Measurements").len())
        })
    });

    // Quality query answering on a precomputed assessment (the repeated-use
    // case: one assessment, many doctor queries).
    let assessment = assess(&context, &instance);
    let query = scenarios::doctors_query();
    group.bench_function("doctors_query_quality_answers", |b| {
        b.iter(|| {
            black_box(quality_answers(
                black_box(&context),
                black_box(&assessment),
                black_box(&query),
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_table_i_ii);
criterion_main!(benches);
